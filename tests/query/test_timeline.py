"""Tests for storyline extraction and burst detection."""

from __future__ import annotations

import pytest

from repro.core.bundle import Bundle
from repro.query.timeline import (activity_series, detect_bursts,
                                  extract_storyline)
from tests.conftest import make_message


@pytest.fixture
def two_phase_bundle() -> Bundle:
    """Dense burst in hour 0, silence, a second phase at hour 10."""
    bundle = Bundle(0)
    for index in range(8):
        bundle.insert(make_message(index, f"#game kickoff play {index}",
                                   user=f"u{index}", hours=index * 0.05))
    for index in range(8, 12):
        bundle.insert(make_message(index, f"#game final score recap {index}",
                                   user=f"u{index}", hours=10 + (index - 8) * 0.1))
    return bundle


class TestActivitySeries:
    def test_bin_counts(self, two_phase_bundle):
        series = activity_series(two_phase_bundle, bin_seconds=3600.0)
        counts = [count for _, count in series]
        assert counts[0] == 8
        assert sum(counts) == 12
        # the silent gap appears as zero bins
        assert 0 in counts

    def test_empty_bundle(self):
        assert activity_series(Bundle(0)) == []

    def test_invalid_bin(self, two_phase_bundle):
        with pytest.raises(ValueError):
            activity_series(two_phase_bundle, bin_seconds=0)

    def test_bin_starts_increase(self, two_phase_bundle):
        series = activity_series(two_phase_bundle)
        starts = [start for start, _ in series]
        assert starts == sorted(starts)


class TestDetectBursts:
    def test_burst_bin_found(self, two_phase_bundle):
        series = activity_series(two_phase_bundle)
        bursts = detect_bursts(series, threshold=2.0)
        assert 0 in bursts  # the 8-message opening hour

    def test_flat_series_no_bursts(self):
        series = [(float(i), 3) for i in range(10)]
        assert detect_bursts(series) == []

    def test_empty_series(self):
        assert detect_bursts([]) == []


class TestExtractStoryline:
    def test_phases_split_at_gap(self, two_phase_bundle):
        storyline = extract_storyline(two_phase_bundle, max_phases=4)
        assert len(storyline) == 2
        first, second = storyline.phases
        assert first.message_count == 8
        assert second.message_count == 4
        assert first.end < second.start

    def test_phase_ordering(self, two_phase_bundle):
        storyline = extract_storyline(two_phase_bundle)
        starts = [phase.start for phase in storyline.phases]
        assert starts == sorted(starts)

    def test_representative_is_member(self, two_phase_bundle):
        storyline = extract_storyline(two_phase_bundle)
        member_ids = set(two_phase_bundle.message_ids())
        for phase in storyline.phases:
            assert phase.representative.msg_id in member_ids

    def test_label_terms_nonempty(self, two_phase_bundle):
        storyline = extract_storyline(two_phase_bundle)
        for phase in storyline.phases:
            assert phase.label_terms

    def test_burst_phase_marked(self, two_phase_bundle):
        storyline = extract_storyline(two_phase_bundle)
        assert storyline.phases[0].is_burst

    def test_single_message_bundle(self):
        bundle = Bundle(0)
        bundle.insert(make_message(0, "lonely"))
        storyline = extract_storyline(bundle)
        assert len(storyline) == 1
        assert storyline.phases[0].message_count == 1

    def test_empty_bundle(self):
        storyline = extract_storyline(Bundle(0))
        assert len(storyline) == 0

    def test_max_phases_respected(self, two_phase_bundle):
        storyline = extract_storyline(two_phase_bundle, max_phases=1)
        assert len(storyline) == 1
        assert storyline.phases[0].message_count == 12

    def test_invalid_max_phases(self, two_phase_bundle):
        with pytest.raises(ValueError):
            extract_storyline(two_phase_bundle, max_phases=0)

    def test_render_contains_phase_lines(self, two_phase_bundle):
        text = extract_storyline(two_phase_bundle).render()
        lines = text.splitlines()
        assert "storyline of bundle 0" in lines[0]
        assert len(lines) == 3  # header + two phases

    def test_second_phase_labelled_by_its_terms(self, two_phase_bundle):
        """Phase labels must pick phase-characteristic vocabulary."""
        storyline = extract_storyline(two_phase_bundle)
        second_labels = set(storyline.phases[1].label_terms)
        assert second_labels & {"final", "score", "recap"}
