"""Tests for related-bundle discovery."""

from __future__ import annotations

import pytest

from collections import Counter

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.errors import BundleNotFoundError
from repro.query.related import find_related, weighted_overlap
from tests.conftest import make_message


class TestWeightedOverlap:
    def test_identical(self):
        counter = Counter({"a": 2, "b": 1})
        assert weighted_overlap(counter, counter) == 1.0

    def test_disjoint(self):
        assert weighted_overlap(Counter({"a": 1}), Counter({"b": 1})) == 0.0

    def test_both_empty(self):
        assert weighted_overlap(Counter(), Counter()) == 0.0

    def test_partial(self):
        a = Counter({"x": 2, "y": 1})
        b = Counter({"x": 1, "z": 1})
        # min: x->1; max: x->2, y->1, z->1
        assert weighted_overlap(a, b) == pytest.approx(1 / 4)

    def test_symmetric(self):
        a = Counter({"x": 3, "y": 1})
        b = Counter({"x": 1, "w": 5})
        assert weighted_overlap(a, b) == weighted_overlap(b, a)


@pytest.fixture
def indexer() -> ProvenanceIndexer:
    """Three topics: two related game bundles (shared #mlb, staggered in
    time, forced apart by bundle closing) and one finance bundle."""
    config = IndexerConfig.bundle_limit(pool_size=100, bundle_size=2)
    indexer = ProvenanceIndexer(config)
    game_one = [
        make_message(0, "first inning underway #redsox #mlb", user="a"),
        make_message(1, "great catch tonight #redsox #mlb", user="b",
                     hours=0.2),
    ]
    game_two = [
        make_message(10, "second game starts #redsox #mlb", user="c",
                     hours=5.0),
        make_message(11, "another win! #redsox #mlb", user="d", hours=5.5),
    ]
    finance = [
        make_message(20, "market rally #stocks bit.ly/fin", user="t",
                     hours=0.3),
        make_message(21, "earnings beat #stocks bit.ly/fin", user="t2",
                     hours=0.6),
    ]
    for message in sorted(game_one + game_two + finance,
                          key=lambda m: m.date):
        indexer.ingest(message)
    return indexer


def bundle_of(indexer, msg_id):
    for bundle in indexer.pool:
        if msg_id in bundle:
            return bundle
    raise AssertionError(f"message {msg_id} not pooled")


class TestFindRelated:
    def test_related_game_found(self, indexer):
        anchor = bundle_of(indexer, 0)
        related = find_related(indexer, anchor.bundle_id, k=3)
        assert related
        top = related[0]
        member_ids = set(top.bundle.message_ids())
        assert member_ids & {10, 11}  # the other game

    def test_unrelated_topic_ranked_below(self, indexer):
        anchor = bundle_of(indexer, 0)
        related = find_related(indexer, anchor.bundle_id, k=10)
        ranked_ids = [item.bundle_id for item in related]
        finance = bundle_of(indexer, 20)
        if finance.bundle_id in ranked_ids:
            game_two = bundle_of(indexer, 10)
            assert ranked_ids.index(game_two.bundle_id) < ranked_ids.index(
                finance.bundle_id)

    def test_anchor_never_suggested(self, indexer):
        anchor = bundle_of(indexer, 0)
        related = find_related(indexer, anchor.bundle_id, k=10)
        assert anchor.bundle_id not in {item.bundle_id for item in related}

    def test_scores_descending_and_bounded(self, indexer):
        anchor = bundle_of(indexer, 0)
        related = find_related(indexer, anchor.bundle_id, k=10)
        scores = [item.score for item in related]
        assert scores == sorted(scores, reverse=True)
        for item in related:
            assert 0.0 <= item.indicant_overlap <= 1.0
            assert 0.0 <= item.temporal_overlap <= 1.0

    def test_k_limits(self, indexer):
        anchor = bundle_of(indexer, 0)
        assert len(find_related(indexer, anchor.bundle_id, k=1)) == 1

    def test_unknown_anchor_rejected(self, indexer):
        with pytest.raises(BundleNotFoundError):
            find_related(indexer, 99999)

    def test_isolated_bundle_has_no_relations(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        indexer.ingest(make_message(0, "#unique alone"))
        anchor_id = next(iter(indexer.pool)).bundle_id
        assert find_related(indexer, anchor_id) == []
