"""Tests for Eq. 7 bundle retrieval."""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.errors import QueryError
from repro.query.bundle_search import BundleSearchEngine
from tests.conftest import make_message


@pytest.fixture
def indexer() -> ProvenanceIndexer:
    indexer = ProvenanceIndexer(IndexerConfig())
    baseball = [
        make_message(0, "yankees clinch tonight #redsox #mlb", user="a"),
        make_message(1, "stadium ovation for lester #redsox", user="b",
                     hours=0.2),
        make_message(2, "RT @a: yankees clinch tonight #redsox #mlb",
                     user="c", hours=0.4),
    ]
    finance = [
        make_message(10, "market rally continues #stocks bit.ly/fin",
                     user="t1", hours=0.1),
        make_message(11, "earnings beat forecast #stocks bit.ly/fin",
                     user="t2", hours=0.3),
    ]
    tsunami = [
        make_message(20, "tsunami warning for samoa coast #tsunami",
                     user="n1", hours=5.0),
        make_message(21, "RT @n1: tsunami warning for samoa coast #tsunami",
                     user="n2", hours=5.1),
    ]
    for message in sorted(baseball + finance + tsunami,
                          key=lambda m: m.date):
        indexer.ingest(message)
    return indexer


@pytest.fixture
def search(indexer) -> BundleSearchEngine:
    return BundleSearchEngine(indexer)


class TestParse:
    def test_terms_and_indicants_split(self, search):
        query = search.parse("yankee game #redsox http://bit.ly/fin")
        assert "yankee" in query.terms
        assert query.hashtags == frozenset({"redsox"})
        assert query.urls == frozenset({"bit.ly/fin"})

    def test_empty_query_rejected(self, search):
        with pytest.raises(QueryError):
            search.parse("   ")

    def test_stopword_only_query_is_empty(self, search):
        query = search.parse("the and of")
        assert query.is_empty


class TestSearch:
    def test_topical_query_finds_right_bundle(self, search, indexer):
        hits = search.search("tsunami samoa", k=3)
        assert hits
        top = hits[0].bundle
        assert any("tsunami" in m.text for m in top.messages())

    def test_hashtag_query(self, search):
        hits = search.search("#stocks", k=3)
        assert hits
        assert "stocks" in hits[0].bundle.hashtag_counts

    def test_url_query(self, search):
        hits = search.search("bit.ly/fin", k=3)
        assert hits
        assert "bit.ly/fin" in hits[0].bundle.url_counts

    def test_scores_descending(self, search):
        hits = search.search("yankees stadium #redsox", k=10)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_k_limits(self, search):
        assert len(search.search("tonight market tsunami", k=1)) == 1

    def test_no_match_returns_empty(self, search):
        assert search.search("xylophone zeppelin") == []

    def test_hit_exposes_fig2_row_fields(self, search):
        hit = search.search("#redsox", k=1)[0]
        assert hit.bundle_id == hit.bundle.bundle_id
        assert hit.size == len(hit.bundle)
        assert hit.summary_words
        assert hit.last_post == hit.bundle.end_time

    def test_component_scores_bounded(self, search):
        for hit in search.search("yankees #redsox", k=5):
            assert 0.0 <= hit.text_score <= 1.0
            assert 0.0 <= hit.indicant_score <= 1.0
            assert 0.0 <= hit.freshness <= 1.0

    def test_freshness_breaks_ties(self, indexer):
        """With identical content, the fresher bundle ranks first."""
        search = BundleSearchEngine(indexer, alpha=0.0, beta=0.0)
        hits = search.search("tsunami yankees market", k=10)
        freshness = [hit.freshness for hit in hits]
        assert freshness == sorted(freshness, reverse=True)


class TestWeights:
    def test_invalid_weights_rejected(self, indexer):
        with pytest.raises(QueryError):
            BundleSearchEngine(indexer, alpha=0.8, beta=0.3)
        with pytest.raises(QueryError):
            BundleSearchEngine(indexer, alpha=-0.1, beta=0.2)

    def test_pure_indicant_weighting(self, indexer):
        search = BundleSearchEngine(indexer, alpha=0.0, beta=1.0)
        hits = search.search("#redsox", k=5)
        assert hits[0].indicant_score == 1.0


class Ticker:
    """A fake clock advancing one step per call."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        current = self.now
        self.now += self.step
        return current


class TestDeadline:
    def test_unbounded_outcome_matches_search(self, search):
        outcome = search.search_within("yankees #redsox", k=5,
                                       budget_seconds=None)
        assert not outcome.partial
        assert outcome.coverage == 1.0
        assert outcome.candidates_scored == outcome.candidates_total
        plain = search.search("yankees #redsox", k=5)
        assert [h.bundle_id for h in outcome.hits] == [
            h.bundle_id for h in plain]

    def test_expired_budget_flags_partial(self, search):
        # One clock tick per scored candidate: a budget of 1.5 ticks
        # admits exactly one score before the deadline check trips.
        outcome = search.search_within("tsunami yankees market", k=10,
                                       budget_seconds=1.5, clock=Ticker())
        assert outcome.partial
        assert outcome.candidates_scored == 1
        assert outcome.candidates_scored < outcome.candidates_total
        assert 0.0 < outcome.coverage < 1.0
        assert len(outcome.hits) == 1

    def test_partial_keeps_the_strongest_candidate(self, search):
        # Candidates are scored strongest-posting-hits-first, so even a
        # one-candidate budget returns the bundle the full ranking puts
        # on top for an indicant-heavy query.
        full = search.search_within("tsunami yankees market", k=1,
                                    budget_seconds=None)
        partial = search.search_within("tsunami yankees market", k=1,
                                       budget_seconds=1.5, clock=Ticker())
        assert partial.partial
        assert partial.hits[0].bundle_id == full.hits[0].bundle_id

    def test_generous_budget_is_complete(self, search):
        outcome = search.search_within("yankees #redsox", k=5,
                                       budget_seconds=1e6, clock=Ticker())
        assert not outcome.partial
        assert outcome.coverage == 1.0

    def test_non_positive_budget_rejected(self, search):
        with pytest.raises(QueryError):
            search.search_within("yankees", budget_seconds=0.0)
        with pytest.raises(QueryError):
            search.search_within("yankees", budget_seconds=-1.0)

    def test_elapsed_is_reported(self, search):
        outcome = search.search_within("yankees #redsox", k=5,
                                       budget_seconds=None, clock=Ticker())
        assert outcome.elapsed_seconds > 0.0
