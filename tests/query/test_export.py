"""Tests for bundle export (DOT / JSON)."""

from __future__ import annotations

import json

import pytest

from repro.core.bundle import Bundle
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.query.bundle_search import BundleSearchEngine
from repro.query.export import (search_results_to_json, to_dot,
                                to_json_graph)
from tests.conftest import make_message


@pytest.fixture
def bundle() -> Bundle:
    bundle = Bundle(3)
    bundle.insert(make_message(0, 'origin "quoted" #story', user="src"))
    bundle.insert(make_message(1, "RT @src: origin #story", user="fan",
                               hours=0.5))
    bundle.insert(make_message(2, "more #story bit.ly/x", user="other",
                               hours=1.0))
    return bundle


class TestToDot:
    def test_valid_digraph_structure(self, bundle):
        dot = to_dot(bundle)
        assert dot.startswith("digraph bundle_3 {")
        assert dot.rstrip().endswith("}")

    def test_all_nodes_present(self, bundle):
        dot = to_dot(bundle)
        for msg_id in bundle.message_ids():
            assert f"m{msg_id} [" in dot

    def test_all_edges_present(self, bundle):
        dot = to_dot(bundle)
        for edge in bundle.edges():
            assert f"m{edge.dst_id} -> m{edge.src_id}" in dot

    def test_roots_highlighted(self, bundle):
        dot = to_dot(bundle)
        root_line = next(line for line in dot.splitlines()
                         if line.strip().startswith("m0 ["))
        assert "lightcoral" in root_line

    def test_quotes_escaped(self, bundle):
        dot = to_dot(bundle)
        assert '\\"quoted\\"' in dot

    def test_edge_kind_labels(self, bundle):
        dot = to_dot(bundle)
        assert 'label="rt"' in dot

    def test_text_truncated(self, bundle):
        dot = to_dot(bundle, max_text=10)
        assert "…" in dot

    def test_dates_optional(self, bundle):
        with_dates = to_dot(bundle, include_dates=True)
        without = to_dot(bundle, include_dates=False)
        assert len(without) < len(with_dates)


class TestToJsonGraph:
    def test_round_trips_through_json(self, bundle):
        payload = json.dumps(to_json_graph(bundle))
        restored = json.loads(payload)
        assert restored["bundle_id"] == 3

    def test_nodes_and_links_counts(self, bundle):
        graph = to_json_graph(bundle)
        assert len(graph["nodes"]) == 3
        assert len(graph["links"]) == 2

    def test_links_reference_nodes(self, bundle):
        graph = to_json_graph(bundle)
        node_ids = {node["id"] for node in graph["nodes"]}
        for link in graph["links"]:
            assert link["source"] in node_ids
            assert link["target"] in node_ids

    def test_root_flag(self, bundle):
        graph = to_json_graph(bundle)
        flags = {node["id"]: node["is_root"] for node in graph["nodes"]}
        assert flags[0] is True
        assert flags[1] is False

    def test_empty_bundle(self):
        graph = to_json_graph(Bundle(9))
        assert graph["size"] == 0
        assert graph["start_time"] is None
        assert graph["nodes"] == [] and graph["links"] == []


class TestSearchResultsToJson:
    def test_rows_match_hits(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        indexer.ingest(make_message(0, "tsunami warning #tsunami",
                                    user="agency"))
        indexer.ingest(make_message(1, "RT @agency: tsunami warning "
                                       "#tsunami", user="fan", hours=0.2))
        hits = BundleSearchEngine(indexer).search("tsunami", k=3)
        rows = search_results_to_json(hits)
        assert len(rows) == len(hits)
        assert rows[0]["size"] == hits[0].size
        assert set(rows[0]["components"]) == {"text", "indicant",
                                              "freshness"}
        json.dumps(rows)  # JSON-serialisable
