"""Tests for bundle quality/credibility scoring."""

from __future__ import annotations

import pytest

from repro.core.bundle import Bundle
from repro.query.ranking import (depth_score, diversity_score, feedback_score,
                                 quality_score, rank_messages)
from tests.conftest import make_message


def rt_chain_bundle() -> Bundle:
    bundle = Bundle(0)
    bundle.insert(make_message(0, "breaking news story", user="src"))
    bundle.insert(make_message(1, "RT @src: breaking news story",
                               user="fan1", hours=0.1))
    bundle.insert(make_message(2, "RT @fan1: RT @src: breaking news story",
                               user="fan2", hours=0.2))
    return bundle


def hashtag_only_bundle() -> Bundle:
    bundle = Bundle(1)
    for index in range(3):
        bundle.insert(make_message(index, f"#topic msg {index}",
                                   user=f"u{index}", hours=index * 0.1))
    return bundle


def single_author_bundle() -> Bundle:
    bundle = Bundle(2)
    for index in range(4):
        bundle.insert(make_message(index, f"#self promo {index}",
                                   user="spammer", hours=index * 0.1))
    return bundle


class TestFeedbackScore:
    def test_rt_bundle_scores_one(self):
        assert feedback_score(rt_chain_bundle()) == 1.0

    def test_hashtag_bundle_scores_zero(self):
        assert feedback_score(hashtag_only_bundle()) == 0.0

    def test_singleton_scores_zero(self):
        bundle = Bundle(0)
        bundle.insert(make_message(0, "alone"))
        assert feedback_score(bundle) == 0.0


class TestDiversityScore:
    def test_distinct_authors_max_diversity(self):
        assert diversity_score(hashtag_only_bundle()) == pytest.approx(1.0)

    def test_single_author_zero(self):
        assert diversity_score(single_author_bundle()) == 0.0

    def test_singleton_zero(self):
        bundle = Bundle(0)
        bundle.insert(make_message(0, "alone"))
        assert diversity_score(bundle) == 0.0

    def test_between_zero_and_one(self):
        bundle = Bundle(0)
        bundle.insert(make_message(0, "#t a", user="x"))
        bundle.insert(make_message(1, "#t b", user="x", hours=0.1))
        bundle.insert(make_message(2, "#t c", user="y", hours=0.2))
        assert 0.0 < diversity_score(bundle) < 1.0


class TestDepthScore:
    def test_chain_deeper_than_flat(self):
        assert depth_score(rt_chain_bundle()) > depth_score(
            single_author_bundle()) or depth_score(
            rt_chain_bundle()) > 0.0

    def test_saturation(self):
        bundle = Bundle(0)
        bundle.insert(make_message(0, "start", user="u0"))
        for index in range(1, 12):
            bundle.insert(make_message(
                index, f"RT @u{index - 1}: start", user=f"u{index}",
                hours=index * 0.01))
        assert depth_score(bundle, saturation=5) == pytest.approx(5 / 6)


class TestQualityScore:
    def test_rt_diverse_bundle_beats_spam(self):
        assert quality_score(rt_chain_bundle()) > quality_score(
            single_author_bundle())

    def test_bounded(self):
        for bundle in (rt_chain_bundle(), hashtag_only_bundle(),
                       single_author_bundle()):
            assert 0.0 <= quality_score(bundle) <= 1.0

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            quality_score(rt_chain_bundle(), feedback_weight=0,
                          diversity_weight=0, depth_weight=0)


class TestRankMessages:
    def test_root_first(self):
        ranked = rank_messages(rt_chain_bundle())
        assert ranked[0].msg_id == 0

    def test_k_limits(self):
        assert len(rank_messages(rt_chain_bundle(), k=2)) == 2

    def test_high_fanout_beats_leaf(self):
        bundle = Bundle(0)
        bundle.insert(make_message(0, "root post", user="src"))
        for index in (1, 2, 3):
            bundle.insert(make_message(index, "RT @src: root post",
                                       user=f"f{index}", hours=0.1 * index))
        ranked = rank_messages(bundle)
        assert ranked[0].msg_id == 0  # fanout 3 + root bonus
