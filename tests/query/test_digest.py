"""Tests for daily digest generation."""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.query.digest import build_digest
from tests.conftest import make_message

HOUR = 3600.0


@pytest.fixture
def indexer() -> ProvenanceIndexer:
    """Two stories in the last day, one stale story before it."""
    indexer = ProvenanceIndexer(IndexerConfig())
    # stale story: 3 days ago
    for index in range(4):
        indexer.ingest(make_message(index, "#stale old news",
                                    user=f"s{index}", hours=index * 0.1))
    # story A: big, well-resourced (RT chain)
    indexer.ingest(make_message(10, "tsunami warning issued #tsunami",
                                user="agency", hours=72.0))
    for index in range(11, 18):
        indexer.ingest(make_message(
            index, "RT @agency: tsunami warning issued #tsunami",
            user=f"f{index}", hours=72.0 + (index - 10) * 0.2))
    # story B: smaller
    for index in range(20, 24):
        indexer.ingest(make_message(index, "#game final score chatter",
                                    user=f"g{index}",
                                    hours=75.0 + (index - 20) * 0.1))
    return indexer


class TestBuildDigest:
    def test_window_filters_stale_stories(self, indexer):
        digest = build_digest(indexer, window=24 * HOUR)
        tags = {tag for story in digest.stories
                for tag in story.bundle.hashtag_counts}
        assert "stale" not in tags

    def test_both_fresh_stories_present(self, indexer):
        digest = build_digest(indexer, window=24 * HOUR, k=5)
        tags = {tag for story in digest.stories
                for tag in story.bundle.hashtag_counts}
        assert {"tsunami", "game"} <= tags

    def test_bigger_quality_story_first(self, indexer):
        digest = build_digest(indexer, window=24 * HOUR, k=5)
        assert "tsunami" in digest.stories[0].bundle.hashtag_counts

    def test_source_is_earliest_root(self, indexer):
        digest = build_digest(indexer, window=24 * HOUR, k=1)
        assert digest.stories[0].source.user == "agency"

    def test_k_limits(self, indexer):
        assert len(build_digest(indexer, window=24 * HOUR, k=1).stories) == 1

    def test_min_messages_filters(self, indexer):
        digest = build_digest(indexer, window=24 * HOUR, min_messages=6)
        tags = {tag for story in digest.stories
                for tag in story.bundle.hashtag_counts}
        assert "game" not in tags

    def test_total_counts_window_messages(self, indexer):
        digest = build_digest(indexer, window=24 * HOUR)
        assert digest.total_messages == 12  # 8 tsunami + 4 game

    def test_entry_statistics(self, indexer):
        story = build_digest(indexer, window=24 * HOUR, k=1).stories[0]
        assert story.messages_in_window == 8
        assert story.max_depth >= 1
        assert 0.0 <= story.quality <= 1.0
        assert "quality" in story.headline

    def test_render(self, indexer):
        text = build_digest(indexer, window=24 * HOUR).render()
        lines = text.splitlines()
        assert "digest" in lines[0]
        assert any("source @agency" in line for line in lines)

    def test_empty_indexer(self):
        digest = build_digest(ProvenanceIndexer(IndexerConfig()))
        assert digest.stories == ()
        assert "0 stories" in digest.render()

    @pytest.mark.parametrize("kwargs", [{"window": 0.0}, {"k": 0}])
    def test_invalid_params(self, indexer, kwargs):
        with pytest.raises(ValueError):
            build_digest(indexer, **kwargs)
