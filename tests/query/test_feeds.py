"""Tests for continuous-query feeds."""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.errors import QueryError
from repro.query.feeds import FeedRegistry
from tests.conftest import make_message


@pytest.fixture
def indexer() -> ProvenanceIndexer:
    indexer = ProvenanceIndexer(IndexerConfig())
    indexer.ingest(make_message(0, "tsunami warning issued #tsunami",
                                user="agency"))
    indexer.ingest(make_message(1, "market rally #stocks", user="trader",
                                hours=0.1))
    return indexer


@pytest.fixture
def registry(indexer) -> FeedRegistry:
    return FeedRegistry(indexer)


class TestSubscription:
    def test_subscribe_and_list(self, registry):
        registry.subscribe("alerts", "tsunami warning")
        assert "alerts" in registry
        assert registry.feeds() == ["alerts"]

    def test_duplicate_name_rejected(self, registry):
        registry.subscribe("alerts", "tsunami")
        with pytest.raises(QueryError):
            registry.subscribe("alerts", "other")

    def test_empty_query_rejected(self, registry):
        with pytest.raises(QueryError):
            registry.subscribe("alerts", "   ")

    def test_invalid_k_rejected(self, registry):
        with pytest.raises(QueryError):
            registry.subscribe("alerts", "tsunami", k=0)

    def test_unsubscribe(self, registry):
        registry.subscribe("alerts", "tsunami")
        assert registry.unsubscribe("alerts")
        assert not registry.unsubscribe("alerts")
        assert len(registry) == 0


class TestPolling:
    def test_first_poll_reports_new(self, registry):
        registry.subscribe("alerts", "tsunami warning")
        update = registry.poll("alerts")
        assert update.new_bundles
        assert not update.grown_bundles

    def test_unchanged_second_poll_is_empty(self, registry):
        registry.subscribe("alerts", "tsunami warning")
        registry.poll("alerts")
        assert registry.poll("alerts").is_empty

    def test_growth_detected(self, registry, indexer):
        registry.subscribe("alerts", "tsunami warning")
        first = registry.poll("alerts")
        bundle_id = first.new_bundles[0].bundle_id
        indexer.ingest(make_message(5, "RT @agency: tsunami warning issued "
                                       "#tsunami", user="fan", hours=0.5))
        update = registry.poll("alerts")
        assert [hit.bundle_id for hit in update.grown_bundles] == [bundle_id]
        assert not update.new_bundles

    def test_new_matching_bundle_detected(self, registry, indexer):
        registry.subscribe("alerts", "tsunami OR aftershock quake")
        registry.poll("alerts")
        indexer.ingest(make_message(6, "aftershock quake reported #quake",
                                    user="seismo", hours=1.0))
        update = registry.poll("alerts")
        assert update.new_bundles

    def test_unknown_feed_rejected(self, registry):
        with pytest.raises(QueryError):
            registry.poll("nope")

    def test_min_score_filters(self, registry):
        registry.subscribe("strict", "tsunami warning", min_score=10.0)
        update = registry.poll("strict")
        assert update.is_empty

    def test_poll_all_returns_only_nonempty(self, registry, indexer):
        registry.subscribe("alerts", "tsunami warning")
        registry.subscribe("money", "market rally")
        updates = registry.poll_all()
        assert {u.feed_name for u in updates} == {"alerts", "money"}
        # nothing changed: second poll_all is entirely empty
        assert registry.poll_all() == []

    def test_evicted_bundle_counts_as_new_on_return(self, indexer):
        """If a bundle leaves the pool and similar content reappears, the
        feed reports it as new rather than staying silent."""
        bounded = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=2))
        registry = FeedRegistry(bounded)
        bounded.ingest(make_message(0, "tsunami warning #tsunami",
                                    user="agency"))
        registry.subscribe("alerts", "tsunami warning")
        assert registry.poll("alerts").new_bundles
        # Flood with unrelated bundles to evict the tsunami one.
        for index in range(1, 30):
            bounded.ingest(make_message(index, f"#topic{index} filler",
                                        user=f"u{index}", hours=100 + index))
        assert registry.poll("alerts").is_empty
        bounded.ingest(make_message(99, "tsunami warning again #tsunami",
                                    user="agency2", hours=200.0))
        update = registry.poll("alerts")
        assert update.new_bundles
