"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def dataset(tmp_path):
    path = tmp_path / "stream.tsv"
    code = main(["generate", "-o", str(path), "--days", "0.5",
                 "--rate", "800", "--seed", "3", "--users", "100"])
    assert code == 0
    return path


@pytest.fixture
def snapshot(dataset, tmp_path):
    path = tmp_path / "state.json"
    code = main(["index", str(dataset), "-o", str(path),
                 "--pool-size", "100"])
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "-o", "x.tsv"])
        assert args.days == 2.0
        assert args.seed == 7


class TestGenerate:
    def test_writes_dataset(self, dataset):
        assert dataset.exists()
        header = dataset.read_text().splitlines()[0]
        assert header.startswith("msg_id\t")

    def test_message_count(self, dataset):
        lines = dataset.read_text().splitlines()
        assert len(lines) - 1 == 400  # 0.5 days * 800/day


class TestStats:
    def test_stats_output(self, dataset, capsys):
        assert main(["stats", str(dataset)]) == 0
        out = capsys.readouterr().out
        assert "messages" in out
        assert "400" in out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "nope.tsv")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestIndex:
    def test_snapshot_written(self, snapshot):
        assert snapshot.exists()

    def test_full_index_mode(self, dataset, tmp_path, capsys):
        path = tmp_path / "full.json"
        assert main(["index", str(dataset), "-o", str(path)]) == 0
        assert "bundles" in capsys.readouterr().out

    def test_store_option(self, dataset, tmp_path):
        path = tmp_path / "state.json"
        store_dir = tmp_path / "bundles"
        code = main(["index", str(dataset), "-o", str(path),
                     "--pool-size", "20", "--store", str(store_dir)])
        assert code == 0
        assert store_dir.exists()


class TestSearch:
    def test_search_runs(self, snapshot, capsys):
        code = main(["search", str(snapshot), "game OR market OR tsunami",
                     "-k", "3"])
        out = capsys.readouterr().out
        if code == 0:
            assert "bundle" in out
        else:
            assert "no matching bundles" in out

    def test_search_no_hits(self, snapshot, capsys):
        code = main(["search", str(snapshot), "zzzzzz"])
        assert code == 1
        assert "no matching bundles" in capsys.readouterr().out


class TestTrending:
    def test_trending_runs(self, snapshot, capsys):
        code = main(["trending", str(snapshot), "--window-hours", "48"])
        out = capsys.readouterr().out
        if code == 0:
            assert "msgs/h" in out
        else:
            assert "nothing trending" in out

    def test_trending_empty_window(self, snapshot, capsys):
        code = main(["trending", str(snapshot), "--min-recent", "99999"])
        assert code == 1


class TestDigest:
    def test_digest_runs(self, snapshot, capsys):
        code = main(["digest", str(snapshot), "--window-hours", "48",
                     "--min-messages", "2"])
        out = capsys.readouterr().out
        assert "digest" in out
        assert code in (0, 1)

    def test_digest_empty_window(self, snapshot, capsys):
        code = main(["digest", str(snapshot), "--min-messages", "99999"])
        assert code == 1
        assert "0 stories" in capsys.readouterr().out


class TestArchive:
    def test_archive_search_after_index(self, dataset, tmp_path, capsys):
        snapshot_path = tmp_path / "state.json"
        store_dir = tmp_path / "bundles"
        assert main(["index", str(dataset), "-o", str(snapshot_path),
                     "--pool-size", "10", "--store", str(store_dir)]) == 0
        capsys.readouterr()
        code = main(["archive", str(store_dir),
                     "game OR market OR time OR people", "-k", "3"])
        out = capsys.readouterr().out
        if code == 0:
            assert "archived bundles" in out
        else:
            assert "no matching archived bundles" in out

    def test_archive_no_hits(self, dataset, tmp_path, capsys):
        store_dir = tmp_path / "bundles"
        assert main(["index", str(dataset), "-o",
                     str(tmp_path / "s.json"), "--pool-size", "10",
                     "--store", str(store_dir)]) == 0
        code = main(["archive", str(store_dir), "zzzzzzz"])
        assert code == 1


class TestShow:
    def test_show_existing_bundle(self, snapshot, capsys):
        from repro.storage.snapshot import load_snapshot

        indexer = load_snapshot(snapshot)
        bundle_id = max(indexer.pool, key=len).bundle_id
        assert main(["show", str(snapshot), str(bundle_id)]) == 0
        assert f"bundle {bundle_id}" in capsys.readouterr().out

    def test_show_with_storyline(self, snapshot, capsys):
        from repro.storage.snapshot import load_snapshot

        indexer = load_snapshot(snapshot)
        bundle_id = max(indexer.pool, key=len).bundle_id
        assert main(["show", str(snapshot), str(bundle_id),
                     "--storyline"]) == 0
        assert "storyline" in capsys.readouterr().out

    def test_show_unknown_bundle(self, snapshot, capsys):
        assert main(["show", str(snapshot), "999999"]) == 1
        assert "not in the snapshot" in capsys.readouterr().err


class TestSearchBudget:
    def test_budget_flag_parses(self):
        args = build_parser().parse_args(
            ["search", "s.json", "q", "--budget-ms", "5"])
        assert args.budget_ms == 5.0

    def test_generous_budget_matches_unbounded(self, snapshot, capsys):
        query = "game OR market OR tsunami"
        code_plain = main(["search", str(snapshot), query, "-k", "3"])
        plain = capsys.readouterr().out
        code_budget = main(["search", str(snapshot), query, "-k", "3",
                            "--budget-ms", "60000"])
        budgeted = capsys.readouterr().out
        assert code_budget == code_plain
        assert "PARTIAL" not in budgeted
        # Same ranking: a budget that never expires changes nothing.
        assert budgeted == plain


class TestTop:
    def test_top_once_renders_nonzero_dashboard(self, capsys):
        code = main(["top", "--once", "--messages", "1200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro top" in out
        assert "ingested" in out
        assert "0 msgs" not in out.splitlines()[0]
        assert "bundle match (Alg. 1)" in out
        assert "whole ingest" in out
        assert "wal appends" in out
        assert "breaker" in out

    def test_top_once_with_dataset_and_sinks(self, dataset, tmp_path,
                                             capsys):
        trace_out = tmp_path / "traces.jsonl"
        telemetry_out = tmp_path / "telemetry.jsonl"
        code = main(["top", str(dataset), "--once", "--sample", "1.0",
                     "--trace-out", str(trace_out),
                     "--telemetry-out", str(telemetry_out)])
        assert code == 0
        assert "traces:" in capsys.readouterr().out

        from repro.obs import TelemetryFlusher, Tracer

        traces = list(Tracer.read_jsonl(trace_out))
        assert traces, "sampled traces must reach the JSONL sink"
        assert {t["tags"]["outcome"] for t in traces} <= {
            "new-bundle", "matched", "shed", "deferred",
            "quarantined", "folded", "late"}
        records = list(TelemetryFlusher.read_jsonl(telemetry_out))
        assert records, "the flight recorder must hold snapshots"
        assert records[-1]["metrics"]["counters"][
            "repro_supervisor_ingested_total"] > 0

    def test_top_live_frames_clear_screen(self, capsys):
        code = main(["top", "--messages", "900", "--refresh", "400",
                     "--sample", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("\x1b[2J") >= 2  # live frames + final frame


class TestMetrics:
    def test_prometheus_export_has_nonzero_ingest_counters(self, capsys):
        code = main(["metrics", "--messages", "1200"])
        out = capsys.readouterr().out
        assert code == 0
        assert "# TYPE repro_messages_ingested_total counter" in out
        ingested = [l for l in out.splitlines()
                    if l.startswith("repro_messages_ingested_total ")]
        assert ingested and float(ingested[0].split()[1]) > 0
        assert 'repro_stage_seconds_bucket{stage="bundle_match"' in out
        assert "repro_overload_rung" in out
        assert 'repro_admission_total{verdict="admitted"}' in out

    def test_json_export_parses(self, capsys):
        import json

        code = main(["metrics", "--messages", "800", "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        snapshot = json.loads(out)
        assert snapshot["counters"]["repro_messages_ingested_total"] > 0
        assert "repro_ingest_latency_seconds" in snapshot["histograms"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.format == "prometheus"
        assert args.sample == 0.01
        assert args.messages is None


@pytest.mark.chaos
class TestHealth:
    def test_health_surge_self_check(self, capsys):
        code = main(["health", "--messages", "1500"])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro health" in out
        assert "accounting" in out
        assert "overall: healthy" in out

    def test_health_with_chaos(self, capsys):
        code = main(["health", "--messages", "1500", "--chaos"])
        out = capsys.readouterr().out
        assert code == 0
        assert "store chaos" in out
        assert "spill path: recovered" in out
        assert "overall: healthy" in out


class TestExplain:
    def test_explain_replay_prints_narrative(self, capsys):
        code = main(["explain", "2", "--messages", "300", "--seed", "7",
                     "--sample", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "message 2" in out
        assert "placement:" in out

    def test_explain_unknown_message_fails_cleanly(self, capsys):
        code = main(["explain", "999999", "--messages", "200",
                     "--sample", "0"])
        assert code == 1
        assert "was not seen" in capsys.readouterr().err

    def test_explain_from_audit_log_matches_replay(self, tmp_path, capsys):
        log = tmp_path / "audit.jsonl"
        code = main(["explain", "2", "--messages", "300", "--seed", "7",
                     "--sample", "0", "--audit-out", str(log)])
        live = capsys.readouterr().out
        assert code == 0
        code = main(["explain", "2", "--audit", str(log)])
        offline = capsys.readouterr().out
        assert code == 0
        assert offline == live

    def test_explain_missing_from_log_fails_cleanly(self, tmp_path,
                                                    capsys):
        log = tmp_path / "audit.jsonl"
        assert main(["top", "--once", "--messages", "200", "--sample",
                     "0", "--audit-out", str(log)]) == 0
        capsys.readouterr()
        code = main(["explain", "999999", "--audit", str(log)])
        assert code == 1
        assert "no decision record" in capsys.readouterr().err


class TestAuditCommands:
    @pytest.fixture
    def audit_log(self, tmp_path, capsys):
        log = tmp_path / "audit.jsonl"
        assert main(["top", "--once", "--messages", "400", "--seed", "7",
                     "--sample", "0", "--audit-out", str(log)]) == 0
        capsys.readouterr()
        return log

    def test_tail_shows_recent_decisions(self, audit_log, capsys):
        code = main(["audit", "tail", str(audit_log), "-n", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "audit tail" in out
        assert "outcome" in out and "rung" in out

    def test_filter_by_outcome(self, audit_log, capsys):
        code = main(["audit", "filter", str(audit_log),
                     "--outcome", "matched"])
        out = capsys.readouterr().out
        assert code == 0
        assert "matching decisions" in out
        assert "new-bundle" not in out

    def test_filter_no_match_fails_cleanly(self, audit_log, capsys):
        code = main(["audit", "filter", str(audit_log),
                     "--msg", "987654"])
        assert code == 1
        assert "no decision records match" in capsys.readouterr().err

    def test_missing_log_fails_cleanly(self, tmp_path, capsys):
        code = main(["audit", "tail", str(tmp_path / "absent.jsonl")])
        assert code == 1
        assert "no decision records" in capsys.readouterr().err


class TestTopQualityPanel:
    def test_generated_stream_shows_quality_table(self, capsys):
        code = main(["top", "--once", "--messages", "600", "--seed", "7",
                     "--sample", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "clustering quality (vs ground truth)" in out
        assert "accuracy (accu)" in out
        assert "return (ret)" in out
        assert "ground-truth" in out


class TestTraceCommand:
    @pytest.fixture
    def trace_log(self, tmp_path):
        import json

        path = tmp_path / "fleet_trace.jsonl"
        documents = []
        for msg_id in (7, 8):
            documents.append({
                "trace_id": msg_id, "duration": 0.01,
                "tags": {"msg_id": msg_id, "outcome": "matched",
                         "shard": 1},
                "spans": [
                    {"name": "route", "start": 0.0, "duration": 0.002,
                     "tags": {"kind": "hop", "shard": 1}},
                    {"name": "service", "start": 0.002,
                     "duration": 0.007,
                     "tags": {"kind": "hop", "span_id": "1.1.3"}},
                    {"name": "placement", "start": 0.003,
                     "duration": 0.002, "tags": {"kind": "stage"}},
                    {"name": "ack_transit", "start": 0.009,
                     "duration": 0.001, "tags": {"kind": "hop"}},
                ]})
        path.write_text("\n".join(json.dumps(d) for d in documents) + "\n")
        return path

    def test_renders_timelines(self, trace_log, capsys):
        assert main(["trace", str(trace_log)]) == 0
        out = capsys.readouterr().out
        assert "trace 7" in out
        assert "trace 8" in out
        assert "service" in out
        assert "span_id=1.1.3" in out

    def test_msg_filter(self, trace_log, capsys):
        assert main(["trace", str(trace_log), "--msg", "8"]) == 0
        out = capsys.readouterr().out
        assert "trace 8" in out
        assert "trace 7" not in out

    def test_latest_n_limit(self, trace_log, capsys):
        assert main(["trace", str(trace_log), "-n", "1"]) == 0
        out = capsys.readouterr().out
        assert "trace 8" in out
        assert "1 earlier trace(s) not shown" in out

    def test_no_match_fails_cleanly(self, trace_log, capsys):
        assert main(["trace", str(trace_log), "--msg", "99"]) == 1
        assert "no msg_id 99" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 1


class TestProfileCommand:
    def test_profiles_a_replay_and_writes_folded(self, tmp_path, capsys):
        out_path = tmp_path / "replay.folded"
        code = main(["profile", "--messages", "600", "--hz", "200",
                     "--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "profile —" in out
        assert "samples" in out
        assert out_path.exists()
        for line in out_path.read_text().splitlines():
            stack, _, count = line.rpartition(" ")
            assert int(count) > 0
            assert stack

    def test_parser_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.hz == 97
        assert args.out is None
        assert args.sample == 0.01


class TestServeObservabilityFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.trace_sample == 0.0
        assert args.trace_out is None
        assert args.profile_dir is None


class TestAnatomy:
    def test_replay_prints_fingerprint_and_capacity(self, capsys):
        code = main(["anatomy", "--messages", "600", "--seed", "13"])
        out = capsys.readouterr().out
        assert code == 0
        assert "workload fingerprint" in out
        assert "slab slice schedule" in out
        assert "memory attribution" in out
        assert "recommendations:" in out

    def test_fingerprints_identical_across_runs(self, tmp_path, capsys):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            code = main(["anatomy", "--messages", "600", "--seed", "13",
                         "--interval", "200",
                         "--fingerprint-out", str(path)])
            assert code == 0
            capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()
        # --interval 200 over 600 messages: 3 periodic + 1 final.
        assert len(paths[0].read_text().splitlines()) == 4

    def test_offline_report_mode(self, tmp_path, capsys):
        path = tmp_path / "fp.jsonl"
        main(["anatomy", "--messages", "600", "--seed", "13",
              "--fingerprint-out", str(path)])
        capsys.readouterr()
        code = main(["anatomy", "--report", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "workload fingerprint" in out
        assert "slab slice schedule" in out

    def test_diff_mode(self, tmp_path, capsys):
        before = tmp_path / "before.jsonl"
        after = tmp_path / "after.jsonl"
        main(["anatomy", "--messages", "400", "--seed", "13",
              "--fingerprint-out", str(before)])
        main(["anatomy", "--messages", "800", "--seed", "13",
              "--fingerprint-out", str(after)])
        capsys.readouterr()
        code = main(["anatomy", "--diff", str(before), str(after)])
        out = capsys.readouterr().out
        assert code == 0
        assert "fingerprint drift" in out
        assert "messages" in out

    def test_missing_fingerprint_file_fails_cleanly(self, tmp_path,
                                                    capsys):
        code = main(["anatomy", "--report", str(tmp_path / "nope.jsonl")])
        assert code == 1
        assert "no fingerprints" in capsys.readouterr().err

    def test_parser_defaults(self):
        args = build_parser().parse_args(["anatomy"])
        assert args.sample_every == 8
        assert args.interval == 0
        assert args.fingerprint_out is None
        assert args.diff is None

    def test_top_shows_anatomy_panel(self, capsys):
        code = main(["top", "--once", "--messages", "600", "--seed", "7",
                     "--sample", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "workload anatomy" in out
