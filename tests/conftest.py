"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.message import Message, parse_message
from repro.stream.generator import StreamConfig, StreamGenerator
from repro.text.analyzer import Analyzer

BASE_DATE = 1249084800.0  # 2009-08-01 00:00 UTC
HOUR = 3600.0


@pytest.fixture
def analyzer() -> Analyzer:
    return Analyzer()


@pytest.fixture
def config() -> IndexerConfig:
    return IndexerConfig()


@pytest.fixture
def indexer() -> ProvenanceIndexer:
    return ProvenanceIndexer(IndexerConfig())


def make_message(
    msg_id: int,
    text: str,
    *,
    user: str = "alice",
    hours: float = 0.0,
    event_id: int | None = None,
    parent_id: int | None = None,
) -> Message:
    """Terse message builder used across the suite."""
    return parse_message(
        msg_id, user, BASE_DATE + hours * HOUR, text,
        event_id=event_id, parent_id=parent_id)


@pytest.fixture
def sample_messages() -> list[Message]:
    """A small topical thread: a game, a re-share, and noise."""
    return [
        make_message(0, "Lester getting an ovation at #yankee stadium #redsox",
                     user="amalie", hours=0.0),
        make_message(1, "Classy. Way it should be RT @amalie: Lester getting "
                        "an ovation at #yankee stadium #redsox",
                     user="abcdude", hours=0.5),
        make_message(2, "awesome NY Yankee Stadium photos #redsox "
                        "http://bit.ly/uvcpr", user="baldpunk", hours=1.0),
        make_message(3, "ugh #redsox", user="steve", hours=1.2),
        make_message(4, "market rally today, stocks up #finance "
                        "http://ow.ly/kq3", user="trader", hours=2.0),
    ]


@pytest.fixture
def tiny_stream() -> list[Message]:
    """A deterministic ~1200-message synthetic stream."""
    config = StreamConfig(days=1.0, messages_per_day=1200, seed=3,
                          user_count=200, events_per_day=6.0)
    return StreamGenerator(config).generate_list()
