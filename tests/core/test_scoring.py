"""Tests for Equations 1-6 (scoring functions)."""

from __future__ import annotations

import pytest

from repro.core.config import HOUR_SECONDS, IndexerConfig
from repro.core.connection import ConnectionType
from repro.core.scoring import (bundle_match_score,
                                dominant_connection_type, hashtag_overlap,
                                message_similarity, refinement_score,
                                time_closeness, url_overlap)
from tests.conftest import BASE_DATE, make_message


class TestUrlOverlap:
    def test_full_overlap(self):
        later = make_message(2, "x http://bit.ly/a", hours=1)
        earlier = make_message(1, "y http://bit.ly/a")
        assert url_overlap(later, earlier) == 1.0

    def test_partial_overlap_uses_later_denominator(self):
        later = make_message(2, "x bit.ly/a bit.ly/b", hours=1)
        earlier = make_message(1, "y bit.ly/a")
        assert url_overlap(later, earlier) == pytest.approx(0.5)

    def test_no_urls_in_later_message(self):
        later = make_message(2, "no links", hours=1)
        earlier = make_message(1, "y bit.ly/a")
        assert url_overlap(later, earlier) == 0.0

    def test_disjoint_urls(self):
        later = make_message(2, "x bit.ly/a", hours=1)
        earlier = make_message(1, "y bit.ly/b")
        assert url_overlap(later, earlier) == 0.0


class TestHashtagOverlap:
    def test_full_overlap(self):
        later = make_message(2, "#redsox", hours=1)
        earlier = make_message(1, "#redsox #mlb")
        assert hashtag_overlap(later, earlier) == 1.0

    def test_partial(self):
        later = make_message(2, "#redsox #yankees", hours=1)
        earlier = make_message(1, "#redsox")
        assert hashtag_overlap(later, earlier) == pytest.approx(0.5)

    def test_no_tags(self):
        later = make_message(2, "plain", hours=1)
        earlier = make_message(1, "#redsox")
        assert hashtag_overlap(later, earlier) == 0.0


class TestTimeCloseness:
    def test_simultaneous_messages_score_one(self):
        a = make_message(1, "a")
        b = make_message(2, "b")
        assert time_closeness(a, b) == 1.0

    def test_one_hour_apart_halves(self):
        a = make_message(1, "a", hours=0)
        b = make_message(2, "b", hours=1)
        assert time_closeness(b, a) == pytest.approx(0.5)

    def test_symmetric(self):
        a = make_message(1, "a", hours=0)
        b = make_message(2, "b", hours=5)
        assert time_closeness(a, b) == time_closeness(b, a)

    def test_monotone_decreasing_in_span(self):
        a = make_message(1, "a", hours=0)
        scores = [time_closeness(make_message(2, "b", hours=h), a)
                  for h in (1, 2, 10, 100)]
        assert scores == sorted(scores, reverse=True)


class TestMessageSimilarity:
    def test_combines_all_components(self):
        config = IndexerConfig(url_weight=1.0, hashtag_weight=0.8,
                               time_weight=0.5, rt_weight=2.0)
        earlier = make_message(1, "#redsox bit.ly/a", user="amalie")
        later = make_message(
            2, "RT @amalie: #redsox bit.ly/a", user="fan", hours=1)
        # U=1, H=1, T=0.5, RT hit.
        expected = 1.0 * 1.0 + 0.8 * 1.0 + 0.5 * 0.5 + 2.0
        assert message_similarity(later, earlier, config) == pytest.approx(
            expected)

    def test_rt_bonus_requires_author_match(self):
        config = IndexerConfig()
        earlier = make_message(1, "hello", user="someoneelse")
        later = make_message(2, "RT @amalie: hello", user="fan", hours=1)
        without_rt = message_similarity(later, earlier, config)
        earlier_match = make_message(1, "hello", user="amalie")
        with_rt = message_similarity(later, earlier_match, config)
        assert with_rt == pytest.approx(without_rt + config.rt_weight)

    def test_zero_weights_silence_components(self):
        config = IndexerConfig(url_weight=0.0, hashtag_weight=0.0,
                               time_weight=0.0, rt_weight=0.0)
        earlier = make_message(1, "#redsox bit.ly/a", user="amalie")
        later = make_message(2, "RT @amalie: #redsox bit.ly/a", hours=1)
        assert message_similarity(later, earlier, config) == 0.0


class TestDominantConnectionType:
    def test_rt_beats_everything(self):
        earlier = make_message(1, "#tag bit.ly/a", user="amalie")
        later = make_message(2, "RT @amalie: #tag bit.ly/a", hours=1)
        assert dominant_connection_type(later, earlier) is ConnectionType.RT

    def test_url_beats_hashtag(self):
        earlier = make_message(1, "#tag bit.ly/a")
        later = make_message(2, "other #tag bit.ly/a", user="b", hours=1)
        assert dominant_connection_type(later, earlier) is ConnectionType.URL

    def test_hashtag_when_only_tags_shared(self):
        earlier = make_message(1, "#tag")
        later = make_message(2, "more #tag", user="b", hours=1)
        assert dominant_connection_type(later, earlier) is (
            ConnectionType.HASHTAG)

    def test_text_fallback(self):
        earlier = make_message(1, "plain words")
        later = make_message(2, "other words", user="b", hours=1)
        assert dominant_connection_type(later, earlier) is ConnectionType.TEXT


class TestBundleMatchScore:
    def test_counts_not_fractions(self):
        config = IndexerConfig(url_weight=1.0, hashtag_weight=0.8,
                               keyword_weight=0.2, time_weight=0.0,
                               keyword_hit_cap=10)
        message = make_message(1, "x")
        score = bundle_match_score(
            message, shared_urls=2, shared_hashtags=3, shared_keywords=4,
            rt_hit=False, bundle_last_date=message.date, config=config)
        assert score == pytest.approx(2 * 1.0 + 3 * 0.8 + 4 * 0.2)

    def test_fresh_bundle_beats_stale_on_ties(self):
        config = IndexerConfig()
        message = make_message(1, "x", hours=10)
        fresh = bundle_match_score(
            message, shared_urls=0, shared_hashtags=1, shared_keywords=0,
            rt_hit=False, bundle_last_date=BASE_DATE + 9.5 * HOUR_SECONDS,
            config=config)
        stale = bundle_match_score(
            message, shared_urls=0, shared_hashtags=1, shared_keywords=0,
            rt_hit=False, bundle_last_date=BASE_DATE, config=config)
        assert fresh > stale

    def test_rt_hit_adds_rt_weight(self):
        config = IndexerConfig()
        message = make_message(1, "x")
        base = bundle_match_score(
            message, shared_urls=0, shared_hashtags=0, shared_keywords=0,
            rt_hit=False, bundle_last_date=message.date, config=config)
        with_rt = bundle_match_score(
            message, shared_urls=0, shared_hashtags=0, shared_keywords=0,
            rt_hit=True, bundle_last_date=message.date, config=config)
        assert with_rt == pytest.approx(base + config.rt_weight)

    def test_single_keyword_cannot_reach_default_threshold(self):
        """The calibration fact that prevents mega-bundles: one shared
        background keyword plus maximal freshness stays below the default
        min_match_score."""
        config = IndexerConfig()
        message = make_message(1, "x")
        score = bundle_match_score(
            message, shared_urls=0, shared_hashtags=0, shared_keywords=1,
            rt_hit=False, bundle_last_date=message.date, config=config)
        assert score < config.min_match_score

    def test_keyword_contribution_is_capped(self):
        """Many shared keywords must not beat the cap — this is what
        prevents mega-bundles from attracting every message."""
        config = IndexerConfig()
        message = make_message(1, "x")
        capped = bundle_match_score(
            message, shared_urls=0, shared_hashtags=0,
            shared_keywords=config.keyword_hit_cap,
            rt_hit=False, bundle_last_date=message.date, config=config)
        flooded = bundle_match_score(
            message, shared_urls=0, shared_hashtags=0, shared_keywords=50,
            rt_hit=False, bundle_last_date=message.date, config=config)
        assert flooded == pytest.approx(capped)
        assert flooded < config.min_match_score

    def test_single_hashtag_on_live_bundle_reaches_threshold(self):
        config = IndexerConfig()
        message = make_message(1, "x")
        score = bundle_match_score(
            message, shared_urls=0, shared_hashtags=1, shared_keywords=0,
            rt_hit=False, bundle_last_date=message.date, config=config)
        assert score >= config.min_match_score


class TestRefinementScore:
    def test_older_scores_higher(self):
        now = BASE_DATE + 100 * HOUR_SECONDS
        old = refinement_score(BASE_DATE, 10, now)
        new = refinement_score(now - HOUR_SECONDS, 10, now)
        assert old > new

    def test_smaller_scores_higher_at_same_age(self):
        now = BASE_DATE + 10 * HOUR_SECONDS
        small = refinement_score(BASE_DATE, 1, now)
        big = refinement_score(BASE_DATE, 100, now)
        assert small > big

    def test_eq6_shape(self):
        now = BASE_DATE + 2 * HOUR_SECONDS
        assert refinement_score(BASE_DATE, 4, now) == pytest.approx(
            2.0 + 0.25)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            refinement_score(BASE_DATE, 0, BASE_DATE)
