"""Tests for IndexerConfig validation and the experiment-variant factories."""

from __future__ import annotations

import pytest

from repro.core.config import DAY_SECONDS, IndexerConfig
from repro.core.errors import ConfigurationError


class TestValidation:
    def test_defaults_are_valid(self):
        config = IndexerConfig()
        assert config.max_pool_size is None

    @pytest.mark.parametrize("field", [
        "url_weight", "hashtag_weight", "time_weight",
        "keyword_weight", "rt_weight",
    ])
    def test_negative_weights_rejected(self, field):
        with pytest.raises(ConfigurationError):
            IndexerConfig(**{field: -0.1})

    def test_negative_min_match_score_rejected(self):
        with pytest.raises(ConfigurationError):
            IndexerConfig(min_match_score=-1.0)

    @pytest.mark.parametrize("value", [0, -5])
    def test_nonpositive_pool_size_rejected(self, value):
        with pytest.raises(ConfigurationError):
            IndexerConfig(max_pool_size=value)

    def test_nonpositive_refine_trigger_rejected(self):
        with pytest.raises(ConfigurationError):
            IndexerConfig(refine_trigger=0)

    def test_nonpositive_refine_age_rejected(self):
        with pytest.raises(ConfigurationError):
            IndexerConfig(refine_age=0.0)

    def test_negative_tiny_size_rejected(self):
        with pytest.raises(ConfigurationError):
            IndexerConfig(refine_tiny_size=-1)

    @pytest.mark.parametrize("value", [0.0, 1.5])
    def test_target_fraction_bounds(self, value):
        with pytest.raises(ConfigurationError):
            IndexerConfig(refine_target_fraction=value)

    def test_target_fraction_one_is_allowed(self):
        assert IndexerConfig(refine_target_fraction=1.0)

    def test_nonpositive_bundle_size_rejected(self):
        with pytest.raises(ConfigurationError):
            IndexerConfig(max_bundle_size=0)

    def test_nonpositive_max_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            IndexerConfig(max_candidates=0)

    def test_negative_max_keywords_rejected(self):
        with pytest.raises(ConfigurationError):
            IndexerConfig(max_keywords=-1)

    def test_nonpositive_alloc_window_rejected(self):
        with pytest.raises(ConfigurationError):
            IndexerConfig(alloc_window=0)

    def test_unknown_refine_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            IndexerConfig(refine_policy="lru")

    @pytest.mark.parametrize("policy", ["g", "age", "size"])
    def test_known_policies_accepted(self, policy):
        assert IndexerConfig(refine_policy=policy).refine_policy == policy


class TestFactories:
    def test_full_index_has_no_limits(self):
        config = IndexerConfig.full_index()
        assert config.max_pool_size is None
        assert config.max_bundle_size is None

    def test_partial_index_sets_pool_and_trigger(self):
        config = IndexerConfig.partial_index(pool_size=5000)
        assert config.max_pool_size == 5000
        assert config.refine_trigger == 5000
        assert config.max_bundle_size is None

    def test_bundle_limit_sets_both(self):
        config = IndexerConfig.bundle_limit(pool_size=100, bundle_size=20)
        assert config.max_pool_size == 100
        assert config.max_bundle_size == 20

    def test_factory_accepts_overrides(self):
        config = IndexerConfig.partial_index(pool_size=10, rt_weight=5.0)
        assert config.rt_weight == 5.0

    def test_with_overrides_returns_new_instance(self):
        base = IndexerConfig()
        changed = base.with_overrides(url_weight=3.0)
        assert changed.url_weight == 3.0
        assert base.url_weight == 1.0
        assert changed is not base

    def test_config_is_frozen(self):
        config = IndexerConfig()
        with pytest.raises(AttributeError):
            config.url_weight = 2.0  # type: ignore[misc]

    def test_day_constant(self):
        assert DAY_SECONDS == 86400.0
