"""Tests for the user-credibility tracker."""

from __future__ import annotations

import pytest

from repro.core.bundle import Bundle
from repro.core.credibility import CredibilityTracker
from tests.conftest import make_message


def reshared_source_bundle() -> Bundle:
    """@writer's post re-shared three times."""
    bundle = Bundle(0)
    bundle.insert(make_message(0, "scoop from the stadium", user="writer"))
    for index in (1, 2, 3):
        bundle.insert(make_message(index, "RT @writer: scoop from the "
                                          "stadium", user=f"fan{index}",
                                   hours=0.1 * index))
    return bundle


def singleton_bundle(msg_id: int, user: str) -> Bundle:
    bundle = Bundle(msg_id + 100)
    bundle.insert(make_message(msg_id, f"isolated fragment {msg_id}",
                               user=user))
    return bundle


class TestTracking:
    def test_unseen_user_neutral(self):
        assert CredibilityTracker().score("nobody") == 0.5

    def test_reshared_source_gains(self):
        tracker = CredibilityTracker()
        tracker.observe_bundle(reshared_source_bundle())
        assert tracker.score("writer") > 0.5

    def test_isolated_user_drops(self):
        tracker = CredibilityTracker()
        for index in range(6):
            tracker.observe_bundle(singleton_bundle(index, "noisy"))
        assert tracker.score("noisy") < 0.5

    def test_counters(self):
        tracker = CredibilityTracker()
        tracker.observe_bundle(reshared_source_bundle())
        record = tracker.record("writer")
        assert record.messages == 1
        assert record.reshared == 3
        assert record.sources == 1
        assert record.isolated == 0

    def test_singleton_counters(self):
        tracker = CredibilityTracker()
        tracker.observe_bundle(singleton_bundle(0, "lone"))
        record = tracker.record("lone")
        assert record.isolated == 1
        assert record.sources == 0  # singleton roots don't count

    def test_score_bounded(self):
        tracker = CredibilityTracker(prior=1.0)
        for _ in range(5):
            tracker.observe_bundle(reshared_source_bundle())
        assert 0.0 < tracker.score("writer") <= 1.0
        assert 0.0 < tracker.score("fan1") <= 1.0

    def test_invalid_prior(self):
        with pytest.raises(ValueError):
            CredibilityTracker(prior=0.0)


class TestRankings:
    def _tracker(self) -> CredibilityTracker:
        tracker = CredibilityTracker()
        for _ in range(4):
            tracker.observe_bundle(reshared_source_bundle())
        for index in range(4):
            tracker.observe_bundle(singleton_bundle(index, "noisy"))
        return tracker

    def test_top_users(self):
        tracker = self._tracker()
        top = tracker.top_users(k=1, min_messages=3)
        assert top[0][0] == "writer"

    def test_noise_users(self):
        tracker = self._tracker()
        worst = tracker.noise_users(k=1, min_messages=3)
        assert worst[0][0] == "noisy"

    def test_min_messages_filters(self):
        tracker = CredibilityTracker()
        tracker.observe_bundle(reshared_source_bundle())  # writer: 1 msg
        assert tracker.top_users(min_messages=2) == []

    def test_observe_pool(self):
        tracker = CredibilityTracker()
        tracker.observe_pool([reshared_source_bundle(),
                              singleton_bundle(0, "x")])
        assert "writer" in tracker and "x" in tracker
        assert len(tracker) == 5  # writer + 3 fans + x
