"""Tests for Bundle (Definition 3) and Algorithm 2 allocation."""

from __future__ import annotations

import pytest

from repro.core.bundle import Bundle
from repro.core.config import IndexerConfig
from repro.core.connection import ConnectionType
from repro.core.errors import BundleClosedError, BundleError
from tests.conftest import make_message


@pytest.fixture
def bundle() -> Bundle:
    return Bundle(0, IndexerConfig())


class TestInsertion:
    def test_first_message_is_root(self, bundle):
        edge = bundle.insert(make_message(1, "#tag start"))
        assert edge is None
        assert bundle.parent_of(1) is None
        assert len(bundle) == 1

    def test_second_message_connects_to_first(self, bundle):
        bundle.insert(make_message(1, "#tag start"))
        edge = bundle.insert(make_message(2, "#tag more", user="b", hours=1))
        assert edge is not None
        assert edge.src_id == 2 and edge.dst_id == 1
        assert edge.kind is ConnectionType.HASHTAG

    def test_rt_connects_to_author_even_if_older(self, bundle):
        bundle.insert(make_message(1, "#tag news", user="mlb"))
        bundle.insert(make_message(2, "#tag chatter", user="x", hours=0.1))
        edge = bundle.insert(
            make_message(3, "RT @mlb: #tag news", user="fan", hours=0.2))
        assert edge is not None
        assert edge.dst_id == 1
        assert edge.kind is ConnectionType.RT

    def test_max_scored_prior_wins(self, bundle):
        # URL + hashtag beats hashtag alone.
        bundle.insert(make_message(1, "#tag plain"))
        bundle.insert(make_message(2, "#tag rich bit.ly/a", user="b",
                                   hours=0.1))
        edge = bundle.insert(
            make_message(3, "#tag follow bit.ly/a", user="c", hours=0.2))
        assert edge is not None
        assert edge.dst_id == 2
        assert edge.kind is ConnectionType.URL

    def test_keyword_only_match_uses_text_kind(self, bundle):
        bundle.insert(make_message(1, "baseball tonight"),
                      keywords=frozenset({"baseball", "tonight"}))
        edge = bundle.insert(
            make_message(2, "baseball game", user="b", hours=1),
            keywords=frozenset({"baseball", "game"}))
        assert edge is not None
        assert edge.kind is ConnectionType.TEXT

    def test_no_overlap_falls_back_to_latest_member(self, bundle):
        bundle.insert(make_message(1, "#one alpha"))
        bundle.insert(make_message(2, "#one beta", user="b", hours=1))
        edge = bundle.insert(make_message(3, "#zzz unrelated", user="c",
                                          hours=2))
        assert edge is not None
        assert edge.dst_id == 2  # most recent member

    def test_duplicate_member_rejected(self, bundle):
        bundle.insert(make_message(1, "x"))
        with pytest.raises(BundleError):
            bundle.insert(make_message(1, "x again"))

    def test_closed_bundle_rejects_insert(self, bundle):
        bundle.insert(make_message(1, "x"))
        bundle.close()
        with pytest.raises(BundleClosedError):
            bundle.insert(make_message(2, "y", hours=1))

    def test_time_window_widens(self, bundle):
        bundle.insert(make_message(1, "#t a", hours=5))
        bundle.insert(make_message(2, "#t b", hours=2))
        bundle.insert(make_message(3, "#t c", hours=9))
        assert bundle.time_span == pytest.approx(7 * 3600.0)
        assert bundle.last_update == make_message(3, "x", hours=9).date


class TestSummaries:
    def test_counters_accumulate(self, bundle):
        bundle.insert(make_message(1, "#tag one bit.ly/a"),
                      keywords=frozenset({"one"}))
        bundle.insert(make_message(2, "#tag two bit.ly/a", user="b", hours=1),
                      keywords=frozenset({"two"}))
        assert bundle.hashtag_counts["tag"] == 2
        assert bundle.url_counts["bit.ly/a"] == 2
        assert bundle.keyword_counts["one"] == 1
        assert bundle.user_counts["alice"] == 1

    def test_summary_words_ranked_by_frequency(self, bundle):
        for index in range(3):
            bundle.insert(
                make_message(index, "#redsox game", user=f"u{index}",
                             hours=index * 0.1),
                keywords=frozenset({"game"}))
        words = bundle.summary_words(2)
        assert set(words) == {"redsox", "game"}

    def test_shared_counts(self, bundle):
        bundle.insert(make_message(1, "#tag bit.ly/a", user="mlb"),
                      keywords=frozenset({"game"}))
        incoming = make_message(2, "RT @mlb: #tag bit.ly/a", user="f",
                                hours=1)
        urls, tags, kws, rt = bundle.shared_counts(
            incoming, frozenset({"game", "other"}))
        assert (urls, tags, kws, rt) == (1, 1, 1, True)

    def test_shared_counts_empty(self, bundle):
        bundle.insert(make_message(1, "#tag"))
        incoming = make_message(2, "nothing", user="b", hours=1)
        assert bundle.shared_counts(incoming, frozenset()) == (0, 0, 0, False)

    def test_keywords_of_members(self, bundle):
        bundle.insert(make_message(1, "x"), keywords=frozenset({"alpha"}))
        assert bundle.keywords_of(1) == frozenset({"alpha"})
        assert bundle.keywords_of(999) == frozenset()


class TestStructure:
    def test_iteration_in_arrival_order(self, bundle):
        for index in (3, 1, 2):
            bundle.insert(make_message(index, f"#t {index}",
                                       user=f"u{index}", hours=index * 0.1))
        assert [m.msg_id for m in bundle] == [3, 1, 2]
        assert bundle.message_ids() == [3, 1, 2]

    def test_edge_pairs(self, bundle):
        bundle.insert(make_message(1, "#t a"))
        bundle.insert(make_message(2, "#t b", user="b", hours=0.1))
        assert bundle.edge_pairs() == {(2, 1)}

    def test_contains_and_get(self, bundle):
        message = make_message(1, "x")
        bundle.insert(message)
        assert 1 in bundle
        assert bundle.get(1) == message
        assert bundle.get(2) is None

    def test_alloc_window_caps_candidates(self):
        config = IndexerConfig(alloc_window=2)
        bundle = Bundle(0, config)
        for index in range(10):
            bundle.insert(make_message(index, "#t same",
                                       user=f"u{index}", hours=index * 0.01))
        # With window 2 the newest message can only see the 2 most recent
        # sharers, so its edge target must be one of ids {8, 9}.
        edge = bundle.insert(make_message(10, "#t same", user="new",
                                          hours=0.2))
        assert edge is not None
        assert edge.dst_id in {8, 9}

    def test_memory_estimate_grows_with_members(self, bundle):
        bundle.insert(make_message(1, "#tag hello bit.ly/a"))
        small = bundle.approximate_memory_bytes()
        bundle.insert(make_message(2, "#tag more text here", user="b",
                                   hours=1))
        assert bundle.approximate_memory_bytes() > small
