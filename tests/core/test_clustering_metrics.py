"""Tests for clustering-quality metrics over event labels."""

from __future__ import annotations

import pytest

from repro.core.bundle import Bundle
from repro.core.clustering_metrics import (bcubed_scores,
                                           event_fragmentation,
                                           pairwise_scores)
from tests.conftest import make_message


def bundle_with(bundle_id: int, specs: "list[tuple[int, int | None]]") -> Bundle:
    """A bundle from (msg_id, event_id) pairs."""
    bundle = Bundle(bundle_id)
    for position, (msg_id, event_id) in enumerate(specs):
        bundle.insert(make_message(msg_id, f"#b{bundle_id} m{msg_id}",
                                   user=f"u{msg_id}",
                                   hours=position * 0.1,
                                   event_id=event_id))
    return bundle


class TestPerfectClustering:
    def _bundles(self):
        return [
            bundle_with(0, [(0, 1), (1, 1), (2, 1)]),
            bundle_with(1, [(10, 2), (11, 2)]),
        ]

    def test_pairwise_perfect(self):
        scores = pairwise_scores(self._bundles())
        assert scores.precision == 1.0
        assert scores.recall == 1.0
        assert scores.f1 == 1.0

    def test_bcubed_perfect(self):
        scores = bcubed_scores(self._bundles())
        assert scores.precision == 1.0
        assert scores.recall == 1.0

    def test_fragmentation_one(self):
        assert event_fragmentation(self._bundles()) == 1.0


class TestSplitEvent:
    """One event split across two bundles: precision 1, recall < 1."""

    def _bundles(self):
        return [
            bundle_with(0, [(0, 1), (1, 1)]),
            bundle_with(1, [(2, 1), (3, 1)]),
        ]

    def test_pairwise(self):
        scores = pairwise_scores(self._bundles())
        assert scores.precision == 1.0
        # same-event pairs: C(4,2)=6; same-bundle ones: 1+1=2
        assert scores.recall == pytest.approx(2 / 6)

    def test_bcubed(self):
        scores = bcubed_scores(self._bundles())
        assert scores.precision == 1.0
        assert scores.recall == pytest.approx(0.5)

    def test_fragmentation(self):
        assert event_fragmentation(self._bundles()) == 2.0


class TestMergedEvents:
    """Two events glued into one bundle: recall 1, precision < 1."""

    def _bundles(self):
        return [bundle_with(0, [(0, 1), (1, 1), (2, 2), (3, 2)])]

    def test_pairwise(self):
        scores = pairwise_scores(self._bundles())
        assert scores.recall == 1.0
        # same-bundle pairs: C(4,2)=6; same-event among them: 1+1=2
        assert scores.precision == pytest.approx(2 / 6)

    def test_bcubed(self):
        scores = bcubed_scores(self._bundles())
        assert scores.recall == 1.0
        assert scores.precision == pytest.approx(0.5)

    def test_fragmentation_unaffected(self):
        assert event_fragmentation(self._bundles()) == 1.0


class TestEdgeCases:
    def test_no_labelled_messages(self):
        bundles = [bundle_with(0, [(0, None), (1, None)])]
        assert pairwise_scores(bundles).f1 == 1.0
        assert bcubed_scores(bundles).precision == 1.0
        assert event_fragmentation(bundles) == 1.0

    def test_noise_ignored(self):
        with_noise = [bundle_with(0, [(0, 1), (1, 1), (2, None)])]
        without = [bundle_with(0, [(0, 1), (1, 1)])]
        assert pairwise_scores(with_noise) == pairwise_scores(without)

    def test_singleton_events(self):
        bundles = [bundle_with(0, [(0, 1)]), bundle_with(1, [(1, 2)])]
        scores = pairwise_scores(bundles)
        assert scores.precision == 1.0 and scores.recall == 1.0

    def test_f1_zero_when_both_zero(self):
        from repro.core.clustering_metrics import ClusteringScores

        assert ClusteringScores(0.0, 0.0).f1 == 0.0

    def test_bundle_limit_increases_fragmentation(self):
        """The mechanism behind Fig. 8: a tight bundle-size limit splits
        events across more bundles."""
        from repro.core.config import IndexerConfig
        from repro.core.engine import ProvenanceIndexer

        def run(config):
            indexer = ProvenanceIndexer(config)
            for index in range(30):
                indexer.ingest(make_message(
                    index, "#megaevent update", user=f"u{index}",
                    hours=index * 0.05, event_id=1))
            return event_fragmentation(indexer.bundles())

        unlimited = run(IndexerConfig.full_index())
        limited = run(IndexerConfig.bundle_limit(pool_size=100,
                                                 bundle_size=5))
        assert limited > unlimited
