"""Tests for the summary index (Fig. 5), over both postings backends."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bundle import Bundle
from repro.core.errors import IndexError_
from repro.core.postings import SlabPostingsStorage
from repro.core.summary_index import INDICANT_KINDS, SummaryIndex
from repro.obs.registry import MetricsRegistry
from tests.conftest import make_message

BACKENDS = ("slab", "dict")


@pytest.fixture(params=BACKENDS)
def index(request) -> SummaryIndex:
    return SummaryIndex(backend=request.param)


class TestAddAndLookup:
    def test_hashtag_lookup(self, index):
        index.add_message(7, make_message(1, "#redsox go"), frozenset())
        assert index.postings("hashtag", "redsox") == {7: 1}

    def test_counts_increment(self, index):
        index.add_message(7, make_message(1, "#redsox"), frozenset())
        index.add_message(7, make_message(2, "#redsox", hours=1), frozenset())
        assert index.postings("hashtag", "redsox") == {7: 2}

    def test_url_and_keyword_and_user_maps(self, index):
        index.add_message(
            3, make_message(1, "x bit.ly/a", user="mlb"),
            frozenset({"game"}))
        assert index.postings("url", "bit.ly/a") == {3: 1}
        assert index.postings("keyword", "game") == {3: 1}
        assert index.postings("user", "mlb") == {3: 1}

    def test_unknown_term_returns_empty(self, index):
        assert index.postings("hashtag", "nothing") == {}

    def test_unknown_kind_raises(self, index):
        with pytest.raises(IndexError_):
            index.postings("bogus", "x")

    def test_term_and_entry_counts(self, index):
        index.add_message(1, make_message(1, "#a #b"), frozenset({"kw"}))
        index.add_message(2, make_message(2, "#a", user="bob", hours=1),
                          frozenset())
        assert index.term_count("hashtag") == 2
        # hashtag a->2 bundles, b->1; keyword kw->1; user alice->1, bob->1.
        assert index.entry_count() == 2 + 1 + 1 + 1 + 1

    def test_terms_iteration(self, index):
        index.add_message(1, make_message(1, "#x #y"), frozenset())
        assert sorted(index.iter_terms("hashtag")) == ["x", "y"]


class TestCandidates:
    def test_candidates_weighted_by_hits(self, index):
        index.add_message(1, make_message(1, "#a bit.ly/z"), frozenset())
        index.add_message(2, make_message(2, "#a", user="b", hours=1),
                          frozenset())
        incoming = make_message(3, "#a check bit.ly/z", user="c", hours=2)
        hits = index.candidates(incoming, frozenset())
        assert hits[1] == 2  # hashtag + url
        assert hits[2] == 1  # hashtag only

    def test_gather_kind_rows_are_shared_counts(self, index):
        index.add_message(1, make_message(1, "#a bit.ly/z"), frozenset())
        index.add_message(2, make_message(2, "#a", user="b", hours=1),
                          frozenset({"game"}))
        incoming = make_message(3, "#a check bit.ly/z", user="c", hours=2)
        gather = index.gather_candidates(incoming, frozenset({"game"}))
        assert list(gather.ids) == [1, 2]
        tag_hits, url_hits, kw_hits, user_hits = gather.kind_hits
        assert list(tag_hits) == [1, 1]
        assert list(url_hits) == [1, 0]
        assert list(kw_hits) == [0, 1]
        assert list(user_hits) == [0, 0]
        assert list(gather.hits) == [2, 2]

    def test_candidates_batch_matches_single_probes(self, index):
        index.add_message(1, make_message(1, "#a bit.ly/z"), frozenset())
        index.add_message(2, make_message(2, "#a", user="b", hours=1),
                          frozenset())
        probes = [
            (make_message(3, "#a", user="c", hours=2), frozenset()),
            (make_message(4, "bit.ly/z", user="d", hours=3), frozenset()),
        ]
        batched = index.candidates_batch(probes)
        assert len(batched) == 2
        for gather, (message, keywords) in zip(batched, probes):
            single = index.gather_candidates(message, keywords)
            assert list(gather.ids) == list(single.ids)
            assert list(gather.hits) == list(single.hits)

    def test_rt_users_hit_user_map(self, index):
        index.add_message(4, make_message(1, "news", user="mlb"), frozenset())
        incoming = make_message(2, "RT @mlb: news", user="fan", hours=1)
        assert index.candidates(incoming, frozenset())[4] == 1

    def test_keywords_hit_keyword_map(self, index):
        index.add_message(5, make_message(1, "x"), frozenset({"game"}))
        incoming = make_message(2, "y", user="b", hours=1)
        assert index.candidates(incoming, frozenset({"game"}))[5] == 1

    def test_no_candidates_for_unseen_indicants(self, index):
        index.add_message(1, make_message(1, "#a"), frozenset())
        incoming = make_message(2, "#zzz", user="b", hours=1)
        assert not index.candidates(incoming, frozenset())


class TestRemoveBundle:
    def _bundle_with_messages(self) -> Bundle:
        bundle = Bundle(9)
        bundle.insert(make_message(1, "#a bit.ly/z", user="mlb"),
                      keywords=frozenset({"game"}))
        bundle.insert(make_message(2, "#a more", user="fan", hours=1),
                      keywords=frozenset({"game"}))
        return bundle

    def test_remove_erases_all_entries(self, index):
        bundle = self._bundle_with_messages()
        for msg_id in bundle.message_ids():
            message = bundle.get(msg_id)
            index.add_message(9, message, bundle.keywords_of(msg_id))
        index.remove_bundle(bundle)
        assert index.entry_count() == 0
        assert index.term_count() == 0

    def test_remove_keeps_other_bundles(self, index):
        bundle = self._bundle_with_messages()
        for msg_id in bundle.message_ids():
            index.add_message(9, bundle.get(msg_id),
                              bundle.keywords_of(msg_id))
        index.add_message(10, make_message(5, "#a other", user="x", hours=2),
                          frozenset())
        index.remove_bundle(bundle)
        assert index.postings("hashtag", "a") == {10: 1}

    def test_remove_missing_bundle_is_noop(self, index):
        bundle = self._bundle_with_messages()
        index.remove_bundle(bundle)  # never added
        assert index.entry_count() == 0


class TestMemory:
    def test_memory_estimate_grows(self, index):
        empty = index.approximate_memory_bytes()
        index.add_message(1, make_message(1, "#tag bit.ly/a"), frozenset())
        assert index.approximate_memory_bytes() > empty

    def test_memory_root_walkable(self, index):
        from repro.obs.anatomy import deep_size_bytes

        index.add_message(1, make_message(1, "#tag bit.ly/a"),
                          frozenset({"kw"}))
        assert deep_size_bytes(index.memory_root()) > 0


class TestIntrospection:
    def test_postings_length_counts_bundles_not_occurrences(self, index):
        index.add_message(1, make_message(1, "#a"), frozenset())
        index.add_message(1, make_message(2, "#a", hours=1), frozenset())
        index.add_message(2, make_message(3, "#a", user="b", hours=2),
                          frozenset())
        assert index.postings_length("hashtag", "a") == 2

    def test_postings_length_unseen_term_is_zero(self, index):
        assert index.postings_length("hashtag", "nothing") == 0

    def test_postings_length_unknown_kind_raises(self, index):
        with pytest.raises(IndexError_):
            index.postings_length("bogus", "x")

    def test_postings_lengths_full_population(self, index):
        index.add_message(1, make_message(1, "#a #b"), frozenset())
        index.add_message(2, make_message(2, "#a", user="b", hours=1),
                          frozenset())
        assert sorted(index.postings_lengths("hashtag")) == [1, 2]
        with pytest.raises(IndexError_):
            index.postings_lengths("bogus")

    def test_per_kind_counts(self, index):
        index.add_message(1, make_message(1, "#a bit.ly/z"),
                          frozenset({"kw"}))
        index.add_message(2, make_message(2, "#a", user="bob", hours=1),
                          frozenset())
        assert index.term_count("hashtag") == 1
        assert index.entry_count("hashtag") == 2
        assert index.term_count("url") == 1
        assert index.term_count("user") == 2
        with pytest.raises(IndexError_):
            index.entry_count("bogus")

    def test_postings_view_is_immutable(self, index):
        # Regression for the bundles_for aliasing bug: the old spelling
        # could return the live inner dict, so a caller's mutation
        # corrupted the index.  The view now refuses writes outright.
        index.add_message(7, make_message(1, "#a"), frozenset())
        view = index.postings("hashtag", "a")
        with pytest.raises(TypeError):
            view[99] = 123
        with pytest.raises(TypeError):
            view[7] = -1
        assert index.postings("hashtag", "a") == {7: 1}
        assert index.postings_length("hashtag", "a") == 1

    def test_bundles_for_warns_and_returns_isolated_copy(self, index):
        index.add_message(7, make_message(1, "#a"), frozenset())
        with pytest.deprecated_call():
            view = index.bundles_for("hashtag", "a")
        view[99] = 123
        view[7] = -1
        assert index.postings("hashtag", "a") == {7: 1}
        assert index.postings_length("hashtag", "a") == 1

    def test_terms_spelling_warns(self, index):
        index.add_message(1, make_message(1, "#x"), frozenset())
        with pytest.deprecated_call():
            terms = index.terms("hashtag")
        assert sorted(terms) == ["x"]

    def test_empty_term_cleanup_after_remove(self, index):
        bundle = Bundle(4)
        bundle.insert(make_message(1, "#solo"), keywords=frozenset())
        index.add_message(4, bundle.get(1), frozenset())
        index.add_message(5, make_message(2, "#other", user="b", hours=1),
                          frozenset())
        index.remove_bundle(bundle)
        # The now-empty 'solo' postings must be deleted outright, not
        # left as an empty shell inflating term_count and the memory
        # estimate.
        assert "solo" not in set(index.iter_terms("hashtag"))
        assert index.term_count("hashtag") == 1
        assert index.postings_length("hashtag", "solo") == 0

    def test_per_kind_gauges(self, index):
        registry = MetricsRegistry()
        index.bind_registry(registry)
        index.add_message(1, make_message(1, "#a #b"), frozenset({"kw"}))
        assert registry.value("repro_index_terms",
                              {"kind": "hashtag"}) == 2
        assert registry.value("repro_index_entries",
                              {"kind": "keyword"}) == 1
        assert registry.value("repro_index_terms",
                              {"kind": "url"}) == 0
        # The unlabeled totals stay alongside the per-kind views.
        assert registry.value("repro_index_terms") == 4


_PLANS = st.lists(
    st.tuples(st.integers(0, 3),                    # bundle id
              st.sampled_from(["#a", "#b x", "bit.ly/z", "plain"]),
              st.sampled_from(["alice", "bob"]),
              st.frozensets(st.sampled_from(["k1", "k2"]),
                            max_size=2)),
    max_size=24)


class TestRoundTripProperty:
    @staticmethod
    def _replay(plan):
        """Drive both backends in lockstep; return them plus the bundles."""
        slab = SummaryIndex(backend="slab")
        legacy = SummaryIndex(backend="dict")
        bundles: dict[int, Bundle] = {}
        for msg_id, (bundle_id, text, user, keywords) in enumerate(plan):
            bundle = bundles.setdefault(bundle_id, Bundle(bundle_id))
            message = make_message(msg_id, text, user=user,
                                   hours=float(msg_id))
            bundle.insert(message, keywords=keywords)
            slab.add_message(bundle_id, message, keywords)
            legacy.add_message(bundle_id, message, keywords)
        return slab, legacy, bundles

    @given(plan=_PLANS)
    @settings(max_examples=40, deadline=None)
    def test_add_remove_round_trip_empties_index(self, plan):
        # Mirror every add in real Bundles, then remove each bundle:
        # the index must return to exactly empty — any residue would
        # leak candidates (and memory) across evictions forever.
        slab, legacy, bundles = self._replay(plan)
        for kind in INDICANT_KINDS:
            assert (sorted(slab.iter_terms(kind))
                    == sorted(legacy.iter_terms(kind)))
            for term in slab.iter_terms(kind):
                assert (dict(slab.postings(kind, term))
                        == dict(legacy.postings(kind, term)))
        for index in (slab, legacy):
            for bundle in bundles.values():
                index.remove_bundle(bundle)
            assert index.entry_count() == 0
            assert index.term_count() == 0
            for kind in INDICANT_KINDS:
                assert index.postings_lengths(kind) == []

    @given(plan=_PLANS)
    @settings(max_examples=25, deadline=None)
    def test_slab_arena_reuse_after_churn(self, plan):
        # Evicting every bundle then replaying the same adds must be
        # served from the free lists: the arenas must not grow at all
        # on the second pass (the anti-fragmentation property the slab
        # free lists exist for).
        slab, _, bundles = self._replay(plan)
        storage = slab._storage
        assert isinstance(storage, SlabPostingsStorage)
        for bundle in bundles.values():
            slab.remove_bundle(bundle)
        arena_sizes = {kind: len(storage._slabs[kind].ids)
                       for kind in INDICANT_KINDS}
        for msg_id, (bundle_id, text, user, keywords) in enumerate(plan):
            bundle = bundles[bundle_id]
            message = bundle.get(msg_id)
            slab.add_message(bundle_id, message, keywords)
        for kind in INDICANT_KINDS:
            assert len(storage._slabs[kind].ids) == arena_sizes[kind]
