"""Tests for the summary index (Fig. 5)."""

from __future__ import annotations

import pytest

from repro.core.bundle import Bundle
from repro.core.errors import IndexError_
from repro.core.summary_index import SummaryIndex
from tests.conftest import make_message


@pytest.fixture
def index() -> SummaryIndex:
    return SummaryIndex()


class TestAddAndLookup:
    def test_hashtag_lookup(self, index):
        index.add_message(7, make_message(1, "#redsox go"), frozenset())
        assert index.bundles_for("hashtag", "redsox") == {7: 1}

    def test_counts_increment(self, index):
        index.add_message(7, make_message(1, "#redsox"), frozenset())
        index.add_message(7, make_message(2, "#redsox", hours=1), frozenset())
        assert index.bundles_for("hashtag", "redsox") == {7: 2}

    def test_url_and_keyword_and_user_maps(self, index):
        index.add_message(
            3, make_message(1, "x bit.ly/a", user="mlb"),
            frozenset({"game"}))
        assert index.bundles_for("url", "bit.ly/a") == {3: 1}
        assert index.bundles_for("keyword", "game") == {3: 1}
        assert index.bundles_for("user", "mlb") == {3: 1}

    def test_unknown_term_returns_empty(self, index):
        assert index.bundles_for("hashtag", "nothing") == {}

    def test_unknown_kind_raises(self, index):
        with pytest.raises(IndexError_):
            index.bundles_for("bogus", "x")

    def test_term_and_entry_counts(self, index):
        index.add_message(1, make_message(1, "#a #b"), frozenset({"kw"}))
        index.add_message(2, make_message(2, "#a", user="bob", hours=1),
                          frozenset())
        assert index.term_count("hashtag") == 2
        # hashtag a->2 bundles, b->1; keyword kw->1; user alice->1, bob->1.
        assert index.entry_count() == 2 + 1 + 1 + 1 + 1

    def test_terms_iteration(self, index):
        index.add_message(1, make_message(1, "#x #y"), frozenset())
        assert sorted(index.terms("hashtag")) == ["x", "y"]


class TestCandidates:
    def test_candidates_weighted_by_hits(self, index):
        index.add_message(1, make_message(1, "#a bit.ly/z"), frozenset())
        index.add_message(2, make_message(2, "#a", user="b", hours=1),
                          frozenset())
        incoming = make_message(3, "#a check bit.ly/z", user="c", hours=2)
        hits = index.candidates(incoming, frozenset())
        assert hits[1] == 2  # hashtag + url
        assert hits[2] == 1  # hashtag only

    def test_rt_users_hit_user_map(self, index):
        index.add_message(4, make_message(1, "news", user="mlb"), frozenset())
        incoming = make_message(2, "RT @mlb: news", user="fan", hours=1)
        assert index.candidates(incoming, frozenset())[4] == 1

    def test_keywords_hit_keyword_map(self, index):
        index.add_message(5, make_message(1, "x"), frozenset({"game"}))
        incoming = make_message(2, "y", user="b", hours=1)
        assert index.candidates(incoming, frozenset({"game"}))[5] == 1

    def test_no_candidates_for_unseen_indicants(self, index):
        index.add_message(1, make_message(1, "#a"), frozenset())
        incoming = make_message(2, "#zzz", user="b", hours=1)
        assert not index.candidates(incoming, frozenset())


class TestRemoveBundle:
    def _bundle_with_messages(self) -> Bundle:
        bundle = Bundle(9)
        bundle.insert(make_message(1, "#a bit.ly/z", user="mlb"),
                      keywords=frozenset({"game"}))
        bundle.insert(make_message(2, "#a more", user="fan", hours=1),
                      keywords=frozenset({"game"}))
        return bundle

    def test_remove_erases_all_entries(self, index):
        bundle = self._bundle_with_messages()
        for msg_id in bundle.message_ids():
            message = bundle.get(msg_id)
            index.add_message(9, message, bundle.keywords_of(msg_id))
        index.remove_bundle(bundle)
        assert index.entry_count() == 0
        assert index.term_count() == 0

    def test_remove_keeps_other_bundles(self, index):
        bundle = self._bundle_with_messages()
        for msg_id in bundle.message_ids():
            index.add_message(9, bundle.get(msg_id),
                              bundle.keywords_of(msg_id))
        index.add_message(10, make_message(5, "#a other", user="x", hours=2),
                          frozenset())
        index.remove_bundle(bundle)
        assert index.bundles_for("hashtag", "a") == {10: 1}

    def test_remove_missing_bundle_is_noop(self, index):
        bundle = self._bundle_with_messages()
        index.remove_bundle(bundle)  # never added
        assert index.entry_count() == 0


class TestMemory:
    def test_memory_estimate_grows(self, index):
        empty = index.approximate_memory_bytes()
        index.add_message(1, make_message(1, "#tag bit.ly/a"), frozenset())
        assert index.approximate_memory_bytes() > empty
