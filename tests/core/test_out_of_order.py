"""Out-of-order arrivals must not disturb pool eviction ordering.

Regression suite for the late-arrival bug: a message dated far in the
stream's past used to stamp its receiving bundle with that old date,
making a *freshly touched* bundle look idle to Algorithm 3 — instant
eviction bait (tiny deletion, or top ``G(B)`` eviction priority).  The
engine now floors ``bundle.last_update`` at the stream clock on every
insert, in-order streams unaffected, and the floor survives snapshot
round-trips.
"""

from __future__ import annotations

import dataclasses

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.storage.snapshot import load_snapshot, save_snapshot
from tests.conftest import make_message


def config(**overrides) -> IndexerConfig:
    base = IndexerConfig.partial_index(pool_size=10)
    return dataclasses.replace(base, **overrides) if overrides else base


class TestArrivalFloor:
    def test_late_new_bundle_is_floored_at_stream_clock(self):
        engine = ProvenanceIndexer(config())
        for i in range(5):
            engine.ingest(make_message(
                i, f"fresh story number {i} about topic{i}", hours=100 + i))
        result = engine.ingest(make_message(
            99, "an ancient unrelated dispatch finally arriving",
            hours=0.0))
        bundle = engine.pool.get(result.bundle_id)
        # The message keeps its (old) date; the bundle does not.
        assert bundle.get(99).date < engine.current_date
        assert bundle.last_update == engine.current_date

    def test_late_match_into_existing_bundle_is_floored(self):
        engine = ProvenanceIndexer(config())
        first = engine.ingest(make_message(
            1, "#quake tremors reported downtown near the harbor",
            hours=0.0))
        engine.ingest(make_message(
            2, "totally different gardening chat about tulips",
            hours=50.0))
        result = engine.ingest(make_message(
            3, "#quake tremors reported downtown near the harbor again",
            hours=1.0))
        assert result.bundle_id == first.bundle_id
        bundle = engine.pool.get(result.bundle_id)
        assert bundle.last_update == engine.current_date

    def test_in_order_streams_are_unchanged(self):
        engine = ProvenanceIndexer(config())
        for i in range(6):
            result = engine.ingest(make_message(
                i, f"steady story number {i} about topic{i % 2}",
                hours=float(i)))
            bundle = engine.pool.get(result.bundle_id)
            # In order, the floor is a no-op: last member date wins.
            assert bundle.last_update == engine.current_date


class TestEvictionOrdering:
    def test_late_arrival_is_not_tiny_deletion_bait(self):
        # refine_age of one hour: anything idle longer than that and
        # smaller than refine_tiny_size dies at the next scan.  A late
        # message dated 99 hours back lands a *new* bundle — which must
        # still count as just-touched, not 99 hours idle.
        engine = ProvenanceIndexer(config(refine_age=3600.0))
        for i in range(3):
            engine.ingest(make_message(
                i, f"warmup story number {i} about topic{i}",
                hours=99.0 + i * 0.01))
        result = engine.ingest(make_message(
            50, "an ancient unrelated dispatch finally arriving",
            hours=0.0))
        report = engine.pool.refine(engine.current_date,
                                    summary_index=engine.summary_index)
        assert report.deleted_tiny == 0
        assert result.bundle_id in engine.pool

    def test_late_arrival_does_not_jump_eviction_queue(self):
        # Overfilled pool: ranked eviction removes the *stalest* bundle.
        # The bundle just touched by a late message must rank fresher
        # than one untouched for hours, not older.
        engine = ProvenanceIndexer(config())
        stale = engine.ingest(make_message(
            1, "stale topic nobody mentions again ever", hours=0.0))
        for i in range(2, 6):
            engine.ingest(make_message(
                i, f"filler story number {i} about topic{i}",
                hours=40.0 + i))
        late = engine.ingest(make_message(
            60, "a late unrelated dispatch from long ago", hours=1.0))
        assert late.bundle_id != stale.bundle_id
        pool = engine.pool
        late_score = pool._policy_score(pool.get(late.bundle_id),
                                        engine.current_date)
        stale_score = pool._policy_score(pool.get(stale.bundle_id),
                                         engine.current_date)
        assert late_score < stale_score


class TestSnapshotRoundTrip:
    def test_floored_last_update_survives_snapshot(self, tmp_path):
        engine = ProvenanceIndexer(config())
        for i in range(4):
            engine.ingest(make_message(
                i, f"fresh story number {i} about topic{i}",
                hours=100 + i))
        result = engine.ingest(make_message(
            77, "an ancient unrelated dispatch finally arriving",
            hours=0.0))
        path = tmp_path / "state.json"
        save_snapshot(engine, path)
        restored = load_snapshot(path)
        bundle = restored.pool.get(result.bundle_id)
        assert bundle.last_update == engine.current_date
        # And the round trip is exact for every bundle.
        for original in engine.pool:
            twin = restored.pool.get(original.bundle_id)
            assert twin.last_update == original.last_update
