"""Tests for the composable ingestion pipeline."""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.errors import ConfigurationError
from repro.core.pipeline import (DedupStage, IngestPipeline, QualityStage,
                                 SamplingStage)
from tests.conftest import make_message


def rich(msg_id: int, hours: float = 0.0, user: str | None = None):
    return make_message(
        msg_id, f"detailed stadium report number {msg_id} tonight #mlb",
        user=user or f"u{msg_id}", hours=hours)


class TestStages:
    def test_sampling_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            SamplingStage(0.0)
        with pytest.raises(ConfigurationError):
            SamplingStage(1.5)

    def test_sampling_deterministic(self):
        stage = SamplingStage(0.5, salt="x")
        message = rich(42)
        assert stage.admit(message) == SamplingStage(
            0.5, salt="x").admit(message)

    def test_sampling_rate_roughly_respected(self):
        stage = SamplingStage(0.5, salt="y")
        admitted = sum(1 for i in range(400) if stage.admit(rich(i)))
        assert 140 < admitted < 260

    def test_dedup_drops_copies(self):
        stage = DedupStage()
        assert stage.admit(rich(0))
        copy = make_message(1, rich(0).text, user="other", hours=0.1)
        assert not stage.admit(copy)

    def test_dedup_keeps_retweets(self):
        stage = DedupStage(keep_retweets=True)
        original = rich(0, user="src")
        assert stage.admit(original)
        retweet = make_message(1, f"RT @src: {original.text}", user="fan",
                               hours=0.1)
        assert stage.admit(retweet)

    def test_dedup_can_drop_retweets(self):
        stage = DedupStage(keep_retweets=False)
        original = rich(0, user="src")
        stage.admit(original)
        retweet = make_message(1, f"RT @src: {original.text}", user="fan",
                               hours=0.1)
        assert not stage.admit(retweet)

    def test_quality_gate(self):
        stage = QualityStage()
        assert stage.admit(rich(0))
        assert not stage.admit(make_message(1, "ugh", user="n", hours=0.1))


class TestPipeline:
    def test_no_stages_passes_everything(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        pipeline = IngestPipeline(indexer)
        for index in range(5):
            assert pipeline.ingest(rich(index, hours=index * 0.1)) is not None
        assert pipeline.stats.admit_rate == 1.0
        assert indexer.stats.messages_ingested == 5

    def test_stage_order_and_counters(self):
        # dedup first, else the quality gate's own duplicate penalty
        # would claim the copy before DedupStage sees it
        indexer = ProvenanceIndexer(IndexerConfig())
        pipeline = IngestPipeline(indexer, stages=[
            DedupStage(), QualityStage()])
        pipeline.ingest(rich(1))                         # admitted
        pipeline.ingest(make_message(2, rich(1).text, user="c",
                                     hours=0.2))         # dedup drops
        pipeline.ingest(make_message(3, "ugh", user="d",
                                     hours=0.3))         # quality drops
        stats = pipeline.stats
        assert stats.seen == 3
        assert stats.ingested == 1
        assert stats.dropped_by["dedup"] == 1
        assert stats.dropped_by["quality"] == 1

    def test_dropped_message_never_reaches_indexer(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        pipeline = IngestPipeline(indexer, stages=[QualityStage()])
        assert pipeline.ingest(make_message(0, "meh")) is None
        assert indexer.stats.messages_ingested == 0

    def test_duplicate_stage_names_rejected(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        with pytest.raises(ConfigurationError):
            IngestPipeline(indexer, stages=[DedupStage(), DedupStage()])

    def test_ingest_all_returns_stats(self, tiny_stream):
        indexer = ProvenanceIndexer(IndexerConfig.partial_index(
            pool_size=50))
        pipeline = IngestPipeline(indexer, stages=[
            SamplingStage(0.5, salt="t"), QualityStage()])
        stats = pipeline.ingest_all(tiny_stream[:400])
        assert stats.seen == 400
        assert 0 < stats.ingested < 400
        assert stats.ingested == indexer.stats.messages_ingested
        assert (stats.ingested + sum(stats.dropped_by.values())
                == stats.seen)

    def test_empty_pipeline_admit_rate_on_empty_input(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        pipeline = IngestPipeline(indexer)
        assert pipeline.ingest_all([]).admit_rate == 1.0
