"""Tests for the structural invariant checker."""

from __future__ import annotations

from repro.core.bundle import Bundle
from repro.core.config import IndexerConfig
from repro.core.connection import Connection, ConnectionType
from repro.core.engine import ProvenanceIndexer
from repro.core.validation import check_bundle, check_engine
from tests.conftest import make_message


def healthy_bundle() -> Bundle:
    bundle = Bundle(0)
    bundle.insert(make_message(0, "#t start", user="a"))
    bundle.insert(make_message(1, "#t more", user="b", hours=0.5))
    bundle.insert(make_message(2, "RT @a: #t start", user="c", hours=1.0))
    return bundle


class TestCheckBundle:
    def test_healthy_bundle_clean(self):
        assert check_bundle(healthy_bundle()) == []

    def test_empty_bundle_clean(self):
        assert check_bundle(Bundle(1)) == []

    def test_forward_edge_detected(self):
        bundle = healthy_bundle()
        bundle._edges[1] = Connection(1, 2, ConnectionType.TEXT, 0.0)
        problems = check_bundle(bundle)
        assert any("backwards" in p for p in problems)

    def test_dangling_edge_detected(self):
        bundle = healthy_bundle()
        bundle._edges[1] = Connection(1, 99, ConnectionType.TEXT, 0.0)
        problems = check_bundle(bundle)
        assert any("not a member" in p for p in problems)

    def test_stale_counter_detected(self):
        bundle = healthy_bundle()
        bundle.hashtag_counts["phantom"] = 3
        problems = check_bundle(bundle)
        assert any("hashtag counters stale" in p for p in problems)

    def test_wrong_time_window_detected(self):
        bundle = healthy_bundle()
        bundle.end_time += 999.0
        problems = check_bundle(bundle)
        assert any("end_time" in p for p in problems)

    def test_cycle_detected(self):
        bundle = Bundle(0)
        bundle.insert(make_message(0, "a"))
        bundle.insert(make_message(1, "b", user="b", hours=0.1))
        # Forge a 2-cycle: 0 -> 1 and 1 -> 0 (also trips direction checks).
        bundle._edges[0] = Connection(0, 1, ConnectionType.TEXT, 0.0)
        bundle._edges[1] = Connection(1, 0, ConnectionType.TEXT, 0.0)
        problems = check_bundle(bundle)
        assert any("cycle" in p for p in problems)


class TestCheckEngine:
    def _indexer(self, count: int = 40) -> ProvenanceIndexer:
        indexer = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=10))
        for index in range(count):
            indexer.ingest(make_message(index, f"#topic{index % 6} text",
                                        user=f"u{index % 5}",
                                        hours=index * 0.2))
        return indexer

    def test_live_engine_clean(self):
        assert check_engine(self._indexer()) == []

    def test_full_index_engine_clean(self):
        indexer = ProvenanceIndexer(IndexerConfig.full_index())
        for index in range(30):
            indexer.ingest(make_message(index, f"#t{index % 4} text",
                                        user=f"u{index}", hours=index * 0.1))
        assert check_engine(indexer) == []

    def test_restored_snapshot_clean(self, tmp_path):
        from repro.storage.snapshot import load_snapshot, save_snapshot

        indexer = self._indexer()
        save_snapshot(indexer, tmp_path / "s.json")
        assert check_engine(load_snapshot(tmp_path / "s.json")) == []

    def test_stale_index_entry_detected(self):
        indexer = self._indexer()
        # Point the index at a bundle id that is not pooled.  Corrupt
        # through the storage verbs so the check works on any backend.
        indexer.summary_index._storage.bump("hashtag", ("phantom",), 99999)
        problems = check_engine(indexer)
        assert any("evicted bundle 99999" in p for p in problems)

    def test_missing_index_entry_detected(self):
        indexer = self._indexer()
        bundle = next(iter(indexer.pool))
        tag = next(iter(bundle.hashtag_counts), None)
        if tag is not None:
            indexer.summary_index._storage.drop(
                "hashtag", (tag,), bundle.bundle_id)
            problems = check_engine(indexer)
            assert any("not indexed" in p for p in problems)

    def test_double_membership_detected(self):
        indexer = ProvenanceIndexer(IndexerConfig.full_index())
        indexer.ingest(make_message(0, "#a x"))
        indexer.ingest(make_message(1, "#zz y", user="b", hours=0.1))
        bundles = list(indexer.pool)
        message = bundles[0].messages()[0]
        bundles[1]._register_member(message, frozenset())
        problems = check_engine(indexer)
        assert any("in bundles" in p for p in problems)
