"""Edge-case tests for the streaming engine beyond the happy path."""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from tests.conftest import make_message


class TestTiesAndDeterminism:
    def test_identical_dates_handled(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        for index in range(5):
            indexer.ingest(make_message(index, "#same topic words",
                                        user=f"u{index}", hours=0.0))
        assert indexer.stats.messages_ingested == 5
        bundle = next(iter(indexer.pool))
        assert len(bundle) == 5

    def test_equal_score_candidates_resolved_deterministically(self):
        def run() -> list[int]:
            indexer = ProvenanceIndexer(IndexerConfig())
            # Two identical-looking bundles, then a message matching both.
            indexer.ingest(make_message(0, "#a alpha", user="u0"))
            indexer.ingest(make_message(1, "#b beta", user="u1", hours=0.01))
            result = indexer.ingest(make_message(
                2, "#a #b gamma", user="u2", hours=0.02))
            return [result.bundle_id]

        assert run() == run()

    def test_reingesting_same_content_different_ids(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        indexer.ingest(make_message(0, "#x same text"))
        indexer.ingest(make_message(1, "#x same text", user="b",
                                    hours=0.1))
        assert indexer.stats.messages_ingested == 2


class TestExtremeMessages:
    def test_empty_indicant_message(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        result = indexer.ingest(make_message(0, "!!!"))
        assert result.created_bundle

    def test_message_with_many_hashtags(self):
        tags = " ".join(f"#tag{i}" for i in range(30))
        indexer = ProvenanceIndexer(IndexerConfig())
        result = indexer.ingest(make_message(0, tags))
        bundle = indexer.bundle(result.bundle_id)
        assert len(bundle.hashtag_counts) == 30

    def test_very_long_text(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        indexer.ingest(make_message(0, "word " * 500))
        assert indexer.stats.messages_ingested == 1

    def test_unicode_text(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        indexer.ingest(make_message(0, "地震 warning ツナミ #日本"))
        indexer.ingest(make_message(1, "more on #日本", user="b", hours=0.1))
        # the unicode hashtag routes both into one bundle
        assert len(indexer.pool) == 1

    def test_rt_of_unknown_user_is_harmless(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        result = indexer.ingest(make_message(0, "RT @ghost: never seen"))
        assert result.created_bundle


class TestCandidateCap:
    def test_max_candidates_bounds_scored_set(self):
        """With a hot hashtag across many bundles, only max_candidates
        are fully scored — verified by it still matching correctly."""
        config = IndexerConfig(max_candidates=4)
        indexer = ProvenanceIndexer(config)
        # Create many disjoint bundles sharing one weak keyword.
        for index in range(20):
            indexer.ingest(make_message(index, f"#only{index} filler words",
                                        user=f"u{index}", hours=index * 0.01))
        result = indexer.ingest(make_message(
            99, "#only19 filler words", user="x", hours=0.5))
        # must join the bundle with the matching hashtag
        bundle = indexer.bundle(result.bundle_id)
        assert "only19" in bundle.hashtag_counts

    def test_closed_candidates_skipped_for_next_best(self):
        config = IndexerConfig.bundle_limit(pool_size=100, bundle_size=2)
        indexer = ProvenanceIndexer(config)
        indexer.ingest(make_message(0, "#hot a", user="a"))
        indexer.ingest(make_message(1, "#hot b", user="b", hours=0.01))
        # first bundle now closed; the next #hot message opens bundle 2
        second = indexer.ingest(make_message(2, "#hot c", user="c",
                                             hours=0.02))
        assert second.created_bundle
        # ...and the one after joins bundle 2, not the closed one
        third = indexer.ingest(make_message(3, "#hot d", user="d",
                                            hours=0.03))
        assert third.bundle_id == second.bundle_id


class TestClockBehaviour:
    def test_out_of_order_message_does_not_rewind_clock(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        indexer.ingest(make_message(0, "a", hours=10))
        indexer.ingest(make_message(1, "b", user="b", hours=5))
        assert indexer.current_date == make_message(9, "x", hours=10).date

    def test_refinement_uses_stream_clock_not_wallclock(self):
        config = IndexerConfig.partial_index(pool_size=3)
        config = config.with_overrides(refine_tiny_size=2)
        indexer = ProvenanceIndexer(config)
        # all messages at nearly the same stream time: nothing is "aging",
        # so refinement must evict by rank, not by age deletion
        for index in range(10):
            indexer.ingest(make_message(index, f"#t{index} x",
                                        user=f"u{index}", hours=index * 1e-4))
        assert len(indexer.pool) <= 3


class TestStatsConsistency:
    def test_created_plus_matched_equals_ingested(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        for index in range(40):
            indexer.ingest(make_message(index, f"#t{index % 7} words",
                                        user=f"u{index % 3}",
                                        hours=index * 0.1))
        stats = indexer.stats
        assert stats.bundles_created + stats.bundles_matched == \
            stats.messages_ingested

    def test_edges_equal_ingested_minus_roots(self):
        indexer = ProvenanceIndexer(IndexerConfig.full_index())
        for index in range(30):
            indexer.ingest(make_message(index, f"#t{index % 5} words",
                                        user=f"u{index}", hours=index * 0.1))
        root_count = sum(
            1 for bundle in indexer.pool
            for msg_id in bundle.message_ids()
            if bundle.parent_of(msg_id) is None)
        assert indexer.stats.edges_created == \
            indexer.stats.messages_ingested - root_count
