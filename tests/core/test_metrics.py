"""Tests for Section VI-B evaluation metrics."""

from __future__ import annotations

import pytest

from repro.core.metrics import (compare_edge_sets, ground_truth_edges,
                                label_purity)
from tests.conftest import make_message


class TestCompareEdgeSets:
    def test_perfect_match(self):
        edges = {(1, 0), (2, 1)}
        cmp = compare_edge_sets(edges, edges)
        assert cmp.accuracy == 1.0
        assert cmp.coverage == 1.0
        assert cmp.matched == 2

    def test_paper_formulas(self):
        candidate = {(1, 0), (2, 1), (3, 0)}
        reference = {(1, 0), (2, 1), (4, 2), (5, 2)}
        cmp = compare_edge_sets(candidate, reference)
        assert cmp.accuracy == pytest.approx(2 / 3)   # |E1∩E0|/|E1|
        assert cmp.coverage == pytest.approx(2 / 4)   # |E1∩E0|/|E0|

    def test_empty_candidate_with_nonempty_reference(self):
        cmp = compare_edge_sets(set(), {(1, 0)})
        assert cmp.accuracy == 0.0
        assert cmp.coverage == 0.0

    def test_both_empty(self):
        cmp = compare_edge_sets(set(), set())
        assert cmp.accuracy == 1.0
        assert cmp.coverage == 1.0

    def test_empty_reference_nonempty_candidate(self):
        cmp = compare_edge_sets({(1, 0)}, set())
        assert cmp.accuracy == 0.0
        assert cmp.coverage == 1.0

    def test_f1_bounds(self):
        candidate = {(1, 0), (9, 8)}
        reference = {(1, 0), (2, 1)}
        cmp = compare_edge_sets(candidate, reference)
        assert 0.0 < cmp.f1 <= 1.0

    def test_f1_zero_when_disjoint(self):
        cmp = compare_edge_sets({(1, 0)}, {(2, 1)})
        assert cmp.f1 == 0.0


class TestGroundTruthEdges:
    def test_extracts_parent_links(self):
        messages = [
            make_message(0, "root"),
            make_message(1, "RT", user="b", hours=0.1, parent_id=0),
            make_message(2, "noise", user="c", hours=0.2),
        ]
        assert ground_truth_edges(messages) == {(1, 0)}

    def test_empty_for_unlabelled(self):
        messages = [make_message(0, "a"), make_message(1, "b", user="b")]
        assert ground_truth_edges(messages) == set()


class TestLabelPurity:
    def test_pure_bundle(self):
        members = [make_message(i, "x", user=f"u{i}", event_id=7)
                   for i in range(4)]
        assert label_purity(members) == 1.0

    def test_mixed_bundle(self):
        members = ([make_message(i, "x", user=f"u{i}", event_id=1)
                    for i in range(3)]
                   + [make_message(9, "y", user="z", event_id=2)])
        assert label_purity(members) == pytest.approx(0.75)

    def test_noise_ignored(self):
        members = [
            make_message(0, "x", event_id=1),
            make_message(1, "noise", user="b"),  # unlabelled
        ]
        assert label_purity(members) == 1.0

    def test_all_noise_counts_as_pure(self):
        members = [make_message(i, "n", user=f"u{i}") for i in range(3)]
        assert label_purity(members) == 1.0
