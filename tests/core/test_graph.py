"""Tests for provenance operators over bundle forests."""

from __future__ import annotations

import pytest

from repro.core.bundle import Bundle
from repro.core.connection import Connection, ConnectionType
from repro.core.errors import BundleError
from repro.core.graph import (ancestors, cascade_stats, children_map, depth,
                              descendants, fanout, parent_map, path_to_root,
                              render_tree, roots)
from tests.conftest import make_message


@pytest.fixture
def chain_bundle() -> Bundle:
    """0 <- 1 <- 2 (a linear RT chain)."""
    bundle = Bundle(0)
    bundle.insert(make_message(0, "origin story", user="src"))
    bundle.insert(make_message(1, "RT @src: origin story", user="mid",
                               hours=0.5))
    bundle.insert(make_message(2, "RT @mid: RT @src: origin story",
                               user="leaf", hours=1.0))
    return bundle


@pytest.fixture
def star_bundle() -> Bundle:
    """0 with three direct re-shares."""
    bundle = Bundle(1)
    bundle.insert(make_message(0, "big news", user="src"))
    for index in (1, 2, 3):
        bundle.insert(make_message(index, "RT @src: big news",
                                   user=f"fan{index}", hours=0.1 * index))
    return bundle


class TestBasicsOnChain:
    def test_roots(self, chain_bundle):
        assert roots(chain_bundle) == [0]

    def test_parent_map(self, chain_bundle):
        assert parent_map(chain_bundle) == {1: 0, 2: 1}

    def test_children_map(self, chain_bundle):
        assert children_map(chain_bundle) == {0: [1], 1: [2]}

    def test_ancestors(self, chain_bundle):
        assert ancestors(chain_bundle, 2) == [1, 0]
        assert ancestors(chain_bundle, 0) == []

    def test_path_to_root(self, chain_bundle):
        assert path_to_root(chain_bundle, 2) == [2, 1, 0]

    def test_descendants(self, chain_bundle):
        assert descendants(chain_bundle, 0) == [1, 2]
        assert descendants(chain_bundle, 2) == []

    def test_depth(self, chain_bundle):
        assert depth(chain_bundle, 0) == 0
        assert depth(chain_bundle, 2) == 2

    def test_fanout(self, chain_bundle):
        assert fanout(chain_bundle, 0) == 1
        assert fanout(chain_bundle, 2) == 0


class TestBasicsOnStar:
    def test_fanout_of_hub(self, star_bundle):
        assert fanout(star_bundle, 0) == 3

    def test_descendants_bfs(self, star_bundle):
        assert descendants(star_bundle, 0) == [1, 2, 3]

    def test_all_leaves_depth_one(self, star_bundle):
        assert all(depth(star_bundle, i) == 1 for i in (1, 2, 3))


class TestErrors:
    def test_ancestors_unknown_message(self, chain_bundle):
        with pytest.raises(BundleError):
            ancestors(chain_bundle, 99)

    def test_descendants_unknown_message(self, chain_bundle):
        with pytest.raises(BundleError):
            descendants(chain_bundle, 99)

    def test_cycle_detected(self):
        bundle = Bundle(0)
        bundle.insert(make_message(0, "a"))
        bundle.insert(make_message(1, "b", user="b", hours=0.1))
        # Corrupt the edges into a 2-cycle.
        bundle._edges[0] = Connection(0, 1, ConnectionType.TEXT, 0.0)
        bundle._edges[1] = Connection(1, 0, ConnectionType.TEXT, 0.0)
        with pytest.raises(BundleError):
            ancestors(bundle, 0)


class TestCascadeStats:
    def test_chain_stats(self, chain_bundle):
        stats = cascade_stats(chain_bundle)
        assert stats.size == 3
        assert stats.root_count == 1
        assert stats.max_depth == 2
        assert stats.max_fanout == 1
        assert stats.edge_count == 2
        assert stats.is_chain

    def test_star_stats(self, star_bundle):
        stats = cascade_stats(star_bundle)
        assert stats.max_depth == 1
        assert stats.max_fanout == 3
        assert not stats.is_chain

    def test_singleton_stats(self):
        bundle = Bundle(0)
        bundle.insert(make_message(0, "alone"))
        stats = cascade_stats(bundle)
        assert stats.size == 1
        assert stats.max_depth == 0
        assert stats.edge_count == 0
        assert stats.time_span == 0.0


class TestRenderTree:
    def test_render_contains_all_users(self, chain_bundle):
        text = render_tree(chain_bundle)
        for user in ("src", "mid", "leaf"):
            assert f"@{user}" in text

    def test_render_shows_connection_kinds(self, chain_bundle):
        assert "(rt)" in render_tree(chain_bundle)

    def test_render_header_has_size(self, chain_bundle):
        assert "size=3" in render_tree(chain_bundle).splitlines()[0]

    def test_render_truncates_long_text(self):
        bundle = Bundle(0)
        bundle.insert(make_message(0, "word " * 40))
        text = render_tree(bundle, max_text=20)
        assert "…" in text

    def test_render_star_indents_children(self, star_bundle):
        lines = render_tree(star_bundle).splitlines()
        child_lines = [ln for ln in lines if "fan" in ln]
        assert len(child_lines) == 3
        assert all(ln.startswith("  ") for ln in child_lines)
