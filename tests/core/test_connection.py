"""Tests for the connection model (Table II)."""

from __future__ import annotations

from repro.core.connection import (Connection, ConnectionType,
                                   connection_types_between)
from tests.conftest import make_message


class TestConnectionType:
    def test_enum_values_match_paper_names(self):
        assert ConnectionType.RT.value == "rt"
        assert ConnectionType.URL.value == "url"
        assert ConnectionType.HASHTAG.value == "hashtag"
        assert ConnectionType.TEXT.value == "text"

    def test_is_string_enum(self):
        assert ConnectionType("rt") is ConnectionType.RT


class TestConnection:
    def test_as_pair(self):
        edge = Connection(5, 3, ConnectionType.RT, 2.0)
        assert edge.as_pair() == (5, 3)

    def test_connections_are_value_objects(self):
        a = Connection(5, 3, ConnectionType.RT, 2.0)
        b = Connection(5, 3, ConnectionType.RT, 2.0)
        assert a == b and hash(a) == hash(b)


class TestConnectionTypesBetween:
    def test_rt_detected(self):
        earlier = make_message(1, "news", user="mlb")
        later = make_message(2, "RT @mlb: news", user="fan", hours=1)
        assert ConnectionType.RT in connection_types_between(later, earlier)

    def test_url_detected(self):
        earlier = make_message(1, "x bit.ly/a")
        later = make_message(2, "y bit.ly/a", user="b", hours=1)
        assert ConnectionType.URL in connection_types_between(later, earlier)

    def test_hashtag_detected(self):
        earlier = make_message(1, "#tag")
        later = make_message(2, "#tag too", user="b", hours=1)
        assert ConnectionType.HASHTAG in connection_types_between(
            later, earlier)

    def test_text_requires_keyword_sets(self):
        earlier = make_message(1, "baseball tonight")
        later = make_message(2, "baseball game", user="b", hours=1)
        without = connection_types_between(later, earlier)
        assert ConnectionType.TEXT not in without
        with_kw = connection_types_between(
            later, earlier,
            later_keywords=frozenset({"baseball", "game"}),
            earlier_keywords=frozenset({"baseball", "tonight"}))
        assert ConnectionType.TEXT in with_kw

    def test_multiple_types_reported_together(self):
        earlier = make_message(1, "#tag bit.ly/a", user="mlb")
        later = make_message(2, "RT @mlb: #tag bit.ly/a", user="f", hours=1)
        kinds = connection_types_between(later, earlier)
        assert set(kinds) >= {ConnectionType.RT, ConnectionType.URL,
                              ConnectionType.HASHTAG}

    def test_unrelated_messages_share_nothing(self):
        earlier = make_message(1, "#one bit.ly/a")
        later = make_message(2, "#two bit.ly/b", user="b", hours=1)
        assert connection_types_between(later, earlier) == []
