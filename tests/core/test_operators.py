"""Tests for bundle-level provenance operators."""

from __future__ import annotations

import pytest

from repro.core.bundle import Bundle
from repro.core.errors import BundleError
from repro.core.graph import roots
from repro.core.operators import (bundle_difference, extract_cascade,
                                  filter_bundle, merge_bundles,
                                  rebuild_bundle, slice_bundle,
                                  split_bundle_at)
from tests.conftest import BASE_DATE, make_message


@pytest.fixture
def story() -> Bundle:
    """A two-phase story: a chain at hours 0-1, a follow-up at hours 5-6."""
    bundle = Bundle(0)
    bundle.insert(make_message(0, "origin #story", user="src"))
    bundle.insert(make_message(1, "RT @src: origin #story", user="a",
                               hours=0.5))
    bundle.insert(make_message(2, "RT @a: RT @src: origin #story", user="b",
                               hours=1.0))
    bundle.insert(make_message(3, "follow-up #story detail", user="c",
                               hours=5.0))
    bundle.insert(make_message(4, "RT @c: follow-up #story detail",
                               user="d", hours=6.0))
    return bundle


class TestRebuild:
    def test_subset_preserves_internal_edges(self, story):
        result = rebuild_bundle(9, story, {0, 1, 2})
        assert result.bundle_id == 9
        assert result.message_ids() == [0, 1, 2]
        assert result.edge_pairs() == {(1, 0), (2, 1)}

    def test_cross_boundary_edges_dropped(self, story):
        result = rebuild_bundle(9, story, {1, 2})
        # 1's parent (0) is outside: 1 becomes a root.
        assert result.parent_of(1) is None
        assert result.edge_pairs() == {(2, 1)}

    def test_summaries_rebuilt(self, story):
        result = rebuild_bundle(9, story, {3, 4})
        assert result.hashtag_counts["story"] == 2
        assert result.user_counts == {"c": 1, "d": 1}

    def test_empty_selection(self, story):
        result = rebuild_bundle(9, story, set())
        assert len(result) == 0


class TestMerge:
    def _two_bundles(self):
        first = Bundle(0)
        first.insert(make_message(0, "news #alpha", user="src"))
        first.insert(make_message(1, "RT @src: news #alpha", user="a",
                                  hours=0.2))
        second = Bundle(1)
        second.insert(make_message(10, "more #alpha talk", user="x",
                                   hours=1.0))
        second.insert(make_message(11, "RT @x: more #alpha talk", user="y",
                                   hours=1.2))
        return first, second

    def test_merge_preserves_all_members(self):
        first, second = self._two_bundles()
        merged = merge_bundles(5, first, second)
        assert set(merged.message_ids()) == {0, 1, 10, 11}

    def test_merge_preserves_internal_edges(self):
        first, second = self._two_bundles()
        merged = merge_bundles(5, first, second)
        assert {(1, 0), (11, 10)} <= merged.edge_pairs()

    def test_merge_realigns_second_roots(self):
        first, second = self._two_bundles()
        merged = merge_bundles(5, first, second)
        # message 10 (second's root) shares #alpha with first's members.
        assert merged.parent_of(10) in {0, 1}

    def test_merge_overlapping_rejected(self):
        first, _ = self._two_bundles()
        with pytest.raises(BundleError):
            merge_bundles(5, first, first)

    def test_merge_unrelated_stays_forest(self):
        first = Bundle(0)
        first.insert(make_message(0, "news #alpha", user="src"))
        second = Bundle(1)
        second.insert(make_message(10, "#zeta unrelated", user="x",
                                   hours=1.0))
        merged = merge_bundles(5, first, second)
        assert len(roots(merged)) == 2


class TestSplitAndSlice:
    def test_split_at_gap(self, story):
        cut = BASE_DATE + 3 * 3600.0
        before, after = split_bundle_at(story, cut, before_id=10,
                                        after_id=11)
        assert set(before.message_ids()) == {0, 1, 2}
        assert set(after.message_ids()) == {3, 4}
        assert before.edge_pairs() == {(1, 0), (2, 1)}
        assert after.edge_pairs() == {(4, 3)}

    def test_split_all_before(self, story):
        before, after = split_bundle_at(
            story, BASE_DATE + 100 * 3600.0, before_id=10, after_id=11)
        assert len(before) == 5 and len(after) == 0

    def test_slice_window(self, story):
        result = slice_bundle(story, BASE_DATE + 0.4 * 3600.0,
                              BASE_DATE + 5.5 * 3600.0, bundle_id=12)
        assert set(result.message_ids()) == {1, 2, 3}

    def test_slice_invalid_window(self, story):
        with pytest.raises(BundleError):
            slice_bundle(story, BASE_DATE + 10.0, BASE_DATE, bundle_id=1)


class TestExtractCascade:
    # The story fixture is one chain 0<-1<-2<-3<-4: message 3 aligns with
    # 2 through the shared #story hashtag.
    def test_cascade_from_root(self, story):
        result = extract_cascade(story, 0, bundle_id=13)
        assert set(result.message_ids()) == {0, 1, 2, 3, 4}

    def test_cascade_from_middle(self, story):
        result = extract_cascade(story, 3, bundle_id=13)
        assert set(result.message_ids()) == {3, 4}

    def test_cascade_from_leaf(self, story):
        result = extract_cascade(story, 4, bundle_id=13)
        assert result.message_ids() == [4]

    def test_cascade_unknown_message(self, story):
        with pytest.raises(BundleError):
            extract_cascade(story, 99, bundle_id=13)


class TestFilter:
    def test_filter_contracts_through_removed(self, story):
        # Remove the middle of the chain 0 <- 1 <- 2: edge 2->1 must be
        # re-stitched to 2->0.
        result = filter_bundle(story, lambda m: m.msg_id != 1, bundle_id=14)
        assert 1 not in result
        assert result.parent_of(2) == 0

    def test_filter_by_user(self, story):
        result = filter_bundle(story, lambda m: m.user != "d", bundle_id=14)
        assert set(result.message_ids()) == {0, 1, 2, 3}

    def test_filter_keeps_edge_kind(self, story):
        result = filter_bundle(story, lambda m: m.msg_id != 1, bundle_id=14)
        edge = next(e for e in result.edges() if e.src_id == 2)
        original = next(e for e in story.edges() if e.src_id == 2)
        assert edge.kind == original.kind

    def test_filter_everything(self, story):
        result = filter_bundle(story, lambda m: False, bundle_id=14)
        assert len(result) == 0


class TestDifference:
    def test_growth_diff(self, story):
        early = rebuild_bundle(20, story, {0, 1})
        diff = bundle_difference(story, early)
        assert diff.added_messages == {2, 3, 4}
        assert diff.added_edges == {(2, 1), (3, 2), (4, 3)}
        assert not diff.removed_messages
        assert not diff.unchanged

    def test_identical_bundles(self, story):
        assert bundle_difference(story, story).unchanged

    def test_removed_direction(self, story):
        early = rebuild_bundle(20, story, {0, 1})
        diff = bundle_difference(early, story)
        assert diff.removed_messages == {2, 3, 4}
        assert not diff.added_messages
