"""Tests for the thread-safe indexer facade."""

from __future__ import annotations

import threading

from repro.core.concurrent import ConcurrentIndexer
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.validation import check_engine
from tests.conftest import make_message


def stream(count: int, offset: int = 0, user_prefix: str = "u"):
    return [make_message(offset + i, f"#topic{i % 8} message {i}",
                         user=f"{user_prefix}{i % 5}", hours=i * 0.05)
            for i in range(count)]


class TestBasics:
    def test_ingest_and_search(self):
        concurrent = ConcurrentIndexer(
            ProvenanceIndexer(IndexerConfig()))
        for message in stream(20):
            concurrent.ingest(message)
        assert concurrent.stats()["messages_ingested"] == 20
        assert concurrent.search("#topic3")

    def test_ingest_batch(self):
        concurrent = ConcurrentIndexer()
        results = concurrent.ingest_batch(stream(15))
        assert [r.msg_id for r in results] == list(range(15))
        assert concurrent.ingest_batch(
            stream(15, offset=100), count_only=True) == 15
        assert concurrent.stats()["messages_ingested"] == 30

    def test_with_engine_compound_operation(self, tmp_path):
        from repro.storage.snapshot import save_snapshot

        concurrent = ConcurrentIndexer()
        concurrent.ingest_batch(stream(10))
        saved = concurrent.with_engine(
            lambda engine: save_snapshot(engine, tmp_path / "s.json"))
        assert saved == concurrent.with_engine(
            lambda engine: len(engine.pool))

    def test_snapshot(self):
        concurrent = ConcurrentIndexer()
        concurrent.ingest_batch(stream(5), count_only=True)
        snapshot = concurrent.snapshot()
        assert snapshot.message_count == 5


class TestMultiThreaded:
    def test_concurrent_producers_lose_nothing(self):
        """Four producer threads, disjoint id spaces: every message must
        be ingested exactly once and the engine must stay structurally
        sound."""
        concurrent = ConcurrentIndexer(ProvenanceIndexer(
            IndexerConfig.partial_index(pool_size=40)))
        batches = [stream(50, offset=1000 * t, user_prefix=f"t{t}_")
                   for t in range(4)]

        def produce(batch):
            for message in batch:
                concurrent.ingest(message)

        threads = [threading.Thread(target=produce, args=(batch,))
                   for batch in batches]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert concurrent.stats()["messages_ingested"] == 200
        assert concurrent.with_engine(check_engine) == []

    def test_reader_during_writes_never_crashes(self):
        concurrent = ConcurrentIndexer()
        errors: list[Exception] = []
        stop = threading.Event()

        def read_loop():
            try:
                while not stop.is_set():
                    concurrent.search("#topic1", k=3)
                    concurrent.edge_pairs()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        reader = threading.Thread(target=read_loop)
        reader.start()
        try:
            concurrent.ingest_batch(stream(300), count_only=True)
        finally:
            stop.set()
            reader.join()
        assert errors == []
        assert concurrent.stats()["messages_ingested"] == 300

    def test_batches_are_atomic_wrt_readers(self):
        """A reader between batch boundaries sees only whole batches."""
        concurrent = ConcurrentIndexer()
        observed: list[int] = []
        done = threading.Event()

        def read_loop():
            while not done.is_set():
                observed.append(concurrent.stats()["messages_ingested"])

        reader = threading.Thread(target=read_loop)
        reader.start()
        try:
            for start in range(0, 200, 50):
                concurrent.ingest_batch(stream(50, offset=start * 100),
                                        count_only=True)
        finally:
            done.set()
            reader.join()
        allowed = {0, 50, 100, 150, 200}
        assert set(observed) <= allowed
