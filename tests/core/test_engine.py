"""Tests for the streaming engine (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core.bundle import Bundle
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.errors import BundleNotFoundError
from tests.conftest import make_message


class TestIngestRouting:
    def test_first_message_creates_bundle(self, indexer):
        result = indexer.ingest(make_message(1, "#tag hello"))
        assert result.created_bundle
        assert result.edge is None
        assert indexer.stats.bundles_created == 1

    def test_matching_message_joins_existing_bundle(self, indexer):
        first = indexer.ingest(make_message(1, "#tag hello bit.ly/a"))
        second = indexer.ingest(
            make_message(2, "#tag follow-up bit.ly/a", user="b", hours=0.5))
        assert not second.created_bundle
        assert second.bundle_id == first.bundle_id
        assert second.edge is not None
        assert second.edge.dst_id == 1

    def test_unrelated_message_gets_new_bundle(self, indexer):
        first = indexer.ingest(make_message(1, "#sports game tonight"))
        second = indexer.ingest(
            make_message(2, "#finance markets rally", user="b", hours=0.1))
        assert second.created_bundle
        assert second.bundle_id != first.bundle_id

    def test_rt_joins_authors_bundle(self, indexer):
        first = indexer.ingest(make_message(1, "breaking news here",
                                            user="mlb"))
        second = indexer.ingest(
            make_message(2, "RT @mlb: breaking news here", user="fan",
                         hours=0.2))
        assert second.bundle_id == first.bundle_id
        assert second.edge is not None and second.edge.dst_id == 1

    def test_weak_keyword_overlap_does_not_merge(self, indexer):
        """A single shared background word must not glue bundles
        (the calibration behind min_match_score)."""
        indexer.ingest(make_message(1, "great game tonight #sports"))
        result = indexer.ingest(
            make_message(2, "dinner plans tonight", user="b", hours=0.1))
        assert result.created_bundle

    def test_current_date_tracks_latest_message(self, indexer):
        indexer.ingest(make_message(1, "a", hours=1))
        indexer.ingest(make_message(2, "b", user="b", hours=3))
        expected = make_message(3, "x", hours=3).date
        assert indexer.current_date == expected

    def test_ingest_batch_returns_results(self, indexer):
        results = indexer.ingest_batch([
            make_message(1, "#a x"),
            make_message(2, "#b y", user="b", hours=0.1),
        ])
        assert [r.msg_id for r in results] == [1, 2]
        count = indexer.ingest_batch(
            [make_message(3, "#c z", user="c", hours=0.2)],
            count_only=True)
        assert count == 1
        assert indexer.stats.messages_ingested == 3
        assert indexer.stats()["messages_ingested"] == 3


class TestBundleSizeConstraint:
    def test_bundle_closes_at_limit(self):
        config = IndexerConfig.bundle_limit(pool_size=100, bundle_size=3)
        indexer = ProvenanceIndexer(config)
        bundle_id = None
        for index in range(3):
            result = indexer.ingest(make_message(
                index, "#hot breaking", user=f"u{index}", hours=index * 0.01))
            bundle_id = result.bundle_id
        assert indexer.bundle(bundle_id).closed
        assert indexer.stats.bundles_closed == 1

    def test_closed_bundle_not_matched_again(self):
        config = IndexerConfig.bundle_limit(pool_size=100, bundle_size=2)
        indexer = ProvenanceIndexer(config)
        for index in range(2):
            indexer.ingest(make_message(index, "#hot breaking",
                                        user=f"u{index}", hours=index * 0.01))
        result = indexer.ingest(make_message(5, "#hot more", user="x",
                                             hours=0.1))
        assert result.created_bundle  # had to open a fresh bundle


class TestRefinementIntegration:
    def test_pool_stays_bounded(self):
        config = IndexerConfig.partial_index(pool_size=5)
        indexer = ProvenanceIndexer(config)
        for index in range(50):
            indexer.ingest(make_message(index, f"#topic{index} text",
                                        user=f"u{index}", hours=index * 0.01))
        assert len(indexer.pool) <= 5
        assert indexer.stats.refinements > 0

    def test_evicted_bundles_go_to_store(self):
        class Sink:
            def __init__(self):
                self.count = 0

            def append(self, bundle: Bundle) -> None:
                self.count += 1

        sink = Sink()
        config = IndexerConfig.partial_index(pool_size=5)
        indexer = ProvenanceIndexer(config, store=sink)
        for index in range(50):
            indexer.ingest(make_message(index, f"#topic{index} text",
                                        user=f"u{index}", hours=index * 0.01))
        assert sink.count > 0

    def test_full_index_never_refines(self):
        indexer = ProvenanceIndexer(IndexerConfig.full_index())
        for index in range(100):
            indexer.ingest(make_message(index, f"#t{index} x",
                                        user=f"u{index}", hours=index * 0.01))
        assert indexer.stats.refinements == 0
        assert len(indexer.pool) == 100


class TestEdgeLedger:
    def test_edges_accumulate(self, indexer):
        indexer.ingest(make_message(1, "#a x"))
        indexer.ingest(make_message(2, "#a y", user="b", hours=0.1))
        assert indexer.edge_pairs() == {(2, 1)}

    def test_ledger_survives_eviction(self):
        config = IndexerConfig.partial_index(pool_size=3)
        indexer = ProvenanceIndexer(config)
        indexer.ingest(make_message(1, "#a x"))
        indexer.ingest(make_message(2, "#a y", user="b", hours=0.1))
        for index in range(10, 40):
            indexer.ingest(make_message(index, f"#t{index} z",
                                        user=f"u{index}", hours=index))
        assert (2, 1) in indexer.edge_pairs()

    def test_tracking_can_be_disabled(self):
        indexer = ProvenanceIndexer(IndexerConfig(), track_edges=False)
        indexer.ingest(make_message(1, "#a x"))
        indexer.ingest(make_message(2, "#a y", user="b", hours=0.1))
        assert indexer.edge_pairs() == set()
        assert indexer.stats.edges_created == 1


class TestAccessors:
    def test_bundle_accessor_raises_for_unknown(self, indexer):
        with pytest.raises(BundleNotFoundError):
            indexer.bundle(12345)

    def test_bundles_lists_pool(self, indexer):
        indexer.ingest(make_message(1, "#a x"))
        indexer.ingest(make_message(2, "#b y", user="b", hours=0.1))
        assert len(indexer.bundles()) == 2

    def test_memory_snapshot_fields(self, indexer):
        indexer.ingest(make_message(1, "#a hello"))
        snap = indexer.snapshot()
        assert snap.bundle_count == 1
        assert snap.message_count == 1
        assert snap.total_bytes > 0
        assert snap.total_megabytes == pytest.approx(
            snap.total_bytes / (1024 * 1024))

    def test_timers_accumulate(self, indexer):
        for index in range(20):
            indexer.ingest(make_message(index, f"#t{index % 3} text",
                                        user=f"u{index}", hours=index * 0.01))
        timers = indexer.timers
        assert timers.bundle_match > 0
        assert timers.message_placement > 0
        assert timers.total >= timers.bundle_match
