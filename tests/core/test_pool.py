"""Tests for the bundle pool and Algorithm 3 refinement."""

from __future__ import annotations

import pytest

from repro.core.bundle import Bundle
from repro.core.config import DAY_SECONDS, IndexerConfig
from repro.core.errors import BundleNotFoundError
from repro.core.pool import BundlePool
from repro.core.summary_index import SummaryIndex
from tests.conftest import BASE_DATE, make_message


class _RecordingSink:
    def __init__(self) -> None:
        self.bundles: list[Bundle] = []

    def append(self, bundle: Bundle) -> None:
        self.bundles.append(bundle)


def fill_bundle(pool: BundlePool, size: int, *, hours: float,
                tag: str) -> Bundle:
    bundle = pool.create_bundle()
    for index in range(size):
        bundle.insert(make_message(
            bundle.bundle_id * 1000 + index, f"#{tag} msg{index}",
            user=f"u{index}", hours=hours + index * 0.01))
    return bundle


class TestPoolBasics:
    def test_create_assigns_sequential_ids(self):
        pool = BundlePool()
        ids = [pool.create_bundle().bundle_id for _ in range(3)]
        assert ids == [0, 1, 2]

    def test_get_and_contains(self):
        pool = BundlePool()
        bundle = pool.create_bundle()
        assert bundle.bundle_id in pool
        assert pool.get(bundle.bundle_id) is bundle

    def test_get_missing_raises(self):
        pool = BundlePool()
        with pytest.raises(BundleNotFoundError):
            pool.get(42)

    def test_try_get_missing_returns_none(self):
        assert BundlePool().try_get(1) is None

    def test_message_count_sums_members(self):
        pool = BundlePool()
        fill_bundle(pool, 3, hours=0, tag="a")
        fill_bundle(pool, 2, hours=0, tag="b")
        assert pool.message_count() == 5

    def test_needs_refinement_uses_trigger(self):
        config = IndexerConfig(max_pool_size=2, refine_trigger=2)
        pool = BundlePool(config)
        pool.create_bundle()
        pool.create_bundle()
        assert not pool.needs_refinement()
        pool.create_bundle()
        assert pool.needs_refinement()

    def test_unbounded_pool_never_needs_refinement(self):
        pool = BundlePool(IndexerConfig.full_index())
        for _ in range(100):
            pool.create_bundle()
        assert not pool.needs_refinement()


class TestRefinement:
    def test_aging_tiny_bundles_deleted(self):
        config = IndexerConfig(max_pool_size=100, refine_age=DAY_SECONDS,
                               refine_tiny_size=3)
        pool = BundlePool(config)
        tiny_old = fill_bundle(pool, 1, hours=0, tag="old")
        big_old = fill_bundle(pool, 5, hours=0, tag="big")
        now = BASE_DATE + 3 * DAY_SECONDS
        report = pool.refine(now)
        assert report.deleted_tiny == 1
        assert tiny_old.bundle_id not in pool
        assert big_old.bundle_id in pool

    def test_fresh_tiny_bundles_survive(self):
        config = IndexerConfig(max_pool_size=100)
        pool = BundlePool(config)
        fresh_tiny = fill_bundle(pool, 1, hours=0, tag="fresh")
        report = pool.refine(BASE_DATE + 3600.0)
        assert report.deleted_tiny == 0
        assert fresh_tiny.bundle_id in pool

    def test_closed_bundles_dumped_to_sink(self):
        config = IndexerConfig(max_pool_size=100)
        pool = BundlePool(config)
        bundle = fill_bundle(pool, 5, hours=0, tag="x")
        bundle.close()
        sink = _RecordingSink()
        report = pool.refine(BASE_DATE + 10.0, sink=sink)
        assert report.dumped_closed == 1
        assert sink.bundles == [bundle]
        assert bundle.bundle_id not in pool

    def test_ranked_eviction_down_to_target(self):
        config = IndexerConfig(max_pool_size=10, refine_target_fraction=0.5)
        pool = BundlePool(config)
        for index in range(20):
            fill_bundle(pool, 4, hours=index * 0.1, tag=f"t{index}")
        sink = _RecordingSink()
        report = pool.refine(BASE_DATE + 3 * 3600.0, sink=sink)
        assert len(pool) == 5
        assert report.evicted_ranked == 15
        assert len(sink.bundles) == 15

    def test_eviction_prefers_old_and_small(self):
        config = IndexerConfig(max_pool_size=4, refine_target_fraction=0.5)
        pool = BundlePool(config)
        old_small = fill_bundle(pool, 2, hours=0, tag="a")
        new_big = fill_bundle(pool, 8, hours=5, tag="b")
        fill_bundle(pool, 8, hours=5.1, tag="c")
        pool.refine(BASE_DATE + 6 * 3600.0)
        assert old_small.bundle_id not in pool
        assert new_big.bundle_id in pool

    def test_refine_updates_summary_index(self):
        config = IndexerConfig(max_pool_size=100, refine_age=DAY_SECONDS,
                               refine_tiny_size=5)
        pool = BundlePool(config)
        bundle = fill_bundle(pool, 2, hours=0, tag="gone")
        index = SummaryIndex()
        for msg_id in bundle.message_ids():
            index.add_message(bundle.bundle_id, bundle.get(msg_id),
                              frozenset())
        pool.refine(BASE_DATE + 3 * DAY_SECONDS, summary_index=index)
        assert index.postings("hashtag", "gone") == {}

    def test_on_evict_callback_fires(self):
        evicted: list[int] = []
        config = IndexerConfig(max_pool_size=1, refine_target_fraction=1.0)
        pool = BundlePool(config, on_evict=lambda b: evicted.append(
            b.bundle_id))
        fill_bundle(pool, 2, hours=0, tag="a")
        fill_bundle(pool, 2, hours=1, tag="b")
        pool.refine(BASE_DATE + 2 * 3600.0)
        assert evicted  # at least one bundle left the pool

    def test_report_counts_are_consistent(self):
        config = IndexerConfig(max_pool_size=4, refine_target_fraction=0.5)
        pool = BundlePool(config)
        for index in range(8):
            fill_bundle(pool, 3, hours=index * 0.1, tag=f"t{index}")
        before = len(pool)
        report = pool.refine(BASE_DATE + 3600.0)
        assert report.scanned == before
        assert before - report.removed == report.pool_size_after
        assert report.pool_size_after == len(pool)

    def test_refinement_count_increments(self):
        pool = BundlePool(IndexerConfig(max_pool_size=10))
        pool.refine(BASE_DATE)
        pool.refine(BASE_DATE)
        assert pool.refinement_count == 2


class TestRefinementPolicies:
    def _pool_with(self, policy: str) -> BundlePool:
        config = IndexerConfig(max_pool_size=2, refine_target_fraction=0.5,
                               refine_policy=policy)
        pool = BundlePool(config)
        # old+large vs new+small: the two policies disagree about these.
        fill_bundle(pool, 10, hours=0, tag="old_large")
        fill_bundle(pool, 2, hours=5, tag="new_small")
        return pool

    def test_age_policy_evicts_oldest(self):
        pool = self._pool_with("age")
        pool.refine(BASE_DATE + 6 * 3600.0)
        assert 1 in pool  # new_small survives

    def test_size_policy_evicts_smallest(self):
        pool = self._pool_with("size")
        pool.refine(BASE_DATE + 6 * 3600.0)
        assert 0 in pool  # old_large survives

    def test_g_policy_balances_both(self):
        # Eq. 6 in hours: old_large scores ~6+0.1, new_small ~1+0.5 —
        # age dominates here, matching the paper's intuition.
        pool = self._pool_with("g")
        pool.refine(BASE_DATE + 6 * 3600.0)
        assert 1 in pool


class TestEvictionHistograms:
    def _bound_pool(self) -> BundlePool:
        from repro.obs.registry import MetricsRegistry

        config = IndexerConfig(max_pool_size=4, refine_age=DAY_SECONDS,
                               refine_tiny_size=3,
                               refine_target_fraction=0.5)
        pool = BundlePool(config)
        pool.bind_registry(MetricsRegistry())
        return pool

    def _histograms(self, pool: BundlePool):
        return pool._evicted_size_hist, pool._evicted_age_hist

    def test_refine_observes_size_and_age(self):
        pool = self._bound_pool()
        for tag in ("a", "b", "c", "d", "e"):
            fill_bundle(pool, 4, hours=0.0, tag=tag)
        pool.refine(BASE_DATE + 3 * 3600.0)
        size_hist, age_hist = self._histograms(pool)
        assert size_hist.count > 0
        assert size_hist.count == age_hist.count
        assert size_hist.min >= 1          # evicted bundles had members
        assert age_hist.min >= 0.0         # age never negative

    def test_tiny_aging_eviction_observed(self):
        pool = self._bound_pool()
        fill_bundle(pool, 1, hours=0.0, tag="tiny")
        pool.refine(BASE_DATE + 2 * DAY_SECONDS)
        size_hist, _ = self._histograms(pool)
        assert size_hist.count == 1
        assert size_hist.max == 1

    def test_shed_observes_evictions(self):
        pool = self._bound_pool()
        for tag in ("a", "b", "c"):
            fill_bundle(pool, 4, hours=0.0, tag=tag)
        pool.shed(BASE_DATE + 3600.0, target_bytes=1)
        size_hist, age_hist = self._histograms(pool)
        assert size_hist.count > 0
        assert age_hist.count == size_hist.count

    def test_unbound_pool_uses_null_histograms(self):
        pool = BundlePool(IndexerConfig(max_pool_size=4,
                                        refine_target_fraction=0.5))
        for tag in ("a", "b", "c", "d", "e"):
            fill_bundle(pool, 4, hours=0.0, tag=tag)
        pool.refine(BASE_DATE + 3 * 3600.0)  # must not raise
