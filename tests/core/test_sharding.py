"""Tests for sharded provenance indexing."""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.errors import ConfigurationError
from repro.core.metrics import compare_edge_sets
from repro.core.sharding import ShardedIndexer, primary_indicant
from tests.conftest import make_message


class TestPrimaryIndicant:
    def test_hashtag_wins(self):
        message = make_message(0, "RT @a: text #zeta bit.ly/x", user="me")
        assert primary_indicant(message) == "t:zeta"

    def test_url_second(self):
        message = make_message(0, "RT @a: text bit.ly/x", user="me")
        assert primary_indicant(message) == "u:bit.ly/x"

    def test_rt_user_third(self):
        message = make_message(0, "RT @a: plain text", user="me")
        assert primary_indicant(message) == "a:a"

    def test_author_fallback(self):
        message = make_message(0, "plain text", user="me")
        assert primary_indicant(message) == "a:me"

    def test_stable_tie_break(self):
        first = make_message(0, "#b #a x")
        second = make_message(1, "#a #b y", user="other", hours=1)
        assert primary_indicant(first) == primary_indicant(second) == "t:a"


class TestRouting:
    def test_invalid_shard_count(self):
        with pytest.raises(ConfigurationError):
            ShardedIndexer(0)

    def test_same_topic_same_shard(self):
        sharded = ShardedIndexer(4)
        shards = {sharded.route(make_message(i, f"#topic msg {i}",
                                             user=f"u{i}", hours=i * 0.1))
                  for i in range(10)}
        assert len(shards) == 1

    def test_topics_spread_across_shards(self):
        sharded = ShardedIndexer(4)
        shards = {sharded.route(make_message(i, f"#topic{i} msg",
                                             user=f"u{i}", hours=i * 0.1))
                  for i in range(40)}
        assert len(shards) >= 3

    def test_routing_deterministic_across_instances(self):
        first = ShardedIndexer(8)
        second = ShardedIndexer(8)
        for index in range(20):
            message = make_message(index, f"#t{index} x", user=f"u{index}",
                                   hours=index * 0.1)
            assert first.route(message) == second.route(message)


class TestCooccurrenceRouter:
    def test_invalid_router_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardedIndexer(2, router="random")

    def test_varying_tag_subsets_still_colocate(self):
        """The case the hash router gets wrong: one message carries only
        the event tag, another the event tag plus a broad stem."""
        sharded = ShardedIndexer(8, router="cooccurrence")
        bridging = make_message(0, "start #samoa0930 #tsunami")
        only_event = make_message(1, "more #samoa0930", user="b", hours=0.1)
        only_stem = make_message(2, "also #tsunami", user="c", hours=0.2)
        shards = {sharded.route(bridging), sharded.route(only_event),
                  sharded.route(only_stem)}
        assert len(shards) == 1

    def test_beats_hash_router_on_edge_coverage(self):
        from repro.core.engine import ProvenanceIndexer

        messages = []
        for index in range(60):
            # alternate between tag subsets of the same 6 events
            event = index % 6
            tags = f"#event{event}" if index % 2 else \
                f"#event{event} #broad{event % 2}"
            messages.append(make_message(index, f"{tags} words here",
                                         user=f"u{index % 7}",
                                         hours=index * 0.05))
        single = ProvenanceIndexer(IndexerConfig())
        for message in messages:
            single.ingest(message)
        reference = single.edge_pairs()

        def coverage(router: str) -> float:
            sharded = ShardedIndexer(8, router=router)
            for message in messages:
                sharded.ingest(message)
            return compare_edge_sets(sharded.edge_pairs(),
                                     reference).coverage

        assert coverage("cooccurrence") >= coverage("hash")

    def test_deterministic(self):
        def placements() -> list[int]:
            sharded = ShardedIndexer(4, router="cooccurrence")
            return [sharded.ingest_routed(make_message(
                index, f"#t{index % 3} #x{index % 2} m",
                user=f"u{index}", hours=index * 0.1))[0]
                for index in range(20)]

        assert placements() == placements()


class TestShardedIngest:
    def _run(self, shard_count: int):
        sharded = ShardedIndexer(shard_count)
        for index in range(60):
            sharded.ingest(make_message(
                index, f"#topic{index % 12} words here",
                user=f"u{index % 7}", hours=index * 0.05))
        return sharded

    def test_all_messages_land_once(self):
        sharded = self._run(4)
        stats = sharded.shard_stats()
        assert stats.total_messages == 60
        assert stats.shard_count == 4
        unified = sharded.stats()
        assert unified["messages_ingested"] == 60
        assert unified["shard_count"] == 4

    def test_imbalance_reasonable(self):
        stats = self._run(4).shard_stats()
        assert stats.imbalance < 3.0

    def test_intra_topic_edges_preserved(self):
        """Co-location: sharding must keep (nearly) all of the edges a
        single engine finds, because topics never split across shards."""
        from repro.core.engine import ProvenanceIndexer

        messages = [make_message(index, f"#topic{index % 12} words here",
                                 user=f"u{index % 7}", hours=index * 0.05)
                    for index in range(60)]
        single = ProvenanceIndexer(IndexerConfig())
        for message in messages:
            single.ingest(message)
        sharded = ShardedIndexer(4)
        for message in messages:
            sharded.ingest(message)
        cmp = compare_edge_sets(sharded.edge_pairs(), single.edge_pairs())
        assert cmp.coverage > 0.9

    def test_search_scatter_gather(self):
        sharded = self._run(4)
        hits = sharded.search_by_shard("#topic3", k=5)
        assert hits
        shard_index, hit = hits[0]
        assert "topic3" in hit.bundle.hashtag_counts
        assert 0 <= shard_index < 4

    def test_search_merged_matches_tagged(self):
        sharded = self._run(4)
        merged = sharded.search("#topic3", k=5)
        tagged = sharded.search_by_shard("#topic3", k=5)
        assert [hit.bundle_id for hit in merged] == \
            [hit.bundle_id for _, hit in tagged]

    def test_search_scores_descending(self):
        sharded = self._run(4)
        hits = sharded.search("words here", k=10)
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_single_shard_equals_plain_engine(self):
        from repro.core.engine import ProvenanceIndexer

        messages = [make_message(index, f"#t{index % 5} text",
                                 user=f"u{index}", hours=index * 0.1)
                    for index in range(30)]
        single = ProvenanceIndexer(IndexerConfig())
        sharded = ShardedIndexer(1)
        for message in messages:
            single.ingest(message)
            sharded.ingest(message)
        assert sharded.edge_pairs() == single.edge_pairs()
