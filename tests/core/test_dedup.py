"""Tests for near-duplicate detection."""

from __future__ import annotations

import pytest

from repro.core.dedup import DuplicateDetector, MinHasher, jaccard, shingles
from tests.conftest import make_message


class TestShingles:
    def test_basic_shingles(self):
        grams = shingles("the quick brown fox jumps", width=3)
        assert "the quick brown" in grams
        assert "brown fox jumps" in grams
        assert len(grams) == 3

    def test_short_text_single_shingle(self):
        assert shingles("two words", width=3) == frozenset({"two words"})

    def test_empty_text(self):
        assert shingles("", width=3) == frozenset()

    def test_entities_stripped(self):
        grams = shingles("breaking news #tag http://bit.ly/x", width=2)
        assert all("http" not in g and "#" not in g for g in grams)

    def test_case_insensitive(self):
        assert shingles("Breaking News Today") == shingles(
            "breaking news today")

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            shingles("x", width=0)


class TestJaccard:
    def test_identical(self):
        grams = shingles("a b c d e")
        assert jaccard(grams, grams) == 1.0

    def test_disjoint(self):
        assert jaccard(frozenset({"a b"}), frozenset({"c d"})) == 0.0

    def test_both_empty(self):
        assert jaccard(frozenset(), frozenset()) == 1.0

    def test_one_empty(self):
        assert jaccard(frozenset({"a"}), frozenset()) == 0.0

    def test_partial(self):
        assert jaccard(frozenset({"a", "b"}),
                       frozenset({"b", "c"})) == pytest.approx(1 / 3)


class TestMinHasher:
    def test_signature_length(self):
        hasher = MinHasher(num_hashes=32)
        assert len(hasher.signature(frozenset({"a", "b"}))) == 32

    def test_deterministic_across_instances(self):
        grams = shingles("breaking news from the stadium tonight")
        assert MinHasher(16).signature(grams) == MinHasher(16).signature(
            grams)

    def test_estimate_tracks_jaccard(self):
        hasher = MinHasher(num_hashes=256)
        a = shingles("the quick brown fox jumps over the lazy dog today")
        b = shingles("the quick brown fox jumps over the lazy cat today")
        exact = jaccard(a, b)
        estimated = MinHasher.estimate(hasher.signature(a),
                                       hasher.signature(b))
        assert abs(estimated - exact) < 0.2

    def test_identical_sets_estimate_one(self):
        hasher = MinHasher(32)
        grams = shingles("some repeated message text here")
        sig = hasher.signature(grams)
        assert MinHasher.estimate(sig, sig) == 1.0

    def test_mismatched_signatures_rejected(self):
        with pytest.raises(ValueError):
            MinHasher.estimate((1, 2), (1, 2, 3))

    def test_invalid_num_hashes(self):
        with pytest.raises(ValueError):
            MinHasher(0)


class TestDuplicateDetector:
    def test_exact_copy_detected(self):
        detector = DuplicateDetector()
        original = make_message(0, "breaking: tsunami warning for the "
                                   "entire coast issued this morning")
        copy = make_message(1, "breaking: tsunami warning for the entire "
                               "coast issued this morning", user="b",
                            hours=1)
        assert detector.check_and_add(original) is None
        assert detector.check_and_add(copy) == 0

    def test_near_copy_detected(self):
        detector = DuplicateDetector(threshold=0.5)
        detector.check_and_add(make_message(
            0, "huge earthquake strikes the coast this morning says agency"))
        result = detector.check_and_add(make_message(
            1, "huge earthquake strikes the coast this morning says office",
            user="b", hours=1))
        assert result == 0

    def test_unrelated_not_flagged(self):
        detector = DuplicateDetector()
        detector.check_and_add(make_message(0, "totally about baseball "
                                               "games and stadium crowds"))
        result = detector.check_and_add(make_message(
            1, "market rally pushes stocks higher on earnings", user="b",
            hours=1))
        assert result is None

    def test_earliest_duplicate_returned(self):
        detector = DuplicateDetector()
        text = "identical viral content spreading around the network now"
        for index in range(3):
            detector.check_and_add(make_message(index, text,
                                                user=f"u{index}",
                                                hours=index * 0.1))
        result = detector.check_and_add(
            make_message(9, text, user="late", hours=1))
        assert result == 0

    def test_duplicates_of_readonly(self):
        detector = DuplicateDetector()
        text = "copy pasted template message for spam detection tests"
        detector.check_and_add(make_message(0, text))
        detector.check_and_add(make_message(1, text, user="b", hours=0.1))
        probe = make_message(1, text, user="b", hours=0.1)
        assert detector.duplicates_of(probe) == [0]
        assert len(detector) == 2

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            DuplicateDetector(threshold=0.0)

    def test_bands_must_divide_hashes(self):
        with pytest.raises(ValueError):
            DuplicateDetector(num_hashes=64, bands=7)

    def test_rt_variants_collapse(self):
        """The real use case: RT copies of one message are duplicates."""
        detector = DuplicateDetector(threshold=0.5)
        detector.check_and_add(make_message(
            0, "lester getting an ovation from the stadium crowd tonight",
            user="amalie"))
        result = detector.check_and_add(make_message(
            1, "RT @amalie: lester getting an ovation from the stadium "
               "crowd tonight", user="fan", hours=0.5))
        assert result == 0
