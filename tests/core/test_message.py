"""Tests for the message model and entity extraction (Definition 1)."""

from __future__ import annotations

import pytest

from repro.core.errors import MessageError
from repro.core.message import (Message, extract_hashtags, extract_mentions,
                                extract_rt_users, extract_urls, parse_message,
                                strip_entities)
from tests.conftest import BASE_DATE, make_message


class TestExtractHashtags:
    def test_simple_hashtag(self):
        assert extract_hashtags("go #redsox") == frozenset({"redsox"})

    def test_multiple_hashtags(self):
        tags = extract_hashtags("#Yankee beats #redsox tonight #MLB")
        assert tags == frozenset({"yankee", "redsox", "mlb"})

    def test_hashtags_are_lowercased(self):
        assert extract_hashtags("#RedSox") == frozenset({"redsox"})

    def test_no_hashtags(self):
        assert extract_hashtags("plain text message") == frozenset()

    def test_hash_alone_is_not_a_tag(self):
        assert extract_hashtags("number # 42") == frozenset()

    def test_numeric_and_underscore_tags(self):
        assert extract_hashtags("#h1n1 #swine_flu") == frozenset(
            {"h1n1", "swine_flu"})

    def test_duplicate_tags_deduplicated(self):
        assert extract_hashtags("#a #a #a") == frozenset({"a"})


class TestExtractUrls:
    def test_http_url(self):
        assert extract_urls("see http://example.com/page") == frozenset(
            {"example.com/page"})

    def test_https_prefix_stripped(self):
        assert extract_urls("https://Example.com/Page") == frozenset(
            {"example.com/Page"})

    def test_bare_shortener(self):
        assert extract_urls("photos bit.ly/Uvcpr here") == frozenset(
            {"bit.ly/Uvcpr"})

    def test_shortener_with_scheme_equals_bare(self):
        with_scheme = extract_urls("http://bit.ly/abc")
        bare = extract_urls("bit.ly/abc")
        assert with_scheme == bare

    def test_trailing_punctuation_stripped(self):
        assert extract_urls("look: http://ow.ly/kq3!") == frozenset(
            {"ow.ly/kq3"})

    def test_host_lowercased_path_preserved(self):
        urls = extract_urls("http://TwitPic.com/AbC")
        assert urls == frozenset({"twitpic.com/AbC"})

    def test_no_urls(self):
        assert extract_urls("nothing to see") == frozenset()

    def test_multiple_urls(self):
        urls = extract_urls("a http://x.com/1 b is.gd/2")
        assert urls == frozenset({"x.com/1", "is.gd/2"})


class TestExtractRtUsers:
    def test_single_rt(self):
        assert extract_rt_users("RT @MLB: some news") == ("mlb",)

    def test_rt_chain_order(self):
        text = "WHEW!! RT @MLB: RT @IanMBrowne X-rays negative"
        assert extract_rt_users(text) == ("mlb", "ianmbrowne")

    def test_rt_without_colon(self):
        assert extract_rt_users("RT @someone hello") == ("someone",)

    def test_rt_case_insensitive_marker(self):
        assert extract_rt_users("rt @User: hi") == ("user",)

    def test_no_rt(self):
        assert extract_rt_users("just mentioning @user") == ()

    def test_rt_must_be_word_boundary(self):
        assert extract_rt_users("START @user") == ()


class TestExtractMentions:
    def test_mentions_include_rt_targets(self):
        assert extract_mentions("hi @Bob RT @Alice: yo") == frozenset(
            {"bob", "alice"})

    def test_no_mentions(self):
        assert extract_mentions("nothing here") == frozenset()


class TestStripEntities:
    def test_strips_urls(self):
        assert "http" not in strip_entities("see http://x.com/abc now")

    def test_strips_rt_markers(self):
        text = strip_entities("ok RT @user: the news")
        assert "RT" not in text
        assert "@user" not in text

    def test_keeps_hashtag_words(self):
        assert strip_entities("go #redsox go") == "go redsox go"

    def test_collapses_whitespace(self):
        assert strip_entities("a    b\t c") == "a b c"


class TestMessage:
    def test_parse_populates_entities(self):
        message = parse_message(
            1, "Abcdude", BASE_DATE,
            "Classy RT @Amalie: ovation #redsox http://bit.ly/x")
        assert message.user == "abcdude"
        assert message.hashtags == frozenset({"redsox"})
        assert message.urls == frozenset({"bit.ly/x"})
        assert message.rt_users == ("amalie",)

    def test_is_retweet(self):
        assert make_message(1, "RT @a: hi").is_retweet
        assert not make_message(2, "original post").is_retweet

    def test_rt_source_is_first_in_chain(self):
        message = make_message(1, "RT @outer: RT @inner: hi")
        assert message.rt_source == "outer"

    def test_rt_source_none_for_original(self):
        assert make_message(1, "plain").rt_source is None

    def test_plain_text(self):
        message = make_message(1, "go #redsox http://bit.ly/x RT @a: ok")
        plain = message.plain_text()
        assert "#" not in plain and "http" not in plain and "RT" not in plain

    def test_sort_key_orders_by_date_then_id(self):
        early = make_message(5, "a", hours=0.0)
        late = make_message(1, "b", hours=1.0)
        assert early.sort_key() < late.sort_key()
        same_time_low_id = make_message(1, "c", hours=0.0)
        assert same_time_low_id.sort_key() < early.sort_key()

    def test_negative_msg_id_rejected(self):
        with pytest.raises(MessageError):
            Message(msg_id=-1, user="u", date=0.0, text="x")

    def test_empty_user_rejected(self):
        with pytest.raises(MessageError):
            Message(msg_id=0, user="", date=0.0, text="x")

    def test_negative_date_rejected(self):
        with pytest.raises(MessageError):
            Message(msg_id=0, user="u", date=-1.0, text="x")

    def test_messages_are_hashable_value_objects(self):
        a = make_message(1, "same text")
        b = make_message(1, "same text")
        assert a == b
        assert hash(a) == hash(b)

    def test_ground_truth_labels_default_to_none(self):
        message = make_message(1, "x")
        assert message.event_id is None
        assert message.parent_id is None

    def test_ground_truth_labels_carried(self):
        message = make_message(1, "x", event_id=9, parent_id=0)
        assert message.event_id == 9
        assert message.parent_id == 0
