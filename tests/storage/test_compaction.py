"""Tests for bundle-store compaction."""

from __future__ import annotations

import pytest

from repro.core.bundle import Bundle
from repro.core.errors import StorageError
from repro.storage.bundle_store import BundleStore
from repro.storage.compaction import (compact_store, dead_bytes_fraction)
from tests.conftest import make_message


def build_bundle(bundle_id: int, size: int) -> Bundle:
    bundle = Bundle(bundle_id)
    for index in range(size):
        bundle.insert(make_message(bundle_id * 100 + index,
                                   f"#t{bundle_id} msg {index}",
                                   user=f"u{index}", hours=index * 0.1))
    return bundle


class TestDeadBytesFraction:
    def test_empty_store(self, tmp_path):
        assert dead_bytes_fraction(BundleStore(tmp_path / "s")) == 0.0

    def test_no_superseded_records(self, tmp_path):
        store = BundleStore(tmp_path / "s")
        store.append(build_bundle(1, 2))
        assert dead_bytes_fraction(store) == 0.0

    def test_reappends_counted(self, tmp_path):
        store = BundleStore(tmp_path / "s")
        store.append(build_bundle(1, 2))
        store.append(build_bundle(1, 3))
        assert dead_bytes_fraction(store) == pytest.approx(0.5)


class TestCompaction:
    def test_latest_records_survive(self, tmp_path):
        store = BundleStore(tmp_path / "s")
        store.append(build_bundle(1, 2))
        store.append(build_bundle(2, 3))
        store.append(build_bundle(1, 5))  # supersedes the first record
        compacted, report = compact_store(store)
        assert report.bundles_kept == 2
        assert report.records_dropped == 1
        assert len(compacted.load(1)) == 5
        assert len(compacted.load(2)) == 3

    def test_bytes_reclaimed(self, tmp_path):
        store = BundleStore(tmp_path / "s")
        for _ in range(5):
            store.append(build_bundle(1, 4))
        compacted, report = compact_store(store)
        assert report.bytes_reclaimed > 0
        assert compacted.total_bytes() < report.bytes_before

    def test_directory_path_preserved(self, tmp_path):
        directory = tmp_path / "s"
        store = BundleStore(directory)
        store.append(build_bundle(1, 2))
        compacted, _ = compact_store(store)
        assert compacted.directory == directory
        # no leftover temp dirs
        assert sorted(p.name for p in tmp_path.iterdir()) == ["s"]

    def test_compacted_store_reopens(self, tmp_path):
        directory = tmp_path / "s"
        store = BundleStore(directory)
        store.append(build_bundle(1, 2))
        store.append(build_bundle(1, 4))
        compact_store(store)
        reopened = BundleStore(directory)
        assert reopened.bundle_ids() == [1]
        assert len(reopened.load(1)) == 4

    def test_empty_store_compaction(self, tmp_path):
        store = BundleStore(tmp_path / "s")
        compacted, report = compact_store(store)
        assert report.bundles_kept == 0
        assert len(compacted) == 0

    def test_leftover_directories_rejected(self, tmp_path):
        directory = tmp_path / "s"
        store = BundleStore(directory)
        (tmp_path / "s.compact").mkdir()
        with pytest.raises(StorageError):
            compact_store(store)

    def test_multi_segment_compaction(self, tmp_path):
        store = BundleStore(tmp_path / "s", max_segment_bytes=1500)
        for bundle_id in range(6):
            store.append(build_bundle(bundle_id, 3))
            store.append(build_bundle(bundle_id, 4))
        assert store.segment_count() > 1
        compacted, report = compact_store(store)
        assert report.bundles_kept == 6
        assert all(len(compacted.load(i)) == 4 for i in range(6))
