"""Tests for the write-ahead journal and crash recovery."""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.errors import StorageError
from repro.core.validation import check_engine
from repro.storage.wal import JournaledIndexer, MessageJournal
from tests.conftest import make_message


def stream(count: int = 40):
    return [make_message(i, f"#topic{i % 6} message body {i}",
                         user=f"u{i % 5}", hours=i * 0.1)
            for i in range(count)]


class TestMessageJournal:
    def test_append_and_replay(self, tmp_path):
        journal = MessageJournal(tmp_path / "m.wal")
        messages = stream(5)
        for message in messages:
            journal.append(message)
        journal.sync()
        replayed = [m for _, m in MessageJournal.replay_entries(
            tmp_path / "m.wal")]
        assert replayed == messages

    def test_sequence_numbers_monotone(self, tmp_path):
        journal = MessageJournal(tmp_path / "m.wal")
        seqs = [journal.append(m) for m in stream(5)]
        assert seqs == [0, 1, 2, 3, 4]

    def test_reopen_continues_sequence(self, tmp_path):
        journal = MessageJournal(tmp_path / "m.wal")
        for message in stream(3):
            journal.append(message)
        journal.close()
        reopened = MessageJournal(tmp_path / "m.wal")
        assert reopened.append(make_message(99, "late", hours=9)) == 3

    def test_truncate_keeps_sequence(self, tmp_path):
        journal = MessageJournal(tmp_path / "m.wal")
        for message in stream(3):
            journal.append(message)
        journal.truncate()
        assert journal.append(make_message(99, "late", hours=9)) == 3
        assert len(list(MessageJournal.replay_entries(
            tmp_path / "m.wal"))) == 0  # not yet synced
        journal.sync()
        assert len(list(MessageJournal.replay_entries(
            tmp_path / "m.wal"))) == 1

    def test_torn_tail_skipped(self, tmp_path):
        path = tmp_path / "m.wal"
        journal = MessageJournal(path)
        for message in stream(3):
            journal.append(message)
        journal.close()
        # simulate a crash mid-append: cut the last line in half
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 10])
        replayed = list(MessageJournal.replay_entries(path))
        assert len(replayed) == 2

    def test_escaped_text_round_trips(self, tmp_path):
        journal = MessageJournal(tmp_path / "m.wal")
        message = make_message(0, "line\none\ttab \\ slash")
        journal.append(message)
        journal.sync()
        _, replayed = next(MessageJournal.replay_entries(
            tmp_path / "m.wal"))
        assert replayed.text == message.text

    def test_missing_file_replays_nothing(self, tmp_path):
        assert list(MessageJournal.replay_entries(
            tmp_path / "nope.wal")) == []

    def test_invalid_sync_every(self, tmp_path):
        with pytest.raises(StorageError):
            MessageJournal(tmp_path / "m.wal", sync_every=0)


class TestCrashRecovery:
    def _journaled(self, tmp_path, snapshot_every=10_000):
        indexer = ProvenanceIndexer(IndexerConfig.partial_index(
            pool_size=15))
        journal = MessageJournal(tmp_path / "ingest.wal", sync_every=1)
        return JournaledIndexer(indexer, journal,
                                snapshot_path=tmp_path / "state.json",
                                snapshot_every=snapshot_every)

    def test_recover_without_any_snapshot(self, tmp_path):
        journaled = self._journaled(tmp_path)
        reference = ProvenanceIndexer(IndexerConfig.partial_index(
            pool_size=15))
        for message in stream(30):
            journaled.ingest(message)
            reference.ingest(message)
        # "crash": drop the in-memory engine entirely, recover from disk
        recovered = JournaledIndexer.recover(
            tmp_path / "state.json", tmp_path / "ingest.wal")
        assert recovered.indexer.edge_pairs() == reference.edge_pairs()
        assert check_engine(recovered.indexer) == []

    def test_recover_after_checkpoint(self, tmp_path):
        journaled = self._journaled(tmp_path)
        reference = ProvenanceIndexer(IndexerConfig.partial_index(
            pool_size=15))
        messages = stream(30)
        for message in messages[:20]:
            journaled.ingest(message)
            reference.ingest(message)
        journaled.checkpoint()
        for message in messages[20:]:
            journaled.ingest(message)
            reference.ingest(message)
        recovered = JournaledIndexer.recover(
            tmp_path / "state.json", tmp_path / "ingest.wal")
        assert recovered.indexer.edge_pairs() == reference.edge_pairs()
        assert (recovered.indexer.stats.messages_ingested
                == reference.stats.messages_ingested)

    def test_crash_between_snapshot_and_truncate(self, tmp_path):
        """The nasty window: snapshot + sidecar written, journal NOT
        truncated — recovery must not double-apply."""
        journaled = self._journaled(tmp_path)
        reference = ProvenanceIndexer(IndexerConfig.partial_index(
            pool_size=15))
        messages = stream(24)
        for message in messages[:12]:
            journaled.ingest(message)
            reference.ingest(message)
        # manual "partial checkpoint": snapshot + sidecar, no truncate
        from repro.storage.snapshot import save_snapshot

        journaled.journal.sync()
        save_snapshot(journaled.indexer, tmp_path / "state.json")
        (tmp_path / "state.json.seq").write_text(
            str(journaled.last_applied_seq))
        for message in messages[12:]:
            journaled.ingest(message)
            reference.ingest(message)
        recovered = JournaledIndexer.recover(
            tmp_path / "state.json", tmp_path / "ingest.wal")
        assert (recovered.indexer.stats.messages_ingested
                == reference.stats.messages_ingested)
        assert recovered.indexer.edge_pairs() == reference.edge_pairs()

    def test_automatic_checkpointing(self, tmp_path):
        journaled = self._journaled(tmp_path, snapshot_every=10)
        for message in stream(25):
            journaled.ingest(message)
        assert (tmp_path / "state.json").exists()
        # journal only holds the tail after the last auto-checkpoint
        journaled.journal.sync()
        tail = list(MessageJournal.replay_entries(tmp_path / "ingest.wal"))
        assert len(tail) == 5

    def test_recovered_engine_continues(self, tmp_path):
        journaled = self._journaled(tmp_path)
        for message in stream(10):
            journaled.ingest(message)
        recovered = JournaledIndexer.recover(
            tmp_path / "state.json", tmp_path / "ingest.wal")
        result = recovered.ingest(make_message(100, "#topic0 continuation",
                                               user="x", hours=5.0))
        assert result is not None
        assert recovered.indexer.stats.messages_ingested == 11

    def test_checkpoint_without_path_rejected(self, tmp_path):
        indexer = ProvenanceIndexer(IndexerConfig())
        journal = MessageJournal(tmp_path / "m.wal")
        journaled = JournaledIndexer(indexer, journal)
        with pytest.raises(StorageError):
            journaled.checkpoint()

    def test_invalid_snapshot_every(self, tmp_path):
        indexer = ProvenanceIndexer(IndexerConfig())
        journal = MessageJournal(tmp_path / "m.wal")
        with pytest.raises(StorageError):
            JournaledIndexer(indexer, journal, snapshot_every=0)
