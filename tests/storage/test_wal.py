"""Tests for the write-ahead journal and crash recovery."""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.errors import StorageError
from repro.core.validation import check_engine
from repro.storage.wal import JournaledIndexer, MessageJournal
from tests.conftest import make_message


def stream(count: int = 40):
    return [make_message(i, f"#topic{i % 6} message body {i}",
                         user=f"u{i % 5}", hours=i * 0.1)
            for i in range(count)]


class TestMessageJournal:
    def test_append_and_replay(self, tmp_path):
        journal = MessageJournal(tmp_path / "m.wal")
        messages = stream(5)
        for message in messages:
            journal.append(message)
        journal.sync()
        replayed = [m for _, m in MessageJournal.replay_entries(
            tmp_path / "m.wal")]
        assert replayed == messages

    def test_sequence_numbers_monotone(self, tmp_path):
        journal = MessageJournal(tmp_path / "m.wal")
        seqs = [journal.append(m) for m in stream(5)]
        assert seqs == [0, 1, 2, 3, 4]

    def test_reopen_continues_sequence(self, tmp_path):
        journal = MessageJournal(tmp_path / "m.wal")
        for message in stream(3):
            journal.append(message)
        journal.close()
        reopened = MessageJournal(tmp_path / "m.wal")
        assert reopened.append(make_message(99, "late", hours=9)) == 3

    def test_truncate_keeps_sequence(self, tmp_path):
        journal = MessageJournal(tmp_path / "m.wal")
        for message in stream(3):
            journal.append(message)
        journal.truncate()
        assert journal.append(make_message(99, "late", hours=9)) == 3
        assert len(list(MessageJournal.replay_entries(
            tmp_path / "m.wal"))) == 0  # not yet synced
        journal.sync()
        assert len(list(MessageJournal.replay_entries(
            tmp_path / "m.wal"))) == 1

    def test_torn_tail_skipped(self, tmp_path):
        path = tmp_path / "m.wal"
        journal = MessageJournal(path)
        for message in stream(3):
            journal.append(message)
        journal.close()
        # simulate a crash mid-append: cut the last line in half
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 10])
        replayed = list(MessageJournal.replay_entries(path))
        assert len(replayed) == 2

    def test_escaped_text_round_trips(self, tmp_path):
        journal = MessageJournal(tmp_path / "m.wal")
        message = make_message(0, "line\none\ttab \\ slash")
        journal.append(message)
        journal.sync()
        _, replayed = next(MessageJournal.replay_entries(
            tmp_path / "m.wal"))
        assert replayed.text == message.text

    def test_missing_file_replays_nothing(self, tmp_path):
        assert list(MessageJournal.replay_entries(
            tmp_path / "nope.wal")) == []

    def test_invalid_sync_every(self, tmp_path):
        with pytest.raises(StorageError):
            MessageJournal(tmp_path / "m.wal", sync_every=0)


class TestCrashRecovery:
    def _journaled(self, tmp_path, snapshot_every=10_000):
        indexer = ProvenanceIndexer(IndexerConfig.partial_index(
            pool_size=15))
        journal = MessageJournal(tmp_path / "ingest.wal", sync_every=1)
        return JournaledIndexer(indexer, journal,
                                snapshot_path=tmp_path / "state.json",
                                snapshot_every=snapshot_every)

    def test_recover_without_any_snapshot(self, tmp_path):
        journaled = self._journaled(tmp_path)
        reference = ProvenanceIndexer(IndexerConfig.partial_index(
            pool_size=15))
        for message in stream(30):
            journaled.ingest(message)
            reference.ingest(message)
        # "crash": drop the in-memory engine entirely, recover from disk
        recovered = JournaledIndexer.recover(
            tmp_path / "state.json", tmp_path / "ingest.wal")
        assert recovered.indexer.edge_pairs() == reference.edge_pairs()
        assert check_engine(recovered.indexer) == []

    def test_recover_after_checkpoint(self, tmp_path):
        journaled = self._journaled(tmp_path)
        reference = ProvenanceIndexer(IndexerConfig.partial_index(
            pool_size=15))
        messages = stream(30)
        for message in messages[:20]:
            journaled.ingest(message)
            reference.ingest(message)
        journaled.checkpoint()
        for message in messages[20:]:
            journaled.ingest(message)
            reference.ingest(message)
        recovered = JournaledIndexer.recover(
            tmp_path / "state.json", tmp_path / "ingest.wal")
        assert recovered.indexer.edge_pairs() == reference.edge_pairs()
        assert (recovered.indexer.stats.messages_ingested
                == reference.stats.messages_ingested)

    def test_crash_between_snapshot_and_truncate(self, tmp_path):
        """The nasty window: snapshot + sidecar written, journal NOT
        truncated — recovery must not double-apply."""
        journaled = self._journaled(tmp_path)
        reference = ProvenanceIndexer(IndexerConfig.partial_index(
            pool_size=15))
        messages = stream(24)
        for message in messages[:12]:
            journaled.ingest(message)
            reference.ingest(message)
        # manual "partial checkpoint": snapshot + sidecar, no truncate
        from repro.storage.snapshot import save_snapshot

        journaled.journal.sync()
        save_snapshot(journaled.indexer, tmp_path / "state.json")
        (tmp_path / "state.json.seq").write_text(
            str(journaled.last_applied_seq))
        for message in messages[12:]:
            journaled.ingest(message)
            reference.ingest(message)
        recovered = JournaledIndexer.recover(
            tmp_path / "state.json", tmp_path / "ingest.wal")
        assert (recovered.indexer.stats.messages_ingested
                == reference.stats.messages_ingested)
        assert recovered.indexer.edge_pairs() == reference.edge_pairs()

    def test_automatic_checkpointing(self, tmp_path):
        journaled = self._journaled(tmp_path, snapshot_every=10)
        for message in stream(25):
            journaled.ingest(message)
        assert (tmp_path / "state.json").exists()
        # journal only holds the tail after the last auto-checkpoint
        journaled.journal.sync()
        tail = list(MessageJournal.replay_entries(tmp_path / "ingest.wal"))
        assert len(tail) == 5

    def test_recovered_engine_continues(self, tmp_path):
        journaled = self._journaled(tmp_path)
        for message in stream(10):
            journaled.ingest(message)
        recovered = JournaledIndexer.recover(
            tmp_path / "state.json", tmp_path / "ingest.wal")
        result = recovered.ingest(make_message(100, "#topic0 continuation",
                                               user="x", hours=5.0))
        assert result is not None
        assert recovered.indexer.stats.messages_ingested == 11

    def test_checkpoint_without_path_rejected(self, tmp_path):
        indexer = ProvenanceIndexer(IndexerConfig())
        journal = MessageJournal(tmp_path / "m.wal")
        journaled = JournaledIndexer(indexer, journal)
        with pytest.raises(StorageError):
            journaled.checkpoint()

    def test_invalid_snapshot_every(self, tmp_path):
        indexer = ProvenanceIndexer(IndexerConfig())
        journal = MessageJournal(tmp_path / "m.wal")
        with pytest.raises(StorageError):
            JournaledIndexer(indexer, journal, snapshot_every=0)


class TestLifecycle:
    def test_journal_context_manager_flushes(self, tmp_path):
        path = tmp_path / "m.wal"
        with MessageJournal(path, sync_every=1000) as journal:
            for message in stream(4):
                journal.append(message)
        assert len(list(MessageJournal.replay_entries(path))) == 4

    def test_journal_close_idempotent(self, tmp_path):
        journal = MessageJournal(tmp_path / "m.wal")
        journal.append(stream(1)[0])
        journal.close()
        journal.close()

    def test_journaled_clean_exit_checkpoints(self, tmp_path):
        snapshot = tmp_path / "state.json"
        with JournaledIndexer(
                ProvenanceIndexer(IndexerConfig.partial_index(pool_size=15)),
                MessageJournal(tmp_path / "m.wal"),
                snapshot_path=snapshot, snapshot_every=10_000) as journaled:
            for message in stream(6):
                journaled.ingest(message)
        assert snapshot.exists()
        # the final checkpoint truncated the journal
        assert list(MessageJournal.replay_entries(tmp_path / "m.wal")) == []
        recovered = JournaledIndexer.recover(snapshot, tmp_path / "m.wal")
        assert recovered.indexer.stats.messages_ingested == 6

    def test_journaled_exceptional_exit_skips_checkpoint(self, tmp_path):
        snapshot = tmp_path / "state.json"
        with pytest.raises(RuntimeError):
            with JournaledIndexer(
                    ProvenanceIndexer(
                        IndexerConfig.partial_index(pool_size=15)),
                    MessageJournal(tmp_path / "m.wal"),
                    snapshot_path=snapshot,
                    snapshot_every=10_000) as journaled:
                for message in stream(6):
                    journaled.ingest(message)
                raise RuntimeError("simulated consumer bug")
        # no checkpoint — but the journal tail is durable for recovery
        assert not snapshot.exists()
        recovered = JournaledIndexer.recover(snapshot, tmp_path / "m.wal")
        assert recovered.indexer.stats.messages_ingested == 6

    def test_journaled_close_idempotent(self, tmp_path):
        journaled = JournaledIndexer(
            ProvenanceIndexer(IndexerConfig.partial_index(pool_size=15)),
            MessageJournal(tmp_path / "m.wal"),
            snapshot_path=tmp_path / "state.json")
        journaled.ingest(stream(1)[0])
        journaled.close()
        before = (tmp_path / "state.json").read_bytes()
        journaled.close()  # second close must not re-checkpoint
        assert (tmp_path / "state.json").read_bytes() == before


class TestCrcFraming:
    def test_records_are_crc_framed(self, tmp_path):
        path = tmp_path / "m.wal"
        with MessageJournal(path, sync_every=1) as journal:
            journal.append(stream(1)[0])
        line = path.read_text(encoding="utf-8").splitlines()[0]
        assert line[8] == " "
        int(line[:8], 16)  # first field is the CRC in hex

    def test_interior_corruption_skipped_and_counted(self, tmp_path):
        from repro.storage.wal import ReplayStats

        path = tmp_path / "m.wal"
        with MessageJournal(path, sync_every=1) as journal:
            for message in stream(5):
                journal.append(message)
        lines = path.read_bytes().split(b"\n")
        lines[2] = b"00000000 " + lines[2][9:]  # zap record 3's CRC
        path.write_bytes(b"\n".join(lines))
        stats = ReplayStats()
        replayed = list(MessageJournal.replay_entries(path, stats=stats))
        assert [m.msg_id for _, m in replayed] == [0, 1, 3, 4]
        assert stats.skipped_corrupt == 1
        assert not stats.torn_tail

    def test_legacy_v0_journal_replays(self, tmp_path):
        """Journals written before CRC framing must still replay."""
        from repro.storage.wal import ReplayStats, _escape

        path = tmp_path / "legacy.wal"
        messages = stream(3)
        lines = [f"{seq}\t{m.msg_id}\t{m.user}\t{m.date!r}\t\t\t"
                 f"{_escape(m.text)}"
                 for seq, m in enumerate(messages)]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        stats = ReplayStats()
        replayed = [m for _, m in MessageJournal.replay_entries(
            path, stats=stats)]
        assert replayed == messages
        assert stats.legacy_records == 3

    def test_legacy_journal_continues_with_framed_appends(self, tmp_path):
        """A reopened v0 journal appends CRC-framed records after the
        legacy ones, and replay handles the mixed file."""
        from repro.storage.wal import _escape

        path = tmp_path / "mixed.wal"
        old = stream(2)
        lines = [f"{seq}\t{m.msg_id}\t{m.user}\t{m.date!r}\t\t\t"
                 f"{_escape(m.text)}" for seq, m in enumerate(old)]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        journal = MessageJournal(path, sync_every=1)
        assert journal.append(make_message(50, "new era", hours=9)) == 2
        journal.close()
        replayed = list(MessageJournal.replay_entries(path))
        assert [seq for seq, _ in replayed] == [0, 1, 2]
        assert replayed[-1][1].msg_id == 50
