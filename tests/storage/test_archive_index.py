"""Tests for the searchable bundle archive."""

from __future__ import annotations

import pytest

from repro.core.bundle import Bundle
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.errors import StorageError
from repro.storage.archive_index import (ArchiveIndex, ArchivedBundleStore)
from tests.conftest import make_message


def topic_bundle(bundle_id: int, tag: str, *, size: int = 3,
                 hours: float = 0.0) -> Bundle:
    bundle = Bundle(bundle_id)
    for index in range(size):
        bundle.insert(
            make_message(bundle_id * 100 + index,
                         f"#{tag} update number {index} bit.ly/{tag}x",
                         user=f"u{index}", hours=hours + index * 0.1),
            keywords=frozenset({tag, "update"}))
    return bundle


class TestArchiveIndex:
    def test_add_and_search_by_hashtag(self, tmp_path):
        index = ArchiveIndex(tmp_path)
        index.add(topic_bundle(1, "tsunami"))
        index.add(topic_bundle(2, "stocks"))
        hits = index.search(hashtags={"tsunami"})
        assert [hit.bundle_id for hit in hits] == [1]

    def test_search_by_keyword(self, tmp_path):
        index = ArchiveIndex(tmp_path)
        index.add(topic_bundle(1, "tsunami"))
        hits = index.search(terms={"tsunami"})
        assert hits and hits[0].bundle_id == 1

    def test_search_by_url(self, tmp_path):
        index = ArchiveIndex(tmp_path)
        index.add(topic_bundle(1, "game"))
        hits = index.search(urls={"bit.ly/gamex"})
        assert [hit.bundle_id for hit in hits] == [1]

    def test_empty_criteria_returns_nothing(self, tmp_path):
        index = ArchiveIndex(tmp_path)
        index.add(topic_bundle(1, "x"))
        assert index.search() == []

    def test_recency_tie_break(self, tmp_path):
        index = ArchiveIndex(tmp_path)
        index.add(topic_bundle(1, "game", hours=0.0))
        index.add(topic_bundle(2, "game", hours=10.0))
        hits = index.search(hashtags={"game"}, k=2)
        assert hits[0].bundle_id == 2  # fresher first on equal score

    def test_journal_replayed_on_reopen(self, tmp_path):
        index = ArchiveIndex(tmp_path)
        index.add(topic_bundle(1, "tsunami"))
        index.add(topic_bundle(2, "stocks"))
        reopened = ArchiveIndex(tmp_path)
        assert len(reopened) == 2
        assert reopened.search(hashtags={"stocks"})[0].bundle_id == 2

    def test_reindex_same_bundle_latest_wins(self, tmp_path):
        index = ArchiveIndex(tmp_path)
        index.add(topic_bundle(1, "alpha"))
        index.add(topic_bundle(1, "beta"))  # superseding record
        assert len(index) == 1
        assert index.search(hashtags={"alpha"}) == []
        assert index.search(hashtags={"beta"})[0].bundle_id == 1

    def test_corrupt_journal_rejected(self, tmp_path):
        (tmp_path / "archive-index.log").write_text("{broken\n")
        with pytest.raises(StorageError):
            ArchiveIndex(tmp_path)

    def test_hit_carries_summary(self, tmp_path):
        index = ArchiveIndex(tmp_path)
        index.add(topic_bundle(1, "tsunami"))
        hit = index.search(hashtags={"tsunami"})[0]
        assert hit.size == 3
        assert hit.summary_words


class TestArchivedBundleStore:
    def test_append_persists_and_indexes(self, tmp_path):
        store = ArchivedBundleStore(tmp_path / "arch")
        store.append(topic_bundle(1, "tsunami"))
        assert len(store) == 1
        assert store.search("#tsunami")[0].bundle_id == 1
        assert len(store.load(1)) == 3

    def test_free_text_search(self, tmp_path):
        store = ArchivedBundleStore(tmp_path / "arch")
        store.append(topic_bundle(1, "tsunami"))
        store.append(topic_bundle(2, "stocks"))
        hits = store.search("tsunami update")
        assert hits[0].bundle_id == 1

    def test_engine_integration_archived_stories_findable(self, tmp_path):
        """The headline capability: stories evicted from the pool remain
        searchable through the archive."""
        store = ArchivedBundleStore(tmp_path / "arch")
        indexer = ProvenanceIndexer(
            IndexerConfig.partial_index(pool_size=3), store=store)
        # Three messages: big enough to be *backed up* on eviction rather
        # than deleted as aging-tiny (Algorithm 3 stage one).
        indexer.ingest(make_message(0, "tsunami warning #tsunami",
                                    user="agency"))
        indexer.ingest(make_message(1, "RT @agency: tsunami warning "
                                       "#tsunami", user="fan", hours=0.2))
        indexer.ingest(make_message(90, "evacuation starts #tsunami",
                                    user="news", hours=0.4))
        # Flood with unrelated topics far in the future to force eviction.
        for index in range(2, 40):
            indexer.ingest(make_message(index, f"#topic{index} chatter",
                                        user=f"u{index}", hours=200 + index))
        pooled_tags = {tag for bundle in indexer.pool
                       for tag in bundle.hashtag_counts}
        assert "tsunami" not in pooled_tags  # gone from memory
        hits = store.search("#tsunami")
        assert hits
        archived = store.load(hits[0].bundle_id)
        assert any("tsunami" in m.text for m in archived.messages())
