"""Tests for bundle/message serialization round-trips."""

from __future__ import annotations

import pytest

from repro.core.bundle import Bundle
from repro.core.config import IndexerConfig
from repro.core.errors import StorageError
from repro.storage.serializer import (bundle_from_dict, bundle_from_json,
                                      bundle_to_dict, bundle_to_json,
                                      message_from_dict, message_to_dict)
from tests.conftest import make_message


def build_bundle() -> Bundle:
    bundle = Bundle(7, IndexerConfig())
    bundle.insert(make_message(0, "origin #tag bit.ly/a", user="src"),
                  keywords=frozenset({"origin"}))
    bundle.insert(make_message(1, "RT @src: origin #tag", user="fan",
                               hours=0.5),
                  keywords=frozenset({"origin"}))
    bundle.insert(make_message(2, "more #tag talk", user="other", hours=1.0),
                  keywords=frozenset({"talk"}))
    return bundle


class TestMessageRoundTrip:
    def test_round_trip(self):
        message = make_message(3, "RT @a: hi #tag bit.ly/x", user="b",
                               hours=2, event_id=1, parent_id=0)
        assert message_from_dict(message_to_dict(message)) == message

    def test_round_trip_without_labels(self):
        message = make_message(3, "plain")
        restored = message_from_dict(message_to_dict(message))
        assert restored == message
        assert restored.event_id is None

    def test_malformed_record_raises(self):
        with pytest.raises(StorageError):
            message_from_dict({"id": "x"})


class TestBundleRoundTrip:
    def test_members_preserved_in_order(self):
        bundle = build_bundle()
        restored = bundle_from_dict(bundle_to_dict(bundle))
        assert restored.bundle_id == 7
        assert restored.message_ids() == bundle.message_ids()
        assert restored.messages() == bundle.messages()

    def test_edges_preserved_verbatim(self):
        bundle = build_bundle()
        restored = bundle_from_dict(bundle_to_dict(bundle))
        assert restored.edge_pairs() == bundle.edge_pairs()
        original = {e.src_id: e for e in bundle.edges()}
        for edge in restored.edges():
            assert edge == original[edge.src_id]

    def test_summaries_rebuilt(self):
        bundle = build_bundle()
        restored = bundle_from_dict(bundle_to_dict(bundle))
        assert restored.hashtag_counts == bundle.hashtag_counts
        assert restored.url_counts == bundle.url_counts
        assert restored.keyword_counts == bundle.keyword_counts
        assert restored.user_counts == bundle.user_counts

    def test_time_window_preserved(self):
        bundle = build_bundle()
        restored = bundle_from_dict(bundle_to_dict(bundle))
        assert restored.start_time == bundle.start_time
        assert restored.end_time == bundle.end_time
        assert restored.last_update == bundle.last_update

    def test_keywords_preserved(self):
        bundle = build_bundle()
        restored = bundle_from_dict(bundle_to_dict(bundle))
        for msg_id in bundle.message_ids():
            assert restored.keywords_of(msg_id) == bundle.keywords_of(msg_id)

    def test_closed_flag_preserved(self):
        bundle = build_bundle()
        bundle.close()
        assert bundle_from_dict(bundle_to_dict(bundle)).closed

    def test_restored_bundle_accepts_new_messages(self):
        bundle = build_bundle()
        restored = bundle_from_dict(bundle_to_dict(bundle))
        edge = restored.insert(make_message(9, "late #tag arrival",
                                            user="late", hours=2))
        assert edge is not None
        assert edge.dst_id in set(bundle.message_ids())

    def test_json_round_trip(self):
        bundle = build_bundle()
        restored = bundle_from_json(bundle_to_json(bundle))
        assert restored.edge_pairs() == bundle.edge_pairs()
        assert len(restored) == len(bundle)

    def test_empty_bundle_round_trip(self):
        bundle = Bundle(1)
        restored = bundle_from_json(bundle_to_json(bundle))
        assert len(restored) == 0
        assert restored.bundle_id == 1


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(StorageError):
            bundle_from_json("{not json")

    def test_non_object_json(self):
        with pytest.raises(StorageError):
            bundle_from_json("[1, 2]")

    def test_missing_fields(self):
        with pytest.raises(StorageError):
            bundle_from_dict({"v": 1})

    def test_unsupported_version(self):
        record = bundle_to_dict(build_bundle())
        record["v"] = 99
        with pytest.raises(StorageError):
            bundle_from_dict(record)
