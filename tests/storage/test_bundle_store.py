"""Tests for the on-disk bundle store."""

from __future__ import annotations

import pytest

from repro.core.bundle import Bundle
from repro.core.errors import (BundleNotFoundError, CorruptSegmentError,
                               StorageError)
from repro.storage.bundle_store import BundleStore
from tests.conftest import make_message


def build_bundle(bundle_id: int, size: int = 3) -> Bundle:
    bundle = Bundle(bundle_id)
    for index in range(size):
        bundle.insert(make_message(
            bundle_id * 100 + index, f"#topic{bundle_id} message {index}",
            user=f"u{index}", hours=index * 0.1))
    return bundle


class TestAppendAndLoad:
    def test_round_trip(self, tmp_path):
        store = BundleStore(tmp_path / "store")
        bundle = build_bundle(1)
        store.append(bundle)
        loaded = store.load(1)
        assert loaded.message_ids() == bundle.message_ids()
        assert loaded.edge_pairs() == bundle.edge_pairs()

    def test_contains_and_len(self, tmp_path):
        store = BundleStore(tmp_path / "store")
        store.append(build_bundle(1))
        store.append(build_bundle(2))
        assert len(store) == 2
        assert 1 in store and 3 not in store

    def test_load_missing_raises(self, tmp_path):
        store = BundleStore(tmp_path / "store")
        with pytest.raises(BundleNotFoundError):
            store.load(9)

    def test_reappend_keeps_latest(self, tmp_path):
        store = BundleStore(tmp_path / "store")
        store.append(build_bundle(1, size=2))
        store.append(build_bundle(1, size=5))
        assert len(store) == 1
        assert len(store.load(1)) == 5
        assert store.append_count == 2

    def test_iter_bundles_ascending(self, tmp_path):
        store = BundleStore(tmp_path / "store")
        for bundle_id in (3, 1, 2):
            store.append(build_bundle(bundle_id))
        assert [b.bundle_id for b in store.iter_bundles()] == [1, 2, 3]

    def test_bundle_ids(self, tmp_path):
        store = BundleStore(tmp_path / "store")
        store.append(build_bundle(5))
        assert store.bundle_ids() == [5]

    def test_invalid_segment_size_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            BundleStore(tmp_path / "store", max_segment_bytes=0)


class TestRotation:
    def test_segments_rotate(self, tmp_path):
        store = BundleStore(tmp_path / "store", max_segment_bytes=2000)
        for bundle_id in range(10):
            store.append(build_bundle(bundle_id, size=4))
        assert store.segment_count() > 1
        # every bundle still readable across segments
        for bundle_id in range(10):
            assert store.load(bundle_id).bundle_id == bundle_id

    def test_total_bytes_positive(self, tmp_path):
        store = BundleStore(tmp_path / "store")
        store.append(build_bundle(1))
        assert store.total_bytes() > 0


class TestRecovery:
    def test_reopen_recovers_offsets(self, tmp_path):
        directory = tmp_path / "store"
        store = BundleStore(directory, max_segment_bytes=2000)
        for bundle_id in range(8):
            store.append(build_bundle(bundle_id))
        reopened = BundleStore(directory, max_segment_bytes=2000)
        assert len(reopened) == 8
        assert reopened.load(5).bundle_id == 5

    def test_reopen_continues_appending(self, tmp_path):
        directory = tmp_path / "store"
        BundleStore(directory).append(build_bundle(1))
        reopened = BundleStore(directory)
        reopened.append(build_bundle(2))
        assert sorted(reopened.bundle_ids()) == [1, 2]

    def test_corrupt_crc_detected_on_open(self, tmp_path):
        directory = tmp_path / "store"
        store = BundleStore(directory)
        store.append(build_bundle(1))
        segment = next(directory.glob("segment-*.log"))
        data = segment.read_bytes()
        segment.write_bytes(b"00000000" + data[8:])
        with pytest.raises(CorruptSegmentError):
            BundleStore(directory)

    def test_truncated_record_detected(self, tmp_path):
        directory = tmp_path / "store"
        store = BundleStore(directory)
        store.append(build_bundle(1))
        segment = next(directory.glob("segment-*.log"))
        segment.write_bytes(segment.read_bytes()[:5])
        with pytest.raises(CorruptSegmentError):
            BundleStore(directory)

    def test_empty_directory_is_fine(self, tmp_path):
        store = BundleStore(tmp_path / "fresh")
        assert len(store) == 0
        assert store.segment_count() == 1


class TestTolerantMode:
    def _corrupt_first_record(self, directory) -> None:
        segment = sorted(directory.glob("segment-*.log"))[0]
        data = segment.read_bytes()
        segment.write_bytes(b"00000000" + data[8:])

    def test_strict_open_still_raises(self, tmp_path):
        directory = tmp_path / "store"
        store = BundleStore(directory)
        for bundle_id in range(3):
            store.append(build_bundle(bundle_id))
        self._corrupt_first_record(directory)
        with pytest.raises(CorruptSegmentError):
            BundleStore(directory)

    def test_tolerant_open_skips_counts_and_warns(self, tmp_path):
        directory = tmp_path / "store"
        store = BundleStore(directory)
        for bundle_id in range(3):
            store.append(build_bundle(bundle_id))
        self._corrupt_first_record(directory)
        with pytest.warns(RuntimeWarning, match="skipping corrupt record"):
            tolerant = BundleStore(directory, tolerant=True)
        assert tolerant.corrupt_records_skipped == 1
        assert len(tolerant) == 2
        assert sorted(tolerant.bundle_ids()) == [1, 2]
        assert tolerant.load(2).bundle_id == 2

    def test_clean_store_reports_zero_skips(self, tmp_path):
        store = BundleStore(tmp_path / "store", tolerant=True)
        store.append(build_bundle(1))
        reopened = BundleStore(tmp_path / "store", tolerant=True)
        assert reopened.corrupt_records_skipped == 0
        assert reopened.skipped_files == 0

    def test_misnamed_segment_counted_and_warned(self, tmp_path):
        directory = tmp_path / "store"
        store = BundleStore(directory)
        store.append(build_bundle(1))
        (directory / "segment-zzz.log").write_text("impostor")
        with pytest.warns(RuntimeWarning, match="unparsable segment name"):
            reopened = BundleStore(directory)
        assert reopened.skipped_files == 1
        assert len(reopened) == 1
