"""Tests for whole-indexer snapshot/restore."""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.errors import StorageError
from repro.storage.snapshot import load_snapshot, save_snapshot
from tests.conftest import make_message


def build_indexer() -> ProvenanceIndexer:
    indexer = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=50))
    for index in range(30):
        indexer.ingest(make_message(index, f"#topic{index % 4} message",
                                    user=f"u{index % 6}", hours=index * 0.1))
    return indexer


class TestSnapshotRoundTrip:
    def test_bundle_count_preserved(self, tmp_path):
        indexer = build_indexer()
        path = tmp_path / "state.json"
        saved = save_snapshot(indexer, path)
        restored = load_snapshot(path)
        assert saved == len(indexer.pool)
        assert len(restored.pool) == len(indexer.pool)

    def test_edges_preserved(self, tmp_path):
        indexer = build_indexer()
        path = tmp_path / "state.json"
        save_snapshot(indexer, path)
        restored = load_snapshot(path)
        assert restored.edge_pairs() == indexer.edge_pairs()

    def test_stats_preserved(self, tmp_path):
        indexer = build_indexer()
        path = tmp_path / "state.json"
        save_snapshot(indexer, path)
        restored = load_snapshot(path)
        assert restored.stats == indexer.stats

    def test_clock_preserved(self, tmp_path):
        indexer = build_indexer()
        path = tmp_path / "state.json"
        save_snapshot(indexer, path)
        assert load_snapshot(path).current_date == indexer.current_date

    def test_config_preserved(self, tmp_path):
        indexer = build_indexer()
        path = tmp_path / "state.json"
        save_snapshot(indexer, path)
        assert load_snapshot(path).config == indexer.config

    def test_restored_indexer_continues_identically(self, tmp_path):
        """The critical property: restore is behaviourally transparent."""
        indexer = build_indexer()
        path = tmp_path / "state.json"
        save_snapshot(indexer, path)
        restored = load_snapshot(path)

        follow_up = [make_message(100 + i, f"#topic{i % 4} follow-up",
                                  user=f"v{i}", hours=4 + i * 0.1)
                     for i in range(10)]
        for message in follow_up:
            original_result = indexer.ingest(message)
            restored_result = restored.ingest(message)
            assert original_result.bundle_id == restored_result.bundle_id
            assert original_result.edge == restored_result.edge
        assert restored.edge_pairs() == indexer.edge_pairs()

    def test_bundle_id_sequence_continues(self, tmp_path):
        indexer = build_indexer()
        path = tmp_path / "state.json"
        save_snapshot(indexer, path)
        restored = load_snapshot(path)
        fresh = restored.pool.create_bundle()
        assert fresh.bundle_id not in {
            b.bundle_id for b in indexer.pool}


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_snapshot(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        with pytest.raises(StorageError):
            load_snapshot(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"v": 99}')
        with pytest.raises(StorageError):
            load_snapshot(path)
