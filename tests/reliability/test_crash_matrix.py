"""The crash matrix: kill the pipeline at every durability boundary.

For each scheduled fault the harness replays a stream into a journaled
indexer until the injected crash, recovers from disk, resumes the stream
where the recovered counters say it stopped, and finally asserts the
recovered engine is **byte-identical** (same serialized snapshot) to an
engine that ingested the same stream uninterrupted.  This is the
acceptance bar of the reliability tentpole: no fault point may lose or
duplicate state.
"""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.validation import check_engine
from repro.reliability.faults import Fault, FaultInjector, SimulatedCrash
from repro.storage.snapshot import save_snapshot
from repro.storage.wal import JournaledIndexer, MessageJournal
from tests.conftest import make_message

STREAM_LEN = 40
SNAPSHOT_EVERY = 12


def fresh_config() -> IndexerConfig:
    return IndexerConfig.partial_index(pool_size=15)


def stream():
    return [make_message(i, f"#topic{i % 6} message body {i}",
                         user=f"u{i % 5}", hours=i * 0.1)
            for i in range(STREAM_LEN)]


@pytest.fixture(scope="module")
def reference_bytes(tmp_path_factory) -> bytes:
    """Serialized state of an uninterrupted run (the ground truth)."""
    engine = ProvenanceIndexer(fresh_config())
    for message in stream():
        engine.ingest(message)
    path = tmp_path_factory.mktemp("ref") / "reference.json"
    save_snapshot(engine, path)
    return path.read_bytes()


# Every injected fault point the tentpole demands: torn WAL tail, ENOSPC
# mid-append, crash before/after fsync, crash around the snapshot rename
# (including the nasty snapshot-renamed-but-sidecar-not window), crash
# around the sidecar rename, and crash around the journal truncate.
FAULT_POINTS = [
    pytest.param(Fault(op="write", nth=1, kind="torn", keep_bytes=3,
                       path_part=".wal"), id="torn-first-append"),
    pytest.param(Fault(op="write", nth=7, kind="torn", keep_bytes=11,
                       path_part=".wal"), id="torn-mid-stream"),
    pytest.param(Fault(op="write", nth=30, kind="torn", keep_bytes=0,
                       path_part=".wal"), id="torn-after-checkpoints"),
    pytest.param(Fault(op="write", nth=5, kind="error", path_part=".wal"),
                 id="enospc-mid-append"),
    pytest.param(Fault(op="write", nth=18, kind="crash_after",
                       path_part=".wal"), id="crash-after-append"),
    pytest.param(Fault(op="fsync", nth=3, kind="crash_before",
                       path_part=".wal"), id="crash-before-fsync"),
    pytest.param(Fault(op="fsync", nth=9, kind="crash_after",
                       path_part=".wal"), id="crash-after-fsync"),
    pytest.param(Fault(op="replace", nth=1, kind="crash_before",
                       path_part="state.json"), id="crash-before-snap-rename"),
    pytest.param(Fault(op="replace", nth=1, kind="crash_after",
                       path_part="state.json"),
                 id="crash-between-snapshot-and-sidecar"),
    pytest.param(Fault(op="replace", nth=1, kind="crash_before",
                       path_part=".seq"), id="crash-before-sidecar-rename"),
    pytest.param(Fault(op="replace", nth=1, kind="crash_after",
                       path_part=".seq"), id="crash-between-sidecar-and-truncate"),
    pytest.param(Fault(op="replace", nth=3, kind="crash_after",
                       path_part="state.json"), id="crash-second-checkpoint"),
    pytest.param(Fault(op="unlink", nth=1, kind="crash_before",
                       path_part=".wal"), id="crash-before-truncate"),
    pytest.param(Fault(op="unlink", nth=1, kind="crash_after",
                       path_part=".wal"), id="crash-after-truncate"),
]


@pytest.mark.parametrize("fault", FAULT_POINTS)
def test_recovery_is_byte_identical(fault, tmp_path, reference_bytes):
    wal_path = tmp_path / "ingest.wal"
    snapshot_path = tmp_path / "state.json"
    messages = stream()

    crashed = False
    try:
        with FaultInjector([fault]):
            journaled = JournaledIndexer(
                ProvenanceIndexer(fresh_config()),
                MessageJournal(wal_path, sync_every=1),
                snapshot_path=snapshot_path,
                snapshot_every=SNAPSHOT_EVERY)
            for message in messages:
                journaled.ingest(message)
    except (SimulatedCrash, OSError):
        crashed = True
    assert crashed, f"fault {fault} never fired — dead test"

    # -- recover from disk alone, resume exactly where the counters say.
    recovered = JournaledIndexer.recover(
        snapshot_path, wal_path, snapshot_every=SNAPSHOT_EVERY,
        config=fresh_config())
    applied = recovered.indexer.stats.messages_ingested
    assert 0 <= applied <= STREAM_LEN
    for message in messages[applied:]:
        recovered.ingest(message)

    assert check_engine(recovered.indexer) == []
    final = tmp_path / "final.json"
    save_snapshot(recovered.indexer, final)
    assert final.read_bytes() == reference_bytes


def test_double_crash_double_recovery(tmp_path, reference_bytes):
    """Crash, recover, crash again, recover again — still exact."""
    wal_path = tmp_path / "ingest.wal"
    snapshot_path = tmp_path / "state.json"
    messages = stream()
    faults = [Fault(op="write", nth=9, kind="torn", keep_bytes=5,
                    path_part=".wal"),
              Fault(op="replace", nth=1, kind="crash_after",
                    path_part="state.json")]

    applied = 0
    for fault in faults:
        try:
            with FaultInjector([fault]):
                journaled = JournaledIndexer.recover(
                    snapshot_path, wal_path, snapshot_every=SNAPSHOT_EVERY,
                    config=fresh_config())
                applied = journaled.indexer.stats.messages_ingested
                for message in messages[applied:]:
                    journaled.ingest(message)
        except (SimulatedCrash, OSError):
            pass

    recovered = JournaledIndexer.recover(
        snapshot_path, wal_path, snapshot_every=SNAPSHOT_EVERY,
        config=fresh_config())
    for message in messages[recovered.indexer.stats.messages_ingested:]:
        recovered.ingest(message)
    final = tmp_path / "final.json"
    save_snapshot(recovered.indexer, final)
    assert final.read_bytes() == reference_bytes


def test_clean_run_under_injector_matches_reference(tmp_path,
                                                    reference_bytes):
    """An injector with no faults must not perturb the engine at all."""
    wal_path = tmp_path / "ingest.wal"
    with FaultInjector([]):
        journaled = JournaledIndexer(
            ProvenanceIndexer(fresh_config()),
            MessageJournal(wal_path, sync_every=1),
            snapshot_path=tmp_path / "state.json",
            snapshot_every=SNAPSHOT_EVERY)
        for message in stream():
            journaled.ingest(message)
        journaled.close()
    final = tmp_path / "final.json"
    save_snapshot(journaled.indexer, final)
    assert final.read_bytes() == reference_bytes
