"""Crash matrix for the guarded ingest path (chaos suite).

The guard adds two durable artifacts — the quarantine log and the fold
log — to the WAL/snapshot family, and with them two new ways a SIGKILL
can tear state.  For every scheduled fault this harness replays a
hostile stream (spam flood + undeclared near-dups + organic traffic)
through a guarded :class:`ResilientIndexer` until the injected crash,
recovers from disk alone, and asserts the custody contract:

* zero acknowledged loss — every verdict the driver saw before the
  crash is still honored after recovery: quarantined ids replay from
  the quarantine log, indexed ids sit in the same bundle they were
  acknowledged into (fold hints steering WAL replay);
* the artifacts stay consistent — ``repro doctor`` scans both logs,
  ``--repair`` clears any torn tail with exit code 0;
* recovery is deterministic — recovering the same disk state twice
  yields byte-identical snapshots.
"""

from __future__ import annotations

import shutil

import pytest

from repro import cli
from repro.core.config import IndexerConfig
from repro.core.validation import check_engine
from repro.reliability.faults import Fault, FaultInjector, SimulatedCrash
from repro.reliability.guard import GuardConfig, QuarantineLog
from repro.reliability.supervisor import ResilientIndexer
from repro.storage.snapshot import save_snapshot
from tests.conftest import make_message

pytestmark = pytest.mark.chaos

SPAM = "win big money now with this one amazing trick friends"
NEWS = "harbor bridge closed after the morning quake inspection"


def hostile_stream():
    """40 in-order arrivals: organic, a spam flood, a near-dup storm."""
    messages = []
    for i in range(40):
        hours = i * 0.1
        if i % 4 == 1 and i > 4:
            messages.append(make_message(
                i, f"{SPAM} {i % 3}", user="spammer", hours=hours))
        elif i % 4 == 2 and i > 4:
            messages.append(make_message(
                i, f"{NEWS} copy {i % 2}", user=f"copier{i % 3}",
                hours=hours))
        else:
            messages.append(make_message(
                i, f"organic story number {i} about topic{i % 6}",
                user=f"u{i % 5}", hours=hours))
    return messages


def open_guarded(root) -> ResilientIndexer:
    # A low judgment gate so the 9-message spam flood starts tripping
    # quarantines early enough for the scheduled faults to land on them.
    return ResilientIndexer.open(
        root, config=IndexerConfig.full_index(), sync_every=1,
        snapshot_every=12, guard=GuardConfig(spam_min_messages=4.0))


FAULT_POINTS = [
    pytest.param(Fault(op="write", nth=9, kind="torn", keep_bytes=7,
                       path_part=".wal"), id="torn-wal-mid-stream"),
    pytest.param(Fault(op="write", nth=25, kind="crash_after",
                       path_part=".wal"), id="crash-after-wal-append"),
    pytest.param(Fault(op="fsync", nth=18, kind="crash_before",
                       path_part=".wal"), id="crash-before-wal-fsync"),
    pytest.param(Fault(op="write", nth=2, kind="torn", keep_bytes=5,
                       path_part="quarantine.log"),
                 id="torn-quarantine-append"),
    pytest.param(Fault(op="write", nth=4, kind="error",
                       path_part="quarantine.log"),
                 id="enospc-quarantine-append"),
    pytest.param(Fault(op="fsync", nth=2, kind="crash_before",
                       path_part="quarantine.log"),
                 id="crash-before-quarantine-fsync"),
    pytest.param(Fault(op="fsync", nth=3, kind="crash_after",
                       path_part="quarantine.log"),
                 id="crash-after-quarantine-fsync"),
    pytest.param(Fault(op="write", nth=2, kind="torn", keep_bytes=4,
                       path_part="folds.log"), id="torn-fold-append"),
    pytest.param(Fault(op="write", nth=3, kind="crash_after",
                       path_part="folds.log"), id="crash-after-fold-hint"),
]


@pytest.mark.parametrize("fault", FAULT_POINTS)
def test_guarded_crash_recovery_honors_every_ack(fault, tmp_path):
    root = tmp_path / "stack"
    messages = hostile_stream()
    acknowledged_quarantined: "list[int]" = []
    acknowledged_placed: "dict[int, int]" = {}

    crashed = False
    supervisor = None
    try:
        with FaultInjector([fault]):
            supervisor = open_guarded(root)
            for message in messages:
                result = supervisor.ingest(message)
                # The verdict returned: this arrival is now acknowledged
                # and must survive any later crash.
                if result is not None:
                    acknowledged_placed[message.msg_id] = result.bundle_id
                else:
                    assert supervisor.guard is not None
                    acknowledged_quarantined.append(message.msg_id)
            supervisor.close()
    except (SimulatedCrash, OSError):
        crashed = True
    assert crashed, f"fault {fault} never fired — dead test"
    # The driver's view of the unacknowledged tail is discarded, like a
    # coordinator that never got the ACK.  A quarantine verdict is the
    # ack for a quarantined message, so the last recorded id may be the
    # one whose append crashed — drop it only if the log lost it too.

    # -- recover from disk alone.
    recovered = open_guarded(root)
    engine = recovered.indexer
    assert check_engine(engine) == []

    quarantined_on_disk = {m.msg_id for m, _ in
                           QuarantineLog.replay(root / "quarantine.log")}
    for msg_id in acknowledged_quarantined:
        assert msg_id in quarantined_on_disk, \
            f"acknowledged quarantine of {msg_id} was lost"

    placed_ids = {m for bundle in engine.pool
                  for m in bundle.message_ids()}
    for msg_id, bundle_id in acknowledged_placed.items():
        assert msg_id in placed_ids, \
            f"acknowledged message {msg_id} vanished"
        bundle = engine.pool.get(bundle_id)
        assert msg_id in bundle.message_ids(), \
            f"message {msg_id} moved from bundle {bundle_id} on replay"
    recovered.close()


@pytest.mark.parametrize("fault", FAULT_POINTS[:1] + FAULT_POINTS[3:4])
def test_recovery_is_deterministic(fault, tmp_path):
    root = tmp_path / "stack"
    try:
        with FaultInjector([fault]):
            supervisor = open_guarded(root)
            for message in hostile_stream():
                supervisor.ingest(message)
            supervisor.close()
    except (SimulatedCrash, OSError):
        pass

    snapshots = []
    for attempt in range(2):
        copy = tmp_path / f"copy{attempt}"
        shutil.copytree(root, copy)
        recovered = open_guarded(copy)
        out = tmp_path / f"state{attempt}.json"
        save_snapshot(recovered.indexer, out)
        snapshots.append(out.read_bytes())
        recovered.close()
    assert snapshots[0] == snapshots[1]


def test_doctor_repairs_torn_guard_artifacts(tmp_path, capsys):
    root = tmp_path / "stack"
    fault = Fault(op="write", nth=3, kind="torn", keep_bytes=6,
                  path_part="quarantine.log")
    try:
        with FaultInjector([fault]):
            supervisor = open_guarded(root)
            for message in hostile_stream():
                supervisor.ingest(message)
            supervisor.close()
    except (SimulatedCrash, OSError):
        pass

    wal = root / "ingest.wal"
    quarantine = root / "quarantine.log"
    # Scan-only on damage exits 1; --repair exits 0 and a second scan
    # confirms health.
    first = cli.main(["doctor", "--wal", str(wal),
                      "--quarantine", str(quarantine)])
    repaired = cli.main(["doctor", "--wal", str(wal),
                         "--quarantine", str(quarantine), "--repair"])
    assert repaired == 0
    final = cli.main(["doctor", "--wal", str(wal),
                      "--quarantine", str(quarantine)])
    assert final == 0
    assert first in (0, 1)
    out = capsys.readouterr().out
    assert "quarantine" in out
    # The repaired log still replays its intact custody records.
    survivors = list(QuarantineLog.replay(quarantine))
    assert all(reason in ("spam", "clock-skew") for _, reason in survivors)
    # And a guarded stack reopens cleanly on the repaired artifacts.
    recovered = open_guarded(root)
    assert check_engine(recovered.indexer) == []
    recovered.close()
