"""Surge / chaos suite: the overload machinery end to end.

Marked ``chaos``: CI runs these in a dedicated job (``-m chaos``).  The
scenario is the acceptance test of the overload layer: a synthetic
stream arrives at five times the sustainable rate, optionally with an
injected sick disk under the bundle store, and the run must complete
with zero uncaught exceptions, every arrival accounted for, and the
degradation ladder back at NORMAL by the end.

Arrivals follow a deterministic schedule clock (calm warm-up at the
sustainable rate, a 5x burst, then a half-rate cool-down), so every
admission verdict, ladder transition and breaker probe is reproducible.
"""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.reliability.faults import Fault, FaultInjector
from repro.reliability.overload import (HealthState, OverloadConfig,
                                        OverloadController)
from repro.reliability.supervisor import ResilientIndexer
from repro.storage.bundle_store import BundleStore
from repro.storage.wal import JournaledIndexer, MessageJournal
from repro.stream.generator import StreamConfig, StreamGenerator

pytestmark = pytest.mark.chaos

TOTAL = 2400
SUSTAINABLE = 1.0     # messages per scheduled second
SURGE = 5.0
BURST = range(TOTAL // 4, (TOTAL * 7) // 12)


class ScheduleClock:
    """Monotonic clock driven by the arrival schedule."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def surge_messages():
    config = StreamConfig(seed=11, days=TOTAL / 100_000.0,
                          messages_per_day=100_000, user_count=TOTAL // 10,
                          events_per_day=240.0)
    return StreamGenerator(config).generate_list()


def build_stack(tmp_path, clock):
    overload = OverloadController(OverloadConfig(
        rate_limit=SUSTAINABLE, burst=32, max_queue=256,
        latency_target=10.0,        # queue depth is the driving signal
        escalate_after=8, recover_after=64,
        breaker_failures=3, breaker_reset_after=120.0), clock=clock)
    journaled = JournaledIndexer(
        ProvenanceIndexer(IndexerConfig.partial_index(pool_size=100),
                          store=BundleStore(tmp_path / "bundles")),
        MessageJournal(tmp_path / "ingest.wal", sync_every=256),
        snapshot_path=tmp_path / "state.json", snapshot_every=10_000)
    supervisor = ResilientIndexer(journaled, sleep=lambda _: None,
                                  overload=overload)
    return supervisor, overload


def replay(supervisor, clock, batch, offset):
    for index, message in enumerate(batch, start=offset):
        if index in BURST:
            clock.now += 1.0 / (SUSTAINABLE * SURGE)
        else:
            clock.now += 2.0 / SUSTAINABLE
        supervisor.ingest(message, now=clock.now)


def sick_disk_faults(count: int):
    """``count`` consecutive spill-write failures.

    Descending ``nth``: when the fault with the smallest remaining nth
    fires (and raises), the later-firing faults — earlier in the list —
    have already counted the occurrence, so the failures are truly
    consecutive rather than alternating with successes.
    """
    return [Fault(op="write", nth=n, kind="error", path_part="segment-")
            for n in range(count, 0, -1)]


def assert_ladder_round_trip(report, config):
    """NORMAL → degraded → NORMAL, one rung at a time, with hysteresis."""
    transitions = report.transitions
    assert transitions, "the surge never moved the ladder"
    assert transitions[0].previous is HealthState.NORMAL
    # Hysteresis: the first escalation cannot precede the streak length.
    assert transitions[0].observation >= config.escalate_after
    for move in transitions:
        assert abs(int(move.state) - int(move.previous)) == 1
    assert any(move.state > move.previous for move in transitions)
    assert any(move.state < move.previous for move in transitions)
    peak = max(move.state for move in transitions)
    assert peak >= HealthState.SKELETON
    assert report.state is HealthState.NORMAL


class TestSurge:
    def test_surge_degrades_recovers_and_accounts(self, tmp_path):
        clock = ScheduleClock()
        supervisor, overload = build_stack(tmp_path, clock)
        messages = surge_messages()
        with supervisor:
            replay(supervisor, clock, messages, 0)
            supervisor.drain_backlog()
            report = supervisor.health_report()

        assert_ladder_round_trip(report, overload.config)

        # Conservation: every arrival is admitted, deferred-then-released
        # or dropped; nothing vanished.
        stats = report.admission
        assert stats.offered == TOTAL
        assert report.reconciles
        assert report.queue_depth == 0
        assert stats.dropped > 0            # the burst genuinely overloaded
        assert stats.deferred > 0
        assert stats.released == stats.deferred

        # Every admitted message was actually ingested, in some mode.
        assert sum(overload.mode_ingests.values()) == supervisor.stats.ingested
        assert supervisor.stats.ingested == stats.admitted + stats.released
        assert overload.mode_ingests[HealthState.SKELETON] > 0
        assert supervisor.indexer.stats.skeleton_ingests > 0

    def test_sick_disk_parks_then_recovers(self, tmp_path):
        clock = ScheduleClock()
        supervisor, overload = build_stack(tmp_path, clock)
        messages = surge_messages()
        chaos_until = (TOTAL * 3) // 4
        with supervisor:
            with FaultInjector(sick_disk_faults(400)):
                replay(supervisor, clock, messages[:chaos_until], 0)
                mid = supervisor.health_report()
                # Memory-only operation while the disk is sick: the
                # breaker is not closed and evictions are parked, yet
                # ingest continued the whole time.
                assert overload.breaker.opens >= 1
                assert mid.parked > 0
            replay(supervisor, clock, messages[chaos_until:], chaos_until)
            supervisor.drain_backlog()
            assert overload.guarded is not None
            overload.guarded.flush()
            report = supervisor.health_report()

        # Recovery: the parked backlog reached the store, spilling
        # resumed, and the breaker closed again.
        assert report.parked == 0
        assert report.flushed > 0
        assert report.spilled > 0
        assert report.breaker_state == "closed"

        # The overload story still holds under chaos.
        assert_ladder_round_trip(report, overload.config)
        assert report.reconciles
        assert report.admission.offered == TOTAL
        assert sum(overload.mode_ingests.values()) == supervisor.stats.ingested

        # Nothing was lost to the sick disk: every spilled bundle is
        # readable back from the store.
        store = overload.guarded.sink
        assert store.append_count == report.spilled
        for bundle_id in store.bundle_ids():
            assert store.load(bundle_id).bundle_id == bundle_id

    def test_shed_only_still_drains_backlog(self, tmp_path):
        clock = ScheduleClock()
        supervisor, overload = build_stack(tmp_path, clock)
        messages = surge_messages()[:400]
        # Relentless arrivals (no cool-down): the ladder should hit
        # SHED_ONLY and stay there, yet the queue keeps draining at the
        # token rate and end-of-stream drain indexes the backlog.
        with supervisor:
            for message in messages:
                clock.now += 1.0 / (SUSTAINABLE * SURGE)
                supervisor.ingest(message, now=clock.now)
            assert overload.state is HealthState.SHED_ONLY
            report_before = supervisor.health_report()
            assert report_before.admission.dropped_shed_only > 0
            assert report_before.admission.released > 0
            drained = supervisor.drain_backlog()
            report = supervisor.health_report()
        assert drained > 0
        assert report.queue_depth == 0
        assert report.reconciles
