"""Tests for the resilient ingestion supervisor."""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.errors import RetryExhaustedError
from repro.reliability.faults import Fault, FaultInjector
from repro.reliability.supervisor import DeadLetterQueue, ResilientIndexer
from repro.storage.bundle_store import BundleStore
from repro.storage.wal import JournaledIndexer, MessageJournal
from tests.conftest import make_message


def stream(count: int = 30):
    return [make_message(i, f"#topic{i % 6} message body {i}",
                         user=f"u{i % 5}", hours=i * 0.1)
            for i in range(count)]


def build(tmp_path, **kwargs) -> ResilientIndexer:
    journaled = JournaledIndexer(
        ProvenanceIndexer(IndexerConfig.partial_index(pool_size=15)),
        MessageJournal(tmp_path / "ingest.wal", sync_every=1),
        snapshot_path=tmp_path / "state.json", snapshot_every=10_000)
    kwargs.setdefault("sleep", lambda _: None)
    return ResilientIndexer(journaled, **kwargs)


class TestRetry:
    def test_transient_write_failure_is_retried(self, tmp_path):
        slept = []
        with FaultInjector([Fault(op="write", nth=4, kind="error",
                                  path_part=".wal")]):
            supervisor = build(tmp_path, sleep=slept.append)
            for message in stream(10):
                assert supervisor.ingest(message) is not None
        assert supervisor.stats.retries == 1
        assert supervisor.stats.ingested == 10
        assert supervisor.indexer.stats.messages_ingested == 10
        assert slept == [supervisor.backoff_base]

    def test_backoff_grows_exponentially(self, tmp_path):
        slept = []
        faults = [Fault(op="write", nth=n, kind="error", path_part=".wal")
                  for n in (3, 4, 5)]  # three consecutive failures
        with FaultInjector(faults):
            supervisor = build(tmp_path, sleep=slept.append,
                               backoff_base=0.1, backoff_factor=2.0)
            for message in stream(5):
                supervisor.ingest(message)
        assert slept == [0.1, 0.2, 0.4]
        assert supervisor.stats.backoff_seconds == pytest.approx(0.7)

    def test_retry_budget_exhausts(self, tmp_path):
        faults = [Fault(op="write", nth=n, kind="error", path_part=".wal")
                  for n in range(1, 10)]
        with FaultInjector(faults):
            supervisor = build(tmp_path, max_retries=2)
            with pytest.raises(RetryExhaustedError):
                supervisor.ingest(stream(1)[0])
        assert supervisor.stats.retries == 2

    def test_failed_checkpoint_is_deferred_not_doubled(self, tmp_path):
        journaled = JournaledIndexer(
            ProvenanceIndexer(IndexerConfig.partial_index(pool_size=15)),
            MessageJournal(tmp_path / "ingest.wal", sync_every=1),
            snapshot_path=tmp_path / "state.json", snapshot_every=5)
        with FaultInjector([Fault(op="replace", nth=1, kind="error",
                                  path_part="state.json")]):
            supervisor = ResilientIndexer(journaled, sleep=lambda _: None)
            for message in stream(12):
                assert supervisor.ingest(message) is not None
        assert supervisor.stats.deferred_checkpoints == 1
        # no double-apply: every message indexed exactly once
        assert supervisor.indexer.stats.messages_ingested == 12
        # the next threshold crossing retried the checkpoint successfully
        assert (tmp_path / "state.json").exists()


class TestDeadLetters:
    def test_malformed_records_are_quarantined(self, tmp_path):
        supervisor = build(tmp_path)
        records = list(stream(10))
        records.insert(3, (1000, "", 3600.0, "empty user"))
        records.insert(7, (1001, "bob", "not-a-date", "bad date"))
        records.insert(9, ("huh", {}, None))  # not even a 4-tuple
        indexed = supervisor.ingest_stream(records)
        assert indexed == 10
        assert supervisor.stats.dead_lettered == 3
        reasons = [letter.reason for letter in supervisor.dead_letters]
        assert reasons == ["parse-failed", "parse-failed",
                           "unrecognized-record"]
        assert all(letter.error for letter in supervisor.dead_letters)

    def test_negative_ids_and_dates_are_poison(self, tmp_path):
        supervisor = build(tmp_path)
        assert supervisor.ingest_raw(-1, "alice", 0.0, "negative id") is None
        assert supervisor.ingest_raw(1, "alice", -5.0, "negative date") is None
        assert len(supervisor.dead_letters) == 2

    def test_dead_letter_queue_persists_and_drains(self, tmp_path):
        dlq_path = tmp_path / "dead.jsonl"
        supervisor = build(tmp_path, dead_letters=dlq_path)
        supervisor.ingest_raw(5, "", 0.0, "poison")
        assert dlq_path.exists()
        reloaded = DeadLetterQueue(dlq_path)
        assert len(reloaded) == 1
        assert reloaded.entries()[0].reason == "parse-failed"
        drained = reloaded.drain()
        assert len(drained) == 1
        assert len(reloaded) == 0
        assert DeadLetterQueue(dlq_path).entries() == []

    def test_poison_does_not_stop_the_stream(self, tmp_path):
        supervisor = build(tmp_path)
        records = []
        for index, message in enumerate(stream(20)):
            records.append(message)
            if index % 4 == 0:
                records.append((index + 500, "", "nan", "junk"))
        indexed = supervisor.ingest_stream(records)
        assert indexed == 20
        assert supervisor.stats.dead_lettered == 5
        assert supervisor.indexer.stats.messages_ingested == 20


class TestDegradedMode:
    def test_shedding_brings_memory_under_low_watermark(self, tmp_path):
        store = BundleStore(tmp_path / "store")
        journaled = JournaledIndexer(
            ProvenanceIndexer(IndexerConfig.full_index(), store=store),
            MessageJournal(tmp_path / "ingest.wal", sync_every=64))
        supervisor = ResilientIndexer(
            journaled, sleep=lambda _: None,
            high_watermark_bytes=30_000, low_watermark_bytes=15_000)
        for message in stream(120):
            supervisor.ingest(message)
        pool = supervisor.indexer.pool
        assert supervisor.stats.degraded_entries > 0
        assert supervisor.stats.shed_bundles > 0
        assert supervisor.stats.shed_bytes > 0
        assert pool.approximate_memory_bytes() <= 30_000
        # shed bundles were spilled to the store, not dropped
        assert store.append_count >= supervisor.stats.shed_bundles

    def test_shed_bundles_are_closed_and_stored(self, tmp_path):
        store = BundleStore(tmp_path / "store")
        journaled = JournaledIndexer(
            ProvenanceIndexer(IndexerConfig.full_index(), store=store),
            MessageJournal(tmp_path / "ingest.wal", sync_every=64))
        supervisor = ResilientIndexer(
            journaled, sleep=lambda _: None, high_watermark_bytes=20_000)
        for message in stream(100):
            supervisor.ingest(message)
        assert supervisor.stats.shed_bundles > 0
        assert store.append_count >= supervisor.stats.shed_bundles
        for bundle in store.iter_bundles():
            assert bundle.closed

    def test_low_watermark_defaults_to_half(self, tmp_path):
        supervisor = build(tmp_path, high_watermark_bytes=1000)
        assert supervisor.low_watermark_bytes == 500

    def test_inverted_watermarks_rejected(self, tmp_path):
        from repro.core.errors import StorageError

        with pytest.raises(StorageError):
            build(tmp_path, high_watermark_bytes=100,
                  low_watermark_bytes=200)

    def test_no_watermark_means_no_shedding(self, tmp_path):
        supervisor = build(tmp_path)
        for message in stream(50):
            supervisor.ingest(message)
        assert supervisor.stats.degraded_entries == 0
        assert supervisor.stats.shed_bundles == 0


class TestMixedPoisonStream:
    """One stream carrying every poison species the crawl produces."""

    def records(self):
        good = stream(12)
        records: list = []
        for index, message in enumerate(good):
            records.append(message)
            if index == 2:   # malformed date
                records.append((900, "carol", "yesterday", "bad date"))
            if index == 5:   # non-UTF-8 bytes from a broken crawler
                records.append((901, "dave", 7200.0, b"caf\xe9 \xff\xfe"))
            if index == 8:   # duplicate msg_id, same thread
                records.append(good[0])
        return records

    def test_each_species_lands_with_its_reason(self, tmp_path):
        supervisor = build(tmp_path)
        indexed = supervisor.ingest_stream(self.records())
        assert indexed == 12
        assert supervisor.stats.dead_lettered == 3
        reasons = [letter.reason for letter in supervisor.dead_letters]
        assert reasons == ["parse-failed", "parse-failed", "index-rejected"]
        # The non-UTF-8 record dead-lettered as bytes, not as mojibake.
        assert "caf" in supervisor.dead_letters.entries()[1].payload

    def test_accounting_reconciles(self, tmp_path):
        supervisor = build(tmp_path)
        records = self.records()
        indexed = supervisor.ingest_stream(records)
        assert indexed + supervisor.stats.dead_lettered == len(records)
        assert supervisor.indexer.stats.messages_ingested == indexed

    def test_poison_storm_under_load_regulation(self, tmp_path):
        from repro.reliability.overload import OverloadConfig

        supervisor = build(tmp_path,
                           overload=OverloadConfig(rate_limit=None))
        indexed = supervisor.ingest_stream(self.records())
        assert indexed == 12
        assert supervisor.stats.dead_lettered == 3
        report = supervisor.health_report()
        assert report is not None
        assert report.reconciles
        # Raw tuples are parsed (and possibly quarantined) before
        # admission, so only the 12 good messages plus the duplicate
        # were offered; the admitted-then-rejected duplicate counts as
        # load but not as a per-mode ingest.
        assert report.admission.admitted == 13
        assert sum(report.mode_ingests.values()) == 12


class TestDrainCrashSafety:
    """DLQ drain is all-or-nothing on disk (write-then-rename)."""

    def populated(self, tmp_path):
        path = tmp_path / "dead.jsonl"
        queue = DeadLetterQueue(path)
        for i in range(3):
            queue.append("parse-failed", f"boom {i}", ("raw", i))
        return path, queue

    def test_crash_before_rename_keeps_every_letter(self, tmp_path):
        from repro.reliability.faults import SimulatedCrash

        path, queue = self.populated(tmp_path)
        with FaultInjector([Fault(op="replace", nth=1, kind="crash_before",
                                  path_part="dead.jsonl")]):
            with pytest.raises(SimulatedCrash):
                queue.drain()
        # Nothing was drained: disk and a post-reboot reload agree.
        reloaded = DeadLetterQueue(path)
        assert len(reloaded) == 3
        assert [letter.error for letter in reloaded] == [
            "boom 0", "boom 1", "boom 2"]

    def test_crash_after_rename_shows_a_complete_drain(self, tmp_path):
        from repro.reliability.faults import SimulatedCrash

        path, queue = self.populated(tmp_path)
        with FaultInjector([Fault(op="replace", nth=1, kind="crash_after",
                                  path_part="dead.jsonl")]):
            with pytest.raises(SimulatedCrash):
                queue.drain()
        assert DeadLetterQueue(path).entries() == []

    def test_clean_drain_returns_and_clears(self, tmp_path):
        path, queue = self.populated(tmp_path)
        drained = queue.drain()
        assert [letter.error for letter in drained] == [
            "boom 0", "boom 1", "boom 2"]
        assert len(queue) == 0
        assert DeadLetterQueue(path).entries() == []


class TestRecoverSkipsPoison:
    def test_journaled_poison_does_not_abort_replay(self, tmp_path):
        # WAL ordering journals the record *before* the engine rejects
        # it, so a duplicate sits in the journal.  Recovery must skip
        # it, not die on its own log.
        supervisor = build(tmp_path)
        messages = stream(6)
        for message in messages:
            supervisor.ingest(message)
        assert supervisor.ingest(messages[0]) is None   # dead-lettered
        assert supervisor.stats.dead_lettered == 1
        supervisor.journaled.journal.close()

        recovered = JournaledIndexer.recover(
            None, tmp_path / "ingest.wal",
            config=IndexerConfig.partial_index(pool_size=15))
        assert recovered.indexer.stats.messages_ingested == 6


class TestLifecycle:
    def test_context_manager_checkpoints_on_clean_exit(self, tmp_path):
        with build(tmp_path) as supervisor:
            for message in stream(8):
                supervisor.ingest(message)
        assert (tmp_path / "state.json").exists()
        recovered = JournaledIndexer.recover(
            tmp_path / "state.json", tmp_path / "ingest.wal")
        assert recovered.indexer.stats.messages_ingested == 8

    def test_close_is_idempotent(self, tmp_path):
        supervisor = build(tmp_path)
        supervisor.ingest(stream(1)[0])
        supervisor.close()
        supervisor.close()
