"""Tests for the adversarial ingest guard (verdicts, reordering, logs).

The guard's contract has four load-bearing clauses exercised here:

* every arrival gets exactly one verdict and the stats reconcile;
* quarantine is custody, not drop — the log replays every quarantined
  message byte-for-byte, and the fsync happens before the verdict
  returns;
* the reorder buffer re-emits within-window arrivals in date order and
  routes older ones through the deterministic late-path;
* fold decisions are journaled so WAL replay reproduces live placement.
"""

from __future__ import annotations

import pytest

from repro.core.message import parse_message
from repro.reliability.guard import (FoldLog, GuardAction, GuardConfig,
                                     IngestGuard, QuarantineLog, Screened)
from repro.reliability.supervisor import ResilientIndexer
from tests.conftest import make_message

BASE = make_message(0, "base").date


def msg(msg_id: int, text: str, *, user: str = "alice",
        hours: float = 0.0, **kw):
    return make_message(msg_id, text, user=user, hours=hours, **kw)


def actions(entries: "list[Screened]") -> "list[GuardAction]":
    return [entry.action for entry in entries]


class TestVerdicts:
    def test_clean_in_order_traffic_passes(self):
        guard = IngestGuard()
        for i in range(5):
            entries = guard.admit(
                msg(i, f"completely distinct body number {i} about "
                       f"topic{i}", hours=i))
            assert actions(entries) == [GuardAction.PASS]
        assert guard.stats.passed == 5
        assert guard.stats.reconciles(guard.buffer_depth)

    def test_undeclared_near_dup_folds_into_known_bundle(self):
        guard = IngestGuard()
        original = msg(1, "breaking earthquake hits the coastal city "
                          "tonight residents evacuate quickly")
        [first] = guard.admit(original)
        assert first.action is GuardAction.PASS
        guard.note_result(original, bundle_id=7)
        copy = msg(2, "breaking earthquake hits the coastal city "
                      "tonight residents evacuate quickly now",
                   user="bob", hours=0.1)
        [verdict] = guard.admit(copy)
        assert verdict.action is GuardAction.FOLD
        assert verdict.bundle_id == 7
        assert guard.stats.folded == 1

    def test_near_dup_without_known_bundle_passes(self):
        # The original was never placed (e.g. shed): nothing to fold
        # into, so the copy takes the normal path.
        guard = IngestGuard()
        guard.admit(msg(1, "breaking earthquake hits the coastal city "
                           "tonight residents evacuate quickly"))
        [verdict] = guard.admit(
            msg(2, "breaking earthquake hits the coastal city tonight "
                   "residents evacuate quickly now", user="bob",
                hours=0.1))
        assert verdict.action is GuardAction.PASS

    def test_spam_flood_is_quarantined(self):
        cfg = GuardConfig(spam_min_messages=4.0, spam_prior=1.0)
        guard = IngestGuard(cfg)
        seed = msg(0, "win a free prize click this amazing link now")
        guard.admit(seed)
        guard.note_result(seed, bundle_id=1)
        verdicts = []
        for i in range(1, 12):
            [entry] = guard.admit(
                msg(i, "win a free prize click this amazing link now "
                       "friend", user="spammer", hours=i * 0.01))
            verdicts.append(entry.action)
        assert GuardAction.QUARANTINE in verdicts
        # Once judged, the spammer stays quarantined.
        assert verdicts[-1] is GuardAction.QUARANTINE
        [entry] = guard.admit(
            msg(99, "win a free prize click this amazing link now pal",
                user="spammer", hours=1.0))
        assert entry.action is GuardAction.QUARANTINE
        assert entry.reason == "spam"

    def test_declared_retweets_never_count_as_spam(self):
        cfg = GuardConfig(spam_min_messages=4.0, spam_prior=1.0)
        guard = IngestGuard(cfg)
        origin = msg(0, "major storm warning issued for the northern "
                        "valley region this evening")
        guard.admit(origin)
        guard.note_result(origin, bundle_id=3)
        for i in range(1, 12):
            [entry] = guard.admit(
                msg(i, "RT @alice: major storm warning issued for the "
                       "northern valley region this evening",
                    user="fan", hours=i * 0.01))
            # A declared reshare may fold (it *is* a near-copy) but must
            # never be quarantined as spam.
            assert entry.action in (GuardAction.FOLD, GuardAction.PASS)
        assert guard.tracker.spam_score("fan") <= 0.5

    def test_future_clock_bomb_is_quarantined_without_advancing(self):
        guard = IngestGuard()
        guard.admit(msg(1, "ordinary first message about the weather"))
        watermark_before = guard.watermark
        [entry] = guard.admit(
            msg(2, "message from the far future", hours=1000.0))
        assert entry.action is GuardAction.QUARANTINE
        assert entry.reason == "clock-skew"
        assert guard.watermark == watermark_before

    def test_stats_reconcile_across_mixed_traffic(self):
        guard = IngestGuard(GuardConfig(reorder_window=3600.0))
        texts = ["alpha beta gamma delta story {}",
                 "completely different tale number {}"]
        order = [0, 3, 1, 2, 6, 4, 5, 9, 7, 8]
        for i in order:
            guard.admit(msg(i, texts[i % 2].format(i), hours=i))
        guard.flush()
        assert guard.stats.reconciles(guard.buffer_depth)


class TestReorderBuffer:
    def test_within_window_arrivals_released_in_date_order(self):
        guard = IngestGuard(GuardConfig(reorder_window=7200.0))
        released = []

        def admit(i, hours):
            for entry in guard.admit(
                    msg(i, f"unique story number {i} entirely",
                        hours=hours)):
                if entry.action is not GuardAction.BUFFERED:
                    released.append(entry.message.msg_id)

        admit(1, 0.0)    # in order
        admit(2, 3.0)    # in order, advances clock
        admit(3, 2.0)    # out of order, within window: buffered
        admit(4, 1.5)    # same
        admit(5, 6.0)    # advances watermark past 1.5 and 2.0 → release
        for entry in guard.flush():
            released.append(entry.message.msg_id)
        assert released == [1, 2, 4, 3, 5]
        assert guard.stats.buffered == 2
        assert guard.stats.released == 2

    def test_too_old_arrival_takes_late_path(self):
        guard = IngestGuard(GuardConfig(reorder_window=60.0))
        guard.admit(msg(1, "first ordinary message", hours=10.0))
        [entry] = guard.admit(
            msg(2, "very old message arriving now", hours=0.0))
        assert entry.action is GuardAction.LATE
        assert guard.stats.late == 1

    def test_buffer_overflow_evicts_oldest_first(self):
        guard = IngestGuard(GuardConfig(reorder_window=7200.0,
                                        reorder_capacity=2))
        guard.admit(msg(1, "one of a kind story", hours=3.0))
        guard.admit(msg(2, "second singular story", hours=1.0))
        guard.admit(msg(3, "third unique story", hours=2.0))
        entries = guard.admit(msg(4, "fourth original story", hours=2.5))
        # Capacity 2: admitting the third out-of-order message forces
        # the oldest buffered one (msg 2 at hour 1.0) out early.
        forced = [e for e in entries
                  if e.action is not GuardAction.BUFFERED]
        assert [e.message.msg_id for e in forced] == [2]


class TestQuarantineCustody:
    def test_quarantine_log_replays_every_message(self, tmp_path):
        path = tmp_path / "quarantine.log"
        guard = IngestGuard(GuardConfig(spam_min_messages=2.0,
                                        spam_prior=0.5),
                            quarantine_path=path)
        quarantined = []
        for i in range(10):
            for entry in guard.admit(
                    msg(i, "identical spam payload wins big money now",
                        user="spammer", hours=i * 0.01)):
                if entry.action is GuardAction.QUARANTINE:
                    quarantined.append(entry.message)
        guard.close()
        assert quarantined, "the flood must trip the spam screen"
        replayed = list(QuarantineLog.replay(path))
        assert [m.msg_id for m, _ in replayed] == \
            [m.msg_id for m in quarantined]
        for (restored, reason), original in zip(replayed, quarantined):
            assert restored.text == original.text
            assert restored.user == original.user
            assert restored.date == original.date
            assert reason == "spam"

    def test_quarantine_survives_reopen(self, tmp_path):
        path = tmp_path / "quarantine.log"
        first = IngestGuard(quarantine_path=path)
        first.admit(msg(1, "anchor message setting the clock"))
        first.admit(msg(2, "from the distant future", hours=999.0))
        first.close()
        second = IngestGuard(quarantine_path=path)
        second.admit(msg(3, "another anchor message", hours=1.0))
        second.admit(msg(4, "also far future", hours=999.0))
        second.close()
        assert [m.msg_id for m, _ in QuarantineLog.replay(path)] == [2, 4]

    def test_replay_skips_torn_tail(self, tmp_path):
        path = tmp_path / "quarantine.log"
        guard = IngestGuard(quarantine_path=path)
        guard.admit(msg(1, "anchor message setting the clock"))
        guard.admit(msg(2, "from the distant future", hours=999.0))
        guard.close()
        with path.open("ab") as handle:
            handle.write(b"deadbeef torn")
        assert [m.msg_id for m, _ in QuarantineLog.replay(path)] == [2]


class TestFoldLog:
    def test_later_entries_win(self, tmp_path):
        path = tmp_path / "folds.log"
        log = FoldLog(path)
        log.append(5, 1, 50)
        log.append(6, 2, 60)
        log.append(5, 3, 51)
        log.close()
        assert FoldLog.load(path) == {5: (3, 51), 6: (2, 60)}

    def test_load_skips_damage(self, tmp_path):
        path = tmp_path / "folds.log"
        log = FoldLog(path)
        log.append(5, 1, 50)
        log.close()
        with path.open("ab") as handle:
            handle.write(b"garbage line\n")
            handle.write(b"00000000 7\t9\t8\n")  # bad CRC
        assert FoldLog.load(path) == {5: (1, 50)}

    def test_missing_file_loads_empty(self, tmp_path):
        assert FoldLog.load(tmp_path / "absent.log") == {}


class TestTightening:
    def test_reduced_mode_swaps_thresholds(self):
        cfg = GuardConfig(dedup_threshold=0.9,
                          tightened_dedup_threshold=0.5)
        guard = IngestGuard(cfg)
        assert guard.detector.threshold == 0.9
        guard.set_tightened(True)
        assert guard.detector.threshold == 0.5
        guard.set_tightened(False)
        assert guard.detector.threshold == 0.9

    def test_tightened_config_must_not_loosen(self):
        with pytest.raises(ValueError):
            GuardConfig(dedup_threshold=0.5,
                        tightened_dedup_threshold=0.8)
        with pytest.raises(ValueError):
            GuardConfig(spam_threshold=0.4,
                        tightened_spam_threshold=0.6)


class TestSupervisorIntegration:
    def test_guarded_supervisor_counts_and_audits(self, tmp_path):
        supervisor = ResilientIndexer.open(tmp_path, guard=True)
        with supervisor:
            base = msg(0, "anchor message setting the stream clock")
            supervisor.ingest(base)
            supervisor.ingest(msg(1, "from the impossible future",
                                  hours=999.0))
            for i in range(2, 6):
                supervisor.ingest(
                    msg(i, f"organic update number {i} about topic{i}",
                        hours=0.1 * i))
        registry = supervisor.indexer.obs.registry
        assert registry.value("repro_guard_screened_total") == 6
        assert registry.value("repro_guard_quarantined_total") == 1
        assert (tmp_path / "quarantine.log").exists()
        assert [m.msg_id for m, _ in QuarantineLog.replay(
            tmp_path / "quarantine.log")] == [1]

    def test_fold_hints_steer_recovery(self, tmp_path):
        original = msg(1, "breaking earthquake hits the coastal city "
                          "tonight residents evacuate quickly")
        copy = msg(2, "breaking earthquake hits the coastal city "
                      "tonight residents evacuate quickly now",
                   user="bob", hours=0.1)
        with ResilientIndexer.open(tmp_path, guard=True) as supervisor:
            supervisor.ingest(original)
            supervisor.ingest(copy)
            assert supervisor.guard is not None
            assert supervisor.guard.stats.folded == 1
            live = {b.bundle_id: sorted(b.message_ids())
                    for b in supervisor.indexer.pool}
        # Crash-less close; now recover purely from disk: the fold log
        # must route msg 2 into the same bundle as the live run.
        with ResilientIndexer.open(tmp_path, guard=True) as recovered:
            state = {b.bundle_id: sorted(b.message_ids())
                     for b in recovered.indexer.pool}
        assert state == live
