"""Tests for the ``repro doctor`` scanner and its repair actions."""

from __future__ import annotations

import pytest

from repro import cli
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.reliability.doctor import (quarantine_snapshot, repair_store,
                                      repair_wal, scan_snapshot, scan_store,
                                      scan_wal)
from repro.storage.bundle_store import BundleStore
from repro.storage.snapshot import save_snapshot
from repro.storage.wal import JournaledIndexer, MessageJournal
from tests.conftest import make_message


def stream(count: int = 20):
    return [make_message(i, f"#topic{i % 4} doctor body {i}",
                         user=f"u{i % 3}", hours=i * 0.2)
            for i in range(count)]


def write_wal(path, count: int = 20) -> None:
    with MessageJournal(path, sync_every=64) as journal:
        for message in stream(count):
            journal.append(message)


def corrupt_line(path, line_number: int, *, replacement: bytes) -> None:
    """Replace one 1-based line of a text file with arbitrary bytes."""
    lines = path.read_bytes().split(b"\n")
    lines[line_number - 1] = replacement
    path.write_bytes(b"\n".join(lines))


class TestWalScan:
    def test_clean_journal_is_healthy(self, tmp_path):
        wal = tmp_path / "ingest.wal"
        write_wal(wal)
        report = scan_wal(wal)
        assert report.healthy
        assert report.valid_records == 20
        assert report.corrupt_lines == []
        assert not report.torn_tail
        assert "ok" in report.describe()

    def test_missing_journal_reported(self, tmp_path):
        report = scan_wal(tmp_path / "absent.wal")
        assert not report.exists
        assert report.healthy
        assert "missing" in report.describe()

    def test_hand_corrupted_record_is_detected(self, tmp_path):
        wal = tmp_path / "ingest.wal"
        write_wal(wal)
        corrupt_line(wal, 7, replacement=b"deadbeef garbage payload")
        report = scan_wal(wal)
        assert not report.healthy
        assert report.corrupt_lines == [7]
        assert report.valid_records == 19
        assert not report.torn_tail  # interior damage, not a torn tail

    def test_torn_tail_is_flagged(self, tmp_path):
        wal = tmp_path / "ingest.wal"
        write_wal(wal)
        with wal.open("ab") as handle:
            handle.write(b"0123abcd 5\t99\tu")  # no newline: torn append
        report = scan_wal(wal)
        assert report.torn_tail
        assert report.corrupt_lines == [21]
        assert "torn tail" in report.describe()

    def test_legacy_journal_counted_and_replayable(self, tmp_path):
        """Pre-CRC (v0) journals must still scan healthy and replay."""
        wal = tmp_path / "legacy.wal"
        lines = []
        for index, message in enumerate(stream(5)):
            lines.append(f"{index}\t{message.msg_id}\t{message.user}\t"
                         f"{message.date!r}\t\t\t{message.text}")
        wal.write_text("\n".join(lines) + "\n", encoding="utf-8")
        report = scan_wal(wal)
        assert report.healthy
        assert report.valid_records == 5
        assert report.legacy_records == 5
        replayed = list(MessageJournal.replay_entries(wal))
        assert [seq for seq, _ in replayed] == [0, 1, 2, 3, 4]
        assert replayed[2][1].text == stream(5)[2].text


class TestWalRepair:
    def test_repair_truncates_to_valid_records(self, tmp_path):
        wal = tmp_path / "ingest.wal"
        write_wal(wal)
        corrupt_line(wal, 5, replacement=b"not a record at all")
        result = repair_wal(wal)
        assert result.kept_records == 19
        assert result.dropped_lines == 1
        assert result.bytes_after < result.bytes_before
        assert scan_wal(wal).healthy
        # the repaired journal replays without skips
        assert len(list(MessageJournal.replay_entries(wal))) == 19

    def test_repaired_state_is_loadable_end_to_end(self, tmp_path):
        wal = tmp_path / "ingest.wal"
        snapshot = tmp_path / "state.json"
        journaled = JournaledIndexer(
            ProvenanceIndexer(IndexerConfig.partial_index(pool_size=10)),
            MessageJournal(wal, sync_every=1),
            snapshot_path=snapshot, snapshot_every=8)
        for message in stream(20):
            journaled.ingest(message)
        journaled.journal.close()  # simulate a crash: no final checkpoint

        # vandalize both surviving artifacts
        corrupt_line(wal, 2, replacement=b"ffffffff 9\tjunk")
        snapshot.write_text("{ not json", encoding="utf-8")

        assert not scan_wal(wal).healthy
        assert not scan_snapshot(snapshot).healthy
        repair_wal(wal)
        quarantine_snapshot(snapshot)

        recovered = JournaledIndexer.recover(
            snapshot, wal,
            config=IndexerConfig.partial_index(pool_size=10))
        # snapshot quarantined + one WAL record dropped: of the 4
        # post-checkpoint journal records, 3 survive the vandalism…
        assert recovered.indexer.stats.messages_ingested == 3
        # …and the quarantined artifacts sit beside the originals.
        assert (tmp_path / "state.json.corrupt").exists()


class TestSnapshotScan:
    def test_good_snapshot_reports_metadata(self, tmp_path):
        engine = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=10))
        for message in stream(12):
            engine.ingest(message)
        snapshot = tmp_path / "state.json"
        save_snapshot(engine, snapshot, applied_seq=11)
        report = scan_snapshot(snapshot)
        assert report.healthy and report.ok
        assert report.bundles == len(engine.pool)
        assert report.applied_seq == 11

    def test_corrupt_snapshot_detected(self, tmp_path):
        snapshot = tmp_path / "state.json"
        snapshot.write_text('{"truncated": ', encoding="utf-8")
        report = scan_snapshot(snapshot)
        assert report.exists and not report.healthy
        assert "unloadable" in report.describe()


class TestStoreScanAndRepair:
    def build_store(self, tmp_path) -> BundleStore:
        store = BundleStore(tmp_path / "store")
        engine = ProvenanceIndexer(
            IndexerConfig.partial_index(pool_size=3), store=store)
        for message in stream(30):
            engine.ingest(message)
        return store

    def test_clean_store_is_healthy(self, tmp_path):
        store = self.build_store(tmp_path)
        report = scan_store(store.directory)
        assert report.healthy
        assert report.valid_records == store.append_count

    def test_corrupt_segment_detected_and_repaired(self, tmp_path):
        store = self.build_store(tmp_path)
        segment = sorted(store.directory.glob("segment-*.log"))[0]
        corrupt_line(segment, 1, replacement=b"00000000 {\"zapped\": true}")
        report = scan_store(store.directory)
        assert not report.healthy
        assert report.corrupt_records == 1
        results = repair_store(store.directory)
        assert len(results) == 1
        assert results[0].dropped_lines == 1
        after = scan_store(store.directory)
        assert after.healthy
        assert after.valid_records == store.append_count - 1
        # the repaired store opens strict (no tolerance needed)
        reopened = BundleStore(store.directory)
        assert reopened.append_count == store.append_count - 1


class TestDoctorCli:
    def test_no_targets_is_usage_error(self, capsys):
        assert cli.main(["doctor"]) == 2

    def test_healthy_artifacts_exit_zero(self, tmp_path, capsys):
        wal = tmp_path / "ingest.wal"
        write_wal(wal)
        assert cli.main(["doctor", "--wal", str(wal)]) == 0
        out = capsys.readouterr().out
        assert "repro doctor" in out
        assert "all artifacts healthy" in out

    def test_damage_exits_one_without_repair(self, tmp_path, capsys):
        wal = tmp_path / "ingest.wal"
        write_wal(wal)
        corrupt_line(wal, 3, replacement=b"xxxx")
        assert cli.main(["doctor", "--wal", str(wal)]) == 1
        assert "recoverable" in capsys.readouterr().out

    def test_repair_flag_fixes_and_exits_zero(self, tmp_path, capsys):
        wal = tmp_path / "ingest.wal"
        write_wal(wal)
        corrupt_line(wal, 3, replacement=b"xxxx")
        snapshot = tmp_path / "state.json"
        snapshot.write_text("garbage", encoding="utf-8")
        assert cli.main(["doctor", "--wal", str(wal),
                         "--snapshot", str(snapshot), "--repair"]) == 0
        assert scan_wal(wal).healthy
        assert not snapshot.exists()  # quarantined aside
        assert snapshot.with_suffix(".json.corrupt").exists()


class TestDoctorExitCodeMatrix:
    """The documented exit-code contract (docs/operations.md).

    0 — every scanned artifact healthy (or absent), or repair fixed all
    1 — damage found and ``--repair`` not given
    2 — usage error: no artifact to scan
    """

    def damaged_wal(self, tmp_path):
        wal = tmp_path / "ingest.wal"
        write_wal(wal)
        corrupt_line(wal, 3, replacement=b"xxxx")
        return wal

    def damaged_store(self, tmp_path):
        store = BundleStore(tmp_path / "store")
        indexer = ProvenanceIndexer(IndexerConfig.full_index(), store=store)
        for message in stream(12):
            indexer.ingest(message)
        for bundle in list(indexer.pool):
            store.append(bundle)
        segment = sorted(store.directory.glob("segment-*.log"))[0]
        corrupt_line(segment, 1, replacement=b"deadbeef broken")
        return store.directory

    def test_exit_0_all_healthy(self, tmp_path, capsys):
        wal = tmp_path / "ingest.wal"
        write_wal(wal)
        assert cli.main(["doctor", "--wal", str(wal)]) == 0

    def test_exit_0_missing_artifacts_are_not_issues(self, tmp_path, capsys):
        # Absent files are reported but carry no damage to fix.
        assert cli.main(["doctor",
                         "--wal", str(tmp_path / "nope.wal"),
                         "--snapshot", str(tmp_path / "nope.json"),
                         "--store", str(tmp_path / "nope")]) == 0
        assert "missing" in capsys.readouterr().out

    def test_exit_1_any_damaged_artifact_without_repair(self, tmp_path,
                                                        capsys):
        wal = tmp_path / "ingest.wal"
        write_wal(wal)  # healthy
        store_dir = self.damaged_store(tmp_path)
        assert cli.main(["doctor", "--wal", str(wal),
                         "--store", str(store_dir)]) == 1
        assert "--repair" in capsys.readouterr().out

    def test_exit_0_after_repair(self, tmp_path, capsys):
        wal = self.damaged_wal(tmp_path)
        store_dir = self.damaged_store(tmp_path)
        assert cli.main(["doctor", "--wal", str(wal),
                         "--store", str(store_dir), "--repair"]) == 0
        # Idempotence: a second scan of the repaired artifacts is clean.
        assert cli.main(["doctor", "--wal", str(wal),
                         "--store", str(store_dir)]) == 0

    def test_exit_2_usage_error(self, capsys):
        assert cli.main(["doctor"]) == 2
        assert "at least one" in capsys.readouterr().err


class TestFleetOrphanScan:
    """``doctor --fleet``: cross-shard orphans join the exit-code matrix.

    An orphan is a boundary-log entry past the shard's reconciliation
    cursor — a message the router flagged as possibly cross-shard that
    no repair pass has examined.  The scan itself is offline (reads
    ``shard-*/boundary.log`` + cursors); ``--repair`` replays
    reconciliation through a live fleet.
    """

    def _orphaned_root(self, tmp_path, *, pending: int = 3):
        from repro.runtime import BoundaryLog

        root = tmp_path / "fleet"
        for shard in range(2):
            directory = root / f"shard-{shard:02d}"
            directory.mkdir(parents=True)
            log = BoundaryLog(directory)
            entries = [log.append(message, peers=(1 - shard,),
                                  dst=None, score=0.0)
                       for message in stream(pending)]
            log.sync()
            if shard == 1:  # shard 1 fully reconciled, shard 0 orphaned
                log.advance(entries[-1].seq)
            log.close()
        return root

    def test_exit_0_reconciled_fleet(self, tmp_path, capsys):
        root = self._orphaned_root(tmp_path, pending=2)
        from repro.runtime import BoundaryLog

        log = BoundaryLog(root / "shard-00")
        log.advance(log.pending()[-1].seq)
        log.close()
        assert cli.main(["doctor", "--fleet", str(root)]) == 0
        assert "all artifacts healthy" in capsys.readouterr().out

    def test_exit_1_orphans_without_repair(self, tmp_path, capsys):
        root = self._orphaned_root(tmp_path)
        assert cli.main(["doctor", "--fleet", str(root)]) == 1
        out = capsys.readouterr().out
        assert "3 orphaned boundary entries" in out
        assert "--repair" in out

    def test_exit_1_not_a_fleet_root(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        assert cli.main(["doctor", "--fleet",
                         str(tmp_path / "empty")]) == 1
        assert "no shard directories" in capsys.readouterr().out

    def test_repair_replays_reconciliation(self, tmp_path, capsys):
        # End to end: a real fleet closed with an unreconciled backlog,
        # then doctor --repair drains it and a rescan is clean.
        import itertools

        from repro.runtime import ShardedRuntime, scan_fleet_repair
        from repro.stream.generator import StreamConfig, StreamGenerator

        root = tmp_path / "fleet"
        messages = list(itertools.islice(
            iter(StreamGenerator(StreamConfig(seed=11))), 300))
        with ShardedRuntime(root, 2, router="cooccurrence") as runtime:
            runtime.ingest_stream(messages, batch_size=64)
            assert runtime.stats.boundary_hints > 0
        assert cli.main(["doctor", "--fleet", str(root)]) == 1
        assert cli.main(["doctor", "--fleet", str(root),
                         "--repair"]) == 0
        assert "reconciled" in capsys.readouterr().out
        scans = scan_fleet_repair(root)
        assert scans and all(s.pending == 0 for s in scans.values())
        assert cli.main(["doctor", "--fleet", str(root)]) == 0


class TestQuarantineScanAndRepair:
    def _write_quarantine(self, path, count: int = 6):
        from repro.reliability.guard import GuardConfig, IngestGuard

        guard = IngestGuard(GuardConfig(spam_min_messages=2.0,
                                        spam_prior=0.5),
                            quarantine_path=path)
        for i in range(count + 2):
            guard.admit(make_message(
                i, "identical spam payload wins big money now",
                user="spammer", hours=i * 0.1))
        guard.close()

    def test_clean_log_is_healthy(self, tmp_path):
        from repro.reliability.doctor import scan_quarantine

        path = tmp_path / "quarantine.log"
        self._write_quarantine(path)
        report = scan_quarantine(path)
        assert report.healthy
        assert report.valid_records > 0
        assert "ok" in report.describe()

    def test_missing_log_reported(self, tmp_path):
        from repro.reliability.doctor import scan_quarantine

        report = scan_quarantine(tmp_path / "absent.log")
        assert not report.exists
        assert report.healthy
        assert "missing" in report.describe()

    def test_torn_tail_detected_and_repaired(self, tmp_path):
        from repro.reliability.doctor import (repair_quarantine,
                                              scan_quarantine)
        from repro.reliability.guard import QuarantineLog

        path = tmp_path / "quarantine.log"
        self._write_quarantine(path)
        before = [m.msg_id for m, _ in QuarantineLog.replay(path)]
        with path.open("ab") as handle:
            handle.write(b"0123abcd 42\tspammer\t1.0")  # torn append
        report = scan_quarantine(path)
        assert report.torn_tail
        assert not report.healthy
        result = repair_quarantine(path)
        assert result.dropped_lines == 1
        assert scan_quarantine(path).healthy
        assert [m.msg_id for m, _ in QuarantineLog.replay(path)] == before

    def test_interior_corruption_detected(self, tmp_path):
        from repro.reliability.doctor import scan_quarantine

        path = tmp_path / "quarantine.log"
        self._write_quarantine(path)
        corrupt_line(path, 2, replacement=b"deadbeef not a record")
        report = scan_quarantine(path)
        assert not report.healthy
        assert report.corrupt_lines == [2]
        assert not report.torn_tail

    def test_cli_exit_codes(self, tmp_path, capsys):
        path = tmp_path / "quarantine.log"
        self._write_quarantine(path)
        assert cli.main(["doctor", "--quarantine", str(path)]) == 0
        with path.open("ab") as handle:
            handle.write(b"torn garbage")
        assert cli.main(["doctor", "--quarantine", str(path)]) == 1
        assert cli.main(["doctor", "--quarantine", str(path),
                         "--repair"]) == 0
        assert cli.main(["doctor", "--quarantine", str(path)]) == 0
        assert "quarantine" in capsys.readouterr().out
