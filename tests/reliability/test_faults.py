"""Unit tests for the fault injector and faulty filesystem."""

from __future__ import annotations

import errno

import pytest

from repro.reliability.faults import Fault, FaultInjector, SimulatedCrash
from repro.reliability.fsio import RealFileSystem, filesystem


class TestInstallation:
    def test_default_filesystem_is_real(self):
        assert isinstance(filesystem(), RealFileSystem)

    def test_injector_swaps_and_restores(self):
        with FaultInjector([]):
            assert not isinstance(filesystem(), RealFileSystem)
        assert isinstance(filesystem(), RealFileSystem)

    def test_restores_after_crash(self, tmp_path):
        with pytest.raises(SimulatedCrash):
            with FaultInjector([Fault(op="write", kind="crash_before")]):
                with filesystem().open(tmp_path / "f", "w") as handle:
                    handle.write("x")
        assert isinstance(filesystem(), RealFileSystem)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault(op="write", kind="explode")

    def test_nth_must_be_positive(self):
        with pytest.raises(ValueError):
            Fault(op="write", nth=0)


class TestWriteFaults:
    def test_fail_nth_write_raises_enospc(self, tmp_path):
        target = tmp_path / "out.log"
        with FaultInjector([Fault(op="write", nth=2, kind="error")]):
            handle = filesystem().open(target, "w")
            handle.write("first\n")
            with pytest.raises(OSError) as caught:
                handle.write("second\n")
            assert caught.value.errno == errno.ENOSPC
            handle.write("third\n")  # the fault fires exactly once
            handle.flush()
            handle.close()
        assert target.read_text() == "first\nthird\n"

    def test_torn_write_leaves_partial_bytes(self, tmp_path):
        target = tmp_path / "out.log"
        with FaultInjector([Fault(op="write", nth=1, kind="torn",
                                  keep_bytes=4)]) as injector:
            handle = filesystem().open(target, "w")
            with pytest.raises(SimulatedCrash):
                handle.write("full record\n")
            assert injector.crashed
        assert target.read_bytes() == b"full"

    def test_crash_latches_all_operations(self, tmp_path):
        with FaultInjector([Fault(op="write", nth=1,
                                  kind="crash_before")]) as injector:
            handle = filesystem().open(tmp_path / "f", "w")
            with pytest.raises(SimulatedCrash):
                handle.write("x")
            with pytest.raises(SimulatedCrash):
                handle.write("y")
            with pytest.raises(SimulatedCrash):
                filesystem().open(tmp_path / "other", "r")
            assert injector.crashed

    def test_unflushed_buffer_lost_at_crash(self, tmp_path):
        """Data written but never synced must not reach disk post-crash."""
        target = tmp_path / "out.log"
        with FaultInjector([Fault(op="fsync", nth=1, kind="crash_before")]):
            handle = filesystem().open(target, "w")
            handle.write("buffered but never synced\n")
            with pytest.raises(SimulatedCrash):
                filesystem().fsync(handle)
            handle.close()  # GC-time close must not resurrect the data
        assert target.read_bytes() == b""

    def test_path_filter_limits_counting(self, tmp_path):
        fault = Fault(op="write", nth=1, kind="error", path_part="victim")
        with FaultInjector([fault]):
            bystander = filesystem().open(tmp_path / "bystander.log", "w")
            bystander.write("fine\n")
            bystander.close()
            victim = filesystem().open(tmp_path / "victim.log", "w")
            with pytest.raises(OSError):
                victim.write("doomed\n")


class TestRenameAndUnlinkFaults:
    def test_crash_before_replace_keeps_target(self, tmp_path):
        src = tmp_path / "new.tmp"
        dst = tmp_path / "state.json"
        dst.write_text("old")
        with FaultInjector([Fault(op="replace", nth=1,
                                  kind="crash_before")]):
            handle = filesystem().open(src, "w")
            handle.write("new")
            handle.flush()
            handle.close()
            with pytest.raises(SimulatedCrash):
                filesystem().replace(src, dst)
        assert dst.read_text() == "old"
        assert src.exists()

    def test_crash_after_replace_commits_target(self, tmp_path):
        src = tmp_path / "new.tmp"
        dst = tmp_path / "state.json"
        dst.write_text("old")
        src.write_text("new")
        with FaultInjector([Fault(op="replace", nth=1, kind="crash_after")]):
            with pytest.raises(SimulatedCrash):
                filesystem().replace(src, dst)
        assert dst.read_text() == "new"

    def test_unlink_crash_after_removes_file(self, tmp_path):
        target = tmp_path / "wal"
        target.write_text("x")
        with FaultInjector([Fault(op="unlink", nth=1, kind="crash_after")]):
            with pytest.raises(SimulatedCrash):
                filesystem().unlink(target)
        assert not target.exists()

    def test_fired_faults_are_recorded(self, tmp_path):
        fault = Fault(op="write", nth=1, kind="error")
        with FaultInjector([fault]) as injector:
            handle = filesystem().open(tmp_path / "f", "w")
            with pytest.raises(OSError):
                handle.write("x")
        assert injector.fired == [fault]
        assert fault.fired
