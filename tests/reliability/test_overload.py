"""Unit tests for the overload-resilience layer.

Everything here runs on injected clocks and hand-fed observations, so
each piece of the machinery — admission control, the degradation
ladder, the circuit breaker, the guarded spill sink — is exercised
deterministically.  The end-to-end surge behaviour lives in
``test_surge.py`` (the chaos suite).
"""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.errors import ConfigurationError, StorageError
from repro.reliability.overload import (Admission, AdmissionController,
                                        CircuitBreaker, DegradationLadder,
                                        GuardedSink, HealthState,
                                        OverloadConfig, OverloadController)
from tests.conftest import make_message


class FakeClock:
    """A settable monotonic clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


class TestOverloadConfig:
    def test_defaults_are_valid(self):
        OverloadConfig()

    @pytest.mark.parametrize("kwargs", [
        {"rate_limit": 0.0},
        {"rate_limit": -1.0},
        {"burst": 0},
        {"max_queue": -1},
        {"latency_target": 0.0},
        {"queue_high_fraction": 0.0},
        {"queue_high_fraction": 1.5},
        {"recover_pressure": 0.0},
        {"recover_pressure": 1.0},
        {"escalate_after": 0},
        {"recover_after": 0},
        {"reduced_candidate_cap": 0},
        {"ewma_alpha": 0.0},
        {"ewma_alpha": 1.5},
        {"breaker_failures": 0},
        {"breaker_reset_after": -1.0},
        {"breaker_half_open_probes": 0},
    ])
    def test_bad_knobs_are_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            OverloadConfig(**kwargs)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmissionController:
    def msg(self, i: int):
        return make_message(i, f"hello #topic{i}", hours=i * 0.01)

    def test_unlimited_rate_admits_everything(self):
        ctl = AdmissionController(OverloadConfig(rate_limit=None))
        for i in range(50):
            assert ctl.offer(self.msg(i), float(i)) is Admission.ADMITTED
        assert ctl.stats.admitted == 50
        assert ctl.queue_depth == 0
        assert ctl.stats.reconciles(ctl.queue_depth)

    def test_burst_is_absorbed_then_deferred(self):
        ctl = AdmissionController(
            OverloadConfig(rate_limit=1.0, burst=3, max_queue=10))
        # All arrivals at t=0: the bucket holds exactly `burst` tokens.
        verdicts = [ctl.offer(self.msg(i), 0.0) for i in range(5)]
        assert verdicts == [Admission.ADMITTED] * 3 + [Admission.DEFERRED] * 2
        assert ctl.queue_depth == 2

    def test_queue_overflow_drops(self):
        ctl = AdmissionController(
            OverloadConfig(rate_limit=1.0, burst=1, max_queue=2))
        verdicts = [ctl.offer(self.msg(i), 0.0) for i in range(5)]
        assert verdicts == [Admission.ADMITTED, Admission.DEFERRED,
                            Admission.DEFERRED, Admission.DROPPED,
                            Admission.DROPPED]
        assert ctl.stats.dropped_queue_full == 2
        assert ctl.stats.reconciles(ctl.queue_depth)

    def test_release_respects_accrued_tokens(self):
        ctl = AdmissionController(
            OverloadConfig(rate_limit=1.0, burst=1, max_queue=10))
        for i in range(4):
            ctl.offer(self.msg(i), 0.0)   # 1 admitted, 3 deferred
        assert ctl.release(0.5) == []     # only half a token accrued
        # The bucket caps at burst=1, so even a long gap releases one.
        assert [m.msg_id for m in ctl.release(9.0)] == [1]
        assert [m.msg_id for m in ctl.release(10.0)] == [2]
        assert ctl.stats.released == 2
        assert ctl.stats.reconciles(ctl.queue_depth)

    def test_nothing_overtakes_the_queue(self):
        ctl = AdmissionController(
            OverloadConfig(rate_limit=1.0, burst=1, max_queue=10))
        ctl.offer(self.msg(0), 0.0)                       # admitted
        ctl.offer(self.msg(1), 0.0)                       # deferred
        # Tokens have accrued, but the queue is non-empty: the new
        # arrival must defer behind msg 1, not steal its token.
        assert ctl.offer(self.msg(2), 5.0) is Admission.DEFERRED
        assert [m.msg_id for m in ctl.release(5.0)] == [1]
        assert [m.msg_id for m in ctl.release(6.0)] == [2]

    def test_shed_only_drops_and_counts(self):
        ctl = AdmissionController(OverloadConfig(rate_limit=None))
        assert ctl.offer(self.msg(0), 0.0,
                         shed_only=True) is Admission.DROPPED
        assert ctl.stats.dropped_shed_only == 1
        assert ctl.stats.reconciles(ctl.queue_depth)

    def test_drain_empties_the_backlog(self):
        ctl = AdmissionController(
            OverloadConfig(rate_limit=1.0, burst=1, max_queue=10))
        for i in range(4):
            ctl.offer(self.msg(i), 0.0)
        drained = ctl.drain()
        assert [m.msg_id for m in drained] == [1, 2, 3]
        assert ctl.queue_depth == 0
        assert ctl.stats.reconciles(0)

    def test_accounting_conservation_across_mixed_traffic(self):
        ctl = AdmissionController(
            OverloadConfig(rate_limit=2.0, burst=2, max_queue=3))
        for i in range(40):
            ctl.offer(self.msg(i), i * 0.1, shed_only=(i % 7 == 0))
            if i % 3 == 0:
                ctl.release(i * 0.1)
        stats = ctl.stats
        assert stats.offered == 40
        assert stats.reconciles(ctl.queue_depth)
        assert (stats.admitted + stats.deferred + stats.dropped
                == stats.offered)


# ---------------------------------------------------------------------------
# Degradation ladder
# ---------------------------------------------------------------------------


def ladder(**kwargs) -> DegradationLadder:
    kwargs.setdefault("latency_target", 0.010)
    kwargs.setdefault("escalate_after", 3)
    kwargs.setdefault("recover_after", 4)
    return DegradationLadder(OverloadConfig(**kwargs))


class TestDegradationLadder:
    def test_starts_normal_and_idle(self):
        lad = ladder()
        assert lad.state is HealthState.NORMAL
        assert lad.observe(queue_fraction=0.0) is HealthState.NORMAL

    def test_single_spike_does_not_escalate(self):
        lad = ladder()
        lad.note_latency(1.0)  # EWMA jumps far above target
        assert lad.observe(queue_fraction=0.0) is HealthState.NORMAL
        assert lad.observe(queue_fraction=0.0) is HealthState.NORMAL

    def test_streak_escalates_one_rung_at_a_time(self):
        lad = ladder()
        lad.note_latency(1.0)
        states = [lad.observe(queue_fraction=0.0) for _ in range(6)]
        assert states == [HealthState.NORMAL, HealthState.NORMAL,
                          HealthState.REDUCED, HealthState.REDUCED,
                          HealthState.REDUCED, HealthState.SKELETON]

    def test_escalates_to_shed_only_and_stops(self):
        lad = ladder(escalate_after=1)
        lad.note_latency(1.0)
        states = [lad.observe(queue_fraction=0.0) for _ in range(5)]
        assert states[-1] is HealthState.SHED_ONLY
        # Further overload cannot move past the last rung.
        assert lad.observe(queue_fraction=0.0) is HealthState.SHED_ONLY

    def test_recovery_needs_a_longer_streak(self):
        lad = ladder(escalate_after=1, recover_after=4)
        lad.note_latency(1.0)
        lad.observe(queue_fraction=0.0)
        assert lad.state is HealthState.REDUCED
        lad.latency_ewma = 0.0  # load vanishes
        states = [lad.observe(queue_fraction=0.0) for _ in range(4)]
        assert states == [HealthState.REDUCED] * 3 + [HealthState.NORMAL]

    def test_dead_band_freezes_both_streaks(self):
        # recover_pressure=0.7: pressure 0.85 is neither overloaded nor
        # healthy, so a mid-band observation must not advance recovery.
        lad = ladder(escalate_after=1, recover_after=2,
                     recover_pressure=0.7)
        lad.note_latency(1.0)
        lad.observe(queue_fraction=0.0)
        assert lad.state is HealthState.REDUCED
        lad.latency_ewma = 0.0085  # pressure 0.85: dead band
        for _ in range(10):
            assert lad.observe(queue_fraction=0.0) is HealthState.REDUCED
        lad.latency_ewma = 0.0     # now genuinely healthy
        lad.observe(queue_fraction=0.0)
        assert lad.observe(queue_fraction=0.0) is HealthState.NORMAL

    def test_queue_pressure_signal(self):
        lad = ladder(queue_high_fraction=0.5)
        value, signal = lad.pressure(queue_fraction=0.6)
        assert signal == "queue"
        assert value == pytest.approx(1.2)

    def test_memory_pressure_signal(self):
        lad = ladder(memory_high_bytes=1000)
        value, signal = lad.pressure(queue_fraction=0.0, memory_bytes=1500)
        assert signal == "memory"
        assert value == pytest.approx(1.5)

    def test_transitions_are_recorded(self):
        lad = ladder(escalate_after=1, recover_after=1)
        lad.note_latency(1.0)
        lad.observe(queue_fraction=0.0)
        lad.latency_ewma = 0.0
        lad.observe(queue_fraction=0.0)
        moves = [(t.previous, t.state) for t in lad.transitions]
        assert moves == [(HealthState.NORMAL, HealthState.REDUCED),
                         (HealthState.REDUCED, HealthState.NORMAL)]
        assert lad.transitions[0].signal == "latency"


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def breaker(self, clock, **kwargs) -> CircuitBreaker:
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("reset_after", 10.0)
        return CircuitBreaker(clock=clock, **kwargs)

    def test_stays_closed_below_threshold(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_success_resets_the_failure_streak(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        for _ in range(2):
            breaker.record_failure()
        breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_half_open_after_reset_period(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()          # the single probe
        assert not breaker.allow()      # no second probe

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = self.breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()        # one failed probe is enough
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2


# ---------------------------------------------------------------------------
# Guarded spill sink
# ---------------------------------------------------------------------------


class FlakySink:
    """A BundleSink whose append fails while ``sick`` is set."""

    def __init__(self) -> None:
        self.sick = False
        self.appended: list[int] = []

    def append(self, bundle) -> None:
        if self.sick:
            raise StorageError("injected sick disk")
        self.appended.append(bundle.bundle_id)


def make_bundle(bundle_id: int):
    from repro.core.bundle import Bundle
    bundle = Bundle(bundle_id)
    bundle.insert(make_message(bundle_id, f"spill me #b{bundle_id}"),
                  frozenset({"spill"}))
    return bundle


class TestGuardedSink:
    def build(self, clock):
        sink = FlakySink()
        breaker = CircuitBreaker(failure_threshold=2, reset_after=10.0,
                                 clock=clock)
        return sink, GuardedSink(sink, breaker)

    def test_healthy_disk_passes_through(self):
        sink, guarded = self.build(FakeClock())
        guarded.append(make_bundle(1))
        assert sink.appended == [1]
        assert guarded.spilled == 1
        assert guarded.parked_count == 0

    def test_failures_park_instead_of_raising(self):
        sink, guarded = self.build(FakeClock())
        sink.sick = True
        for i in range(5):
            guarded.append(make_bundle(i))   # never raises
        assert guarded.parked_count == 5
        assert guarded.spilled == 0
        # After the threshold the breaker stopped even attempting.
        assert guarded.breaker.state == CircuitBreaker.OPEN

    def test_recovery_flushes_parked_backlog(self):
        clock = FakeClock()
        sink, guarded = self.build(clock)
        sink.sick = True
        for i in range(4):
            guarded.append(make_bundle(i))
        sink.sick = False
        clock.advance(11.0)                  # breaker goes half-open
        guarded.append(make_bundle(99))      # successful probe
        assert guarded.parked_count == 0
        assert guarded.flushed == 4
        # Probe first, then the backlog oldest-first.
        assert sink.appended == [99, 0, 1, 2, 3]
        assert guarded.breaker.state == CircuitBreaker.CLOSED

    def test_failed_probe_reparks_and_reopens(self):
        clock = FakeClock()
        sink, guarded = self.build(clock)
        sink.sick = True
        for i in range(3):
            guarded.append(make_bundle(i))
        clock.advance(11.0)
        guarded.append(make_bundle(99))      # probe fails, parks
        assert guarded.parked_count == 4
        assert guarded.breaker.state == CircuitBreaker.OPEN

    def test_parked_bytes_is_positive_while_parked(self):
        sink, guarded = self.build(FakeClock())
        sink.sick = True
        guarded.append(make_bundle(1))
        assert guarded.parked_bytes() > 0


# ---------------------------------------------------------------------------
# Controller façade + engine knobs
# ---------------------------------------------------------------------------


class TestOverloadController:
    def engine(self) -> ProvenanceIndexer:
        return ProvenanceIndexer(IndexerConfig.partial_index(pool_size=20))

    def test_attach_wraps_store_once(self):
        engine = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=20),
                                   store=FlakySink())
        ctl = OverloadController(OverloadConfig(), clock=FakeClock())
        ctl.attach(engine)
        assert isinstance(engine.store, GuardedSink)
        guard = engine.store
        ctl.attach(engine)               # idempotent
        assert engine.store is guard

    def test_apply_mode_sets_engine_knobs(self):
        engine = self.engine()
        ctl = OverloadController(
            OverloadConfig(reduced_candidate_cap=4), clock=FakeClock())
        ctl.attach(engine)
        ctl.ladder.state = HealthState.REDUCED
        ctl.apply_mode(engine)
        assert engine.candidate_cap == 4
        assert engine.skeleton_matching is False
        ctl.ladder.state = HealthState.SKELETON
        ctl.apply_mode(engine)
        assert engine.skeleton_matching is True
        ctl.ladder.state = HealthState.NORMAL
        ctl.apply_mode(engine)
        assert engine.candidate_cap is None
        assert engine.skeleton_matching is False

    def test_health_report_reconciles_and_renders(self):
        engine = self.engine()
        ctl = OverloadController(
            OverloadConfig(rate_limit=1.0, burst=1, max_queue=2,
                           escalate_after=99),
            clock=FakeClock())
        ctl.attach(engine)
        for i in range(5):
            ctl.offer(make_message(i, f"surge #s{i}"), 0.0)
        ctl.note_ingest(HealthState.NORMAL, 0.001)
        report = ctl.health_report()
        assert report.reconciles
        assert report.queue_depth == 2
        assert report.mode_ingests["normal"] == 1
        rendered = {name: value for name, value in report.rows()}
        assert rendered["health state"] == "normal"
        assert rendered["accounting"] == "reconciles"

    def test_dead_letter_latency_counts_without_mode_ingest(self):
        ctl = OverloadController(OverloadConfig(), clock=FakeClock())
        ctl.note_ingest(HealthState.NORMAL, 0.5, indexed=False)
        assert ctl.mode_ingests[HealthState.NORMAL] == 0
        assert ctl.ladder.latency_ewma > 0.0


class TestEngineDegradationKnobs:
    """The engine-side hooks the ladder drives."""

    def messages(self, count: int = 40):
        return [make_message(i, f"game at #stadium tonight crowd {i % 7}",
                             user=f"u{i % 9}", hours=i * 0.05)
                for i in range(count)]

    def test_candidate_cap_tightens_fan_in(self):
        capped = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=30))
        capped.candidate_cap = 1
        for message in self.messages():
            capped.ingest(message)
        assert capped.stats.messages_ingested == 40

    def test_skeleton_mode_skips_keyword_extraction(self):
        engine = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=30))
        engine.skeleton_matching = True
        for message in self.messages(10)[:10]:
            engine.ingest(message)
        assert engine.stats.skeleton_ingests == 10
        # No keyword postings were registered anywhere.
        for bundle in engine.pool:
            assert not bundle.keyword_counts

    def test_skeleton_mode_still_matches_exact_indicants(self):
        engine = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=30))
        engine.skeleton_matching = True
        first = make_message(0, "kickoff #bigmatch http://bit.ly/x")
        second = make_message(1, "watching too #bigmatch", hours=0.2)
        r0 = engine.ingest(first)
        r1 = engine.ingest(second)
        assert r1.bundle_id == r0.bundle_id

    def test_index_update_timer_is_attributed(self):
        engine = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=30))
        for message in self.messages(10):
            engine.ingest(message)
        timers = engine.timers
        assert timers.index_update > 0.0
        assert timers.total == pytest.approx(
            timers.bundle_match + timers.message_placement
            + timers.index_update + timers.memory_refinement)
