"""Integration: the full CLI workflow, command by command.

Drives the documented shell workflow end to end through ``main()``:
generate → stats → index (with archive store) → search → trending →
digest → show → archive, asserting each stage consumes the previous
stage's artifacts.
"""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    root = tmp_path_factory.mktemp("cli-flow")
    dataset = root / "stream.tsv"
    snapshot = root / "state.json"
    store = root / "bundles"
    assert main(["generate", "-o", str(dataset), "--days", "1",
                 "--rate", "1500", "--seed", "21", "--users", "300",
                 "--events-per-day", "10"]) == 0
    assert main(["index", str(dataset), "-o", str(snapshot),
                 "--pool-size", "80", "--bundle-limit", "60",
                 "--store", str(store)]) == 0
    return root, dataset, snapshot, store


class TestCliWorkflow:
    def test_stats_reads_generated_dataset(self, workspace, capsys):
        _, dataset, _, _ = workspace
        assert main(["stats", str(dataset)]) == 0
        out = capsys.readouterr().out
        assert "1.50k" in out or "1500" in out

    def test_search_over_snapshot(self, workspace, capsys):
        _, _, snapshot, _ = workspace
        # query by whatever the busiest bundle is about
        from repro.storage.snapshot import load_snapshot

        indexer = load_snapshot(snapshot)
        busiest = max(indexer.pool, key=len)
        query = " ".join(busiest.summary_words(2))
        assert main(["search", str(snapshot), query, "-k", "3"]) == 0
        assert "bundle" in capsys.readouterr().out

    def test_trending_over_snapshot(self, workspace, capsys):
        _, _, snapshot, _ = workspace
        code = main(["trending", str(snapshot), "--window-hours", "24",
                     "--min-recent", "2"])
        assert code in (0, 1)

    def test_digest_over_snapshot(self, workspace, capsys):
        _, _, snapshot, _ = workspace
        code = main(["digest", str(snapshot), "--window-hours", "24",
                     "--min-messages", "2"])
        assert "digest" in capsys.readouterr().out
        assert code in (0, 1)

    def test_show_renders_a_bundle(self, workspace, capsys):
        _, _, snapshot, _ = workspace
        from repro.storage.snapshot import load_snapshot

        indexer = load_snapshot(snapshot)
        bundle_id = max(indexer.pool, key=len).bundle_id
        assert main(["show", str(snapshot), str(bundle_id),
                     "--storyline"]) == 0
        out = capsys.readouterr().out
        assert f"bundle {bundle_id}" in out
        assert "storyline" in out

    def test_archive_holds_evicted_stories(self, workspace, capsys):
        root, _, _, store = workspace
        from repro.storage.archive_index import ArchivedBundleStore

        archive = ArchivedBundleStore(store)
        assert len(archive) > 0  # pool of 80 forced evictions
        # search it through the CLI by a stored bundle's top word
        bundle = archive.load(archive.store.bundle_ids()[0])
        words = bundle.summary_words(1)
        if words:
            code = main(["archive", str(store), words[0]])
            assert code in (0, 1)

    def test_errors_are_clean(self, workspace, capsys):
        root, _, _, _ = workspace
        assert main(["stats", str(root / "missing.tsv")]) == 2
        assert "error:" in capsys.readouterr().err
