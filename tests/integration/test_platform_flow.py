"""Integration: the full platform stack on one bounded-memory run.

Exercises the production wiring end-to-end on a synthetic stream: bounded
engine + searchable archive, burst monitoring, feeds, trending, source
quality, storylines — then validates every structural invariant.
"""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.credibility import CredibilityTracker
from repro.core.engine import ProvenanceIndexer
from repro.core.validation import check_bundle, check_engine
from repro.query.feeds import FeedRegistry
from repro.query.timeline import extract_storyline
from repro.query.trending import trending_bundles
from repro.storage.archive_index import ArchivedBundleStore
from repro.stream.window import SlidingWindowMonitor


@pytest.fixture(scope="module")
def platform(tmp_path_factory, request):
    """A bounded engine replayed over the tiny stream with all views."""
    from repro.stream.generator import StreamConfig, StreamGenerator

    stream = StreamGenerator(StreamConfig(
        days=1.0, messages_per_day=1500, seed=13, user_count=250,
        events_per_day=8.0)).generate_list()
    store = ArchivedBundleStore(
        tmp_path_factory.mktemp("platform") / "archive")
    indexer = ProvenanceIndexer(
        IndexerConfig.bundle_limit(pool_size=60, bundle_size=80),
        store=store)
    monitor = SlidingWindowMonitor(min_count=5)
    alarms = []
    for message in stream:
        indexer.ingest(message)
        alarms.extend(monitor.observe(message))
    return stream, indexer, store, alarms


class TestPlatformFlow:
    def test_engine_invariants_hold(self, platform):
        _, indexer, _, _ = platform
        assert check_engine(indexer) == []

    def test_pool_bounded_and_archive_populated(self, platform):
        _, indexer, store, _ = platform
        assert len(indexer.pool) <= 60
        assert len(store) > 0

    def test_archived_bundles_structurally_sound(self, platform):
        _, _, store, _ = platform
        for bundle_id in store.store.bundle_ids()[:20]:
            assert check_bundle(store.load(bundle_id)) == []

    def test_archive_search_returns_real_bundles(self, platform):
        _, _, store, _ = platform
        # search by the most common archived hashtag
        from collections import Counter

        tags: Counter[str] = Counter()
        for bundle in store.store.iter_bundles():
            tags.update(bundle.hashtag_counts)
        if not tags:
            pytest.skip("no tagged archived bundles under this seed")
        top_tag = tags.most_common(1)[0][0]
        hits = store.search(f"#{top_tag}")
        assert hits
        loaded = store.load(hits[0].bundle_id)
        assert top_tag in loaded.hashtag_counts

    def test_bursts_detected_on_event_tags(self, platform):
        stream, _, _, alarms = platform
        assert alarms  # events exist, so bursts must fire
        event_tags = {tag for message in stream if message.event_id
                      for tag in message.hashtags}
        assert any(alarm.hashtag in event_tags for alarm in alarms)

    def test_trending_reflects_fresh_activity(self, platform):
        _, indexer, _, _ = platform
        trending = trending_bundles(indexer, k=5, window=12 * 3600.0,
                                    min_recent=2)
        for entry in trending:
            assert entry.bundle.last_update >= (
                indexer.current_date - 12 * 3600.0)

    def test_feed_sees_growth_during_replay(self, platform):
        """Re-run a prefix with a live feed and confirm deltas arrive."""
        stream, _, _, _ = platform
        indexer = ProvenanceIndexer(IndexerConfig())
        feeds = FeedRegistry(indexer)
        # subscribe to the biggest event's vocabulary
        from collections import Counter

        events: Counter[int] = Counter(
            m.event_id for m in stream if m.event_id is not None)
        top_event = events.most_common(1)[0][0]
        words = Counter()
        for message in stream:
            if message.event_id == top_event:
                words.update(message.hashtags)
        query = " ".join(f"#{t}" for t, _ in words.most_common(2))
        feeds.subscribe("watch", query)
        saw_new = saw_growth = False
        for index, message in enumerate(stream):
            indexer.ingest(message)
            if index % 200 == 0:
                update = feeds.poll("watch")
                saw_new = saw_new or bool(update.new_bundles)
                saw_growth = saw_growth or bool(update.grown_bundles)
        assert saw_new
        assert saw_growth

    def test_credibility_separates_sources_from_noise(self, platform):
        stream, indexer, store, _ = platform
        tracker = CredibilityTracker()
        tracker.observe_pool(indexer.bundles())
        for bundle in store.store.iter_bundles():
            tracker.observe_bundle(bundle)
        top = tracker.top_users(5, min_messages=4)
        bottom = tracker.noise_users(5, min_messages=4)
        if top and bottom:
            assert top[0][1] > bottom[0][1]

    def test_storylines_render_for_active_bundles(self, platform):
        _, indexer, _, _ = platform
        big = [b for b in indexer.pool if len(b) >= 10]
        for bundle in big[:5]:
            storyline = extract_storyline(bundle)
            assert len(storyline) >= 1
            assert storyline.render()
