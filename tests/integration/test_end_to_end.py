"""Integration tests: the full pipeline on synthetic streams."""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.graph import cascade_stats, render_tree, roots
from repro.core.metrics import (compare_edge_sets, ground_truth_edges,
                                label_purity)
from repro.query.bundle_search import BundleSearchEngine
from repro.query.ranking import quality_score
from repro.storage.bundle_store import BundleStore
from repro.storage.snapshot import load_snapshot, save_snapshot
from repro.stream.dataset import load_tsv, save_tsv
from repro.text.search import SearchEngine


@pytest.fixture(scope="module")
def indexed(tiny_stream_module):
    indexer = ProvenanceIndexer(IndexerConfig.full_index())
    for message in tiny_stream_module:
        indexer.ingest(message)
    return indexer


@pytest.fixture(scope="module")
def tiny_stream_module():
    from repro.stream.generator import StreamConfig, StreamGenerator
    config = StreamConfig(days=1.0, messages_per_day=1200, seed=3,
                          user_count=200, events_per_day=6.0)
    return StreamGenerator(config).generate_list()


class TestFullPipeline:
    def test_every_message_lands_in_exactly_one_bundle(
            self, indexed, tiny_stream_module):
        placed = [0] * len(tiny_stream_module)
        for bundle in indexed.pool:
            for msg_id in bundle.message_ids():
                placed[msg_id] += 1
        assert all(count == 1 for count in placed)

    def test_edges_connect_members_of_same_bundle(self, indexed):
        for bundle in indexed.pool:
            members = set(bundle.message_ids())
            for edge in bundle.edges():
                assert edge.src_id in members
                assert edge.dst_id in members

    def test_edges_point_backwards_in_arrival(self, indexed):
        for bundle in indexed.pool:
            for edge in bundle.edges():
                assert edge.dst_id < edge.src_id  # ids are arrival-ordered

    def test_forests_have_roots_and_no_cycles(self, indexed):
        for bundle in indexed.pool:
            if len(bundle) == 0:
                continue
            assert roots(bundle)
            stats = cascade_stats(bundle)  # raises on cycles
            assert stats.edge_count == len(bundle) - stats.root_count

    def test_bundles_are_topically_coherent(self, indexed):
        """Average majority-label purity of multi-message bundles must be
        high: provenance grouping recovers the generator's events."""
        purities = []
        for bundle in indexed.pool:
            if len(bundle) >= 5:
                purities.append(label_purity(bundle.messages()))
        assert purities
        assert sum(purities) / len(purities) > 0.8

    def test_ground_truth_rt_edges_recovered(
            self, indexed, tiny_stream_module):
        """Most true cascade edges must appear in the discovered edge set
        (the RT signal is explicit, so discovery should catch it)."""
        truth = ground_truth_edges(tiny_stream_module)
        found = indexed.edge_pairs()
        cmp = compare_edge_sets(truth & found, truth)
        assert cmp.coverage > 0.5

    def test_render_largest_bundle(self, indexed):
        largest = max(indexed.pool, key=len)
        text = render_tree(largest)
        assert text.splitlines()
        assert f"size={len(largest)}" in text.splitlines()[0]

    def test_quality_scores_computable_for_all(self, indexed):
        for bundle in indexed.pool:
            assert 0.0 <= quality_score(bundle) <= 1.0


class TestRetrievalIntegration:
    def test_bundle_search_returns_grouped_results(self, indexed):
        search = BundleSearchEngine(indexed)
        hits = search.search("tsunami warning", k=5)
        if hits:  # theme presence depends on the seed's event draw
            assert all(hit.size >= 1 for hit in hits)
            assert all(hit.summary_words for hit in hits)

    def test_bundle_search_vs_message_search(
            self, indexed, tiny_stream_module):
        """Fig. 1 vs Fig. 2: the same query, message-granular vs
        bundle-granular.  The bundle result must cover at least as many
        relevant messages per result item."""
        keyword_engine = SearchEngine()
        keyword_engine.add_all(tiny_stream_module)
        bundle_engine = BundleSearchEngine(indexed)

        message_hits = keyword_engine.search("market stocks", k=10)
        bundle_hits = bundle_engine.search("market stocks", k=3)
        if message_hits and bundle_hits:
            messages_per_bundle = sum(h.size for h in bundle_hits) / len(
                bundle_hits)
            assert messages_per_bundle >= 1.0


class TestPersistenceIntegration:
    def test_store_receives_evictions_and_reloads(
            self, tmp_path, tiny_stream_module):
        store = BundleStore(tmp_path / "bundles")
        indexer = ProvenanceIndexer(
            IndexerConfig.partial_index(pool_size=30), store=store)
        for message in tiny_stream_module:
            indexer.ingest(message)
        assert len(store) > 0
        sample_id = store.bundle_ids()[0]
        bundle = store.load(sample_id)
        assert len(bundle) >= 1

    def test_dataset_save_replay_equivalence(
            self, tmp_path, tiny_stream_module):
        """Indexing a saved-and-reloaded stream gives identical edges."""
        path = tmp_path / "stream.tsv"
        save_tsv(tiny_stream_module, path)
        reloaded = load_tsv(path)

        first = ProvenanceIndexer(IndexerConfig())
        second = ProvenanceIndexer(IndexerConfig())
        for message in tiny_stream_module:
            first.ingest(message)
        for message in reloaded:
            second.ingest(message)
        assert first.edge_pairs() == second.edge_pairs()

    def test_snapshot_mid_stream(self, tmp_path, tiny_stream_module):
        half = len(tiny_stream_module) // 2
        indexer = ProvenanceIndexer(IndexerConfig())
        for message in tiny_stream_module[:half]:
            indexer.ingest(message)
        save_snapshot(indexer, tmp_path / "snap.json")
        restored = load_snapshot(tmp_path / "snap.json")
        for message in tiny_stream_module[half:]:
            indexer.ingest(message)
            restored.ingest(message)
        assert restored.edge_pairs() == indexer.edge_pairs()


class TestThreeVariantBehaviour:
    def test_partial_bounded_full_unbounded(self, tiny_stream_module):
        full = ProvenanceIndexer(IndexerConfig.full_index())
        partial = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=40))
        for message in tiny_stream_module:
            full.ingest(message)
            partial.ingest(message)
        assert len(partial.pool) <= 40
        assert len(full.pool) > len(partial.pool)

    def test_partial_accuracy_reasonable(self, tiny_stream_module):
        """The Fig. 8 headline: partial indexing keeps most of the
        ground-truth connections."""
        full = ProvenanceIndexer(IndexerConfig.full_index())
        partial = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=60))
        for message in tiny_stream_module:
            full.ingest(message)
            partial.ingest(message)
        cmp = compare_edge_sets(partial.edge_pairs(), full.edge_pairs())
        assert cmp.accuracy > 0.6
        assert cmp.coverage > 0.5

    def test_bundle_limit_closes_bundles(self, tiny_stream_module):
        limited = ProvenanceIndexer(
            IndexerConfig.bundle_limit(pool_size=60, bundle_size=25))
        for message in tiny_stream_module:
            limited.ingest(message)
        assert all(len(b) <= 25 for b in limited.pool)
