"""Run the doctest examples embedded in library docstrings.

Keeps the usage snippets in docstrings honest: if an API changes, the
example in its documentation fails here.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

# Resolved via importlib: attribute access like ``repro.text.highlight``
# would return the *function* re-exported by the package __init__, which
# shadows the submodule of the same name.
_MODULE_NAMES = [
    "repro.text.analyzer",
    "repro.text.highlight",
    "repro.text.tokenizer",
]
_MODULES = [importlib.import_module(name) for name in _MODULE_NAMES]


@pytest.mark.parametrize("module", _MODULES, ids=_MODULE_NAMES)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    # Modules in this list are expected to actually contain examples.
    assert results.attempted > 0, \
        f"{module.__name__} has no doctest examples"
