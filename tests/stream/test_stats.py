"""Tests for stream descriptive statistics."""

from __future__ import annotations

import pytest

from repro.stream.stats import describe_stream, histogram
from tests.conftest import make_message


class TestDescribeStream:
    def test_empty_stream(self):
        stats = describe_stream([])
        assert stats.message_count == 0
        assert stats.span_days == 0.0
        assert stats.messages_per_day == 0.0

    def test_basic_counts(self):
        messages = [
            make_message(0, "plain"),
            make_message(1, "#tag bit.ly/a", user="bob", hours=24),
            make_message(2, "RT @bob: #tag", user="carol", hours=25,
                         event_id=1),
        ]
        stats = describe_stream(messages)
        assert stats.message_count == 3
        assert stats.user_count == 3
        assert stats.retweet_fraction == pytest.approx(1 / 3)
        assert stats.hashtag_fraction == pytest.approx(2 / 3)
        assert stats.url_fraction == pytest.approx(1 / 3)
        assert stats.labelled_fraction == pytest.approx(1 / 3)
        assert stats.distinct_hashtags == 1
        assert stats.distinct_urls == 1

    def test_span_and_rate(self):
        messages = [make_message(0, "a"),
                    make_message(1, "b", user="b", hours=48)]
        stats = describe_stream(messages)
        assert stats.span_days == pytest.approx(2.0)
        assert stats.messages_per_day == pytest.approx(1.0)

    def test_top_hashtags_ordered(self):
        messages = [make_message(i, "#big", user=f"u{i}", hours=i * 0.1)
                    for i in range(3)]
        messages.append(make_message(9, "#rare", user="x", hours=1))
        stats = describe_stream(messages, top_n=2)
        assert stats.top_hashtags[0] == ("big", 3)

    def test_synthetic_stream_properties(self, tiny_stream):
        stats = describe_stream(tiny_stream)
        assert stats.message_count == len(tiny_stream)
        assert 0.0 < stats.retweet_fraction < 0.6
        assert stats.hashtag_fraction > 0.4
        assert stats.distinct_hashtags > 5


class TestHistogram:
    def test_basic_binning(self):
        counts = histogram([1, 2, 3, 10, 20], [0, 5, 15, 25])
        assert counts == [3, 1, 1]

    def test_overflow_goes_to_last_bin(self):
        counts = histogram([100], [0, 1, 2])
        assert counts == [0, 1]

    def test_underflow_goes_to_first_bin(self):
        counts = histogram([-5], [0, 1, 2])
        assert counts == [1, 0]

    def test_boundary_values(self):
        # value == edge falls into the bin to its right
        counts = histogram([5], [0, 5, 10])
        assert counts == [0, 1]

    def test_needs_two_edges(self):
        with pytest.raises(ValueError):
            histogram([1], [0])

    def test_total_preserved(self):
        values = list(range(100))
        counts = histogram(values, [0, 10, 50, 90])
        assert sum(counts) == 100
