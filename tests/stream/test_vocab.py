"""Tests for vocabulary models and samplers."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.stream.vocab import (COMMON_WORDS, EMOTIONAL_FRAGMENTS,
                                TOPIC_BANKS, ShortUrlFactory, Vocabulary,
                                ZipfSampler)


class TestZipfSampler:
    def test_requires_items(self):
        with pytest.raises(ValueError):
            ZipfSampler([])

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(["a"], s=-1.0)

    def test_samples_come_from_items(self):
        sampler = ZipfSampler(["a", "b", "c"])
        rng = random.Random(1)
        assert set(sampler.sample_many(rng, 100)) <= {"a", "b", "c"}

    def test_rank_skew(self):
        """Rank-0 item must be drawn noticeably more often than rank-9."""
        sampler = ZipfSampler([f"w{i}" for i in range(10)], s=1.2)
        rng = random.Random(2)
        counts = Counter(sampler.sample_many(rng, 5000))
        assert counts["w0"] > 3 * counts["w9"]

    def test_deterministic_under_seed(self):
        sampler = ZipfSampler(list("abcdef"))
        first = sampler.sample_many(random.Random(7), 50)
        second = sampler.sample_many(random.Random(7), 50)
        assert first == second

    def test_uniform_when_s_zero(self):
        sampler = ZipfSampler(["a", "b"], s=0.0)
        rng = random.Random(3)
        counts = Counter(sampler.sample_many(rng, 2000))
        assert abs(counts["a"] - counts["b"]) < 300


class TestWordBanks:
    def test_common_words_nonempty_and_unique(self):
        assert len(COMMON_WORDS) > 100
        assert len(set(COMMON_WORDS)) == len(COMMON_WORDS)

    def test_topic_banks_have_words_and_tags(self):
        for theme, (words, tags) in TOPIC_BANKS.items():
            assert len(words) >= 10, theme
            assert len(tags) >= 2, theme

    def test_emotional_fragments_short(self):
        assert all(len(f) < 40 for f in EMOTIONAL_FRAGMENTS)


class TestVocabulary:
    def test_default_includes_all_themes(self):
        vocabulary = Vocabulary.default()
        assert set(vocabulary.themes) == set(TOPIC_BANKS)

    def test_topic_bank_lookup(self):
        vocabulary = Vocabulary.default()
        words, tags = vocabulary.topic_bank("tsunami")
        assert "tsunami" in words
        assert "tsunami" in tags

    def test_background_words(self):
        vocabulary = Vocabulary.default()
        words = vocabulary.background_words(random.Random(1), 5)
        assert len(words) == 5
        assert all(w in COMMON_WORDS for w in words)


class TestShortUrlFactory:
    def test_urls_unique(self):
        factory = ShortUrlFactory(random.Random(1))
        pool = factory.new_pool(200)
        assert len(set(pool)) == 200

    def test_url_shape(self):
        factory = ShortUrlFactory(random.Random(2))
        url = factory.new_url()
        host, _, slug = url.partition("/")
        assert host in ShortUrlFactory._HOSTS
        assert len(slug) == 5

    def test_deterministic(self):
        a = ShortUrlFactory(random.Random(9)).new_pool(5)
        b = ShortUrlFactory(random.Random(9)).new_pool(5)
        assert a == b
