"""Tests for TSV dataset persistence."""

from __future__ import annotations

import pytest

from repro.core.errors import StreamError
from repro.stream.dataset import iter_tsv, load_tsv, save_tsv
from tests.conftest import make_message


class TestRoundTrip:
    def test_simple_round_trip(self, tmp_path):
        messages = [
            make_message(0, "hello #world bit.ly/abc"),
            make_message(1, "RT @alice: hello #world", user="bob",
                         hours=1, event_id=4, parent_id=0),
        ]
        path = tmp_path / "stream.tsv"
        assert save_tsv(messages, path) == 2
        loaded = load_tsv(path)
        assert loaded == messages

    def test_entities_reextracted(self, tmp_path):
        message = make_message(0, "go #redsox http://bit.ly/x")
        path = tmp_path / "d.tsv"
        save_tsv([message], path)
        loaded = load_tsv(path)[0]
        assert loaded.hashtags == frozenset({"redsox"})
        assert loaded.urls == frozenset({"bit.ly/x"})

    def test_tabs_and_newlines_escaped(self, tmp_path):
        message = make_message(0, "line one\nline\ttwo \\ backslash")
        path = tmp_path / "d.tsv"
        save_tsv([message], path)
        assert load_tsv(path)[0].text == message.text

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.tsv"
        assert save_tsv([], path) == 0
        assert load_tsv(path) == []

    def test_labels_preserved(self, tmp_path):
        message = make_message(0, "x", event_id=7, parent_id=None)
        path = tmp_path / "d.tsv"
        save_tsv([message], path)
        loaded = load_tsv(path)[0]
        assert loaded.event_id == 7
        assert loaded.parent_id is None

    def test_iter_tsv_streams_lazily(self, tmp_path):
        messages = [make_message(i, f"msg {i}", user=f"u{i}",
                                 hours=i * 0.1) for i in range(5)]
        path = tmp_path / "d.tsv"
        save_tsv(messages, path)
        iterator = iter_tsv(path)
        assert next(iterator).msg_id == 0
        assert sum(1 for _ in iterator) == 4

    def test_synthetic_stream_round_trip(self, tmp_path, tiny_stream):
        path = tmp_path / "synthetic.tsv"
        save_tsv(tiny_stream, path)
        assert load_tsv(path) == tiny_stream


class TestErrors:
    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("wrong header\n")
        with pytest.raises(StreamError):
            load_tsv(path)

    def test_wrong_field_count_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text(
            "msg_id\tuser\tdate\tevent_id\tparent_id\ttext\n1\tonly\n")
        with pytest.raises(StreamError):
            load_tsv(path)

    def test_malformed_number_rejected(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text(
            "msg_id\tuser\tdate\tevent_id\tparent_id\ttext\n"
            "notanint\tu\t1.0\t\t\thello\n")
        with pytest.raises(StreamError):
            load_tsv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "d.tsv"
        save_tsv([make_message(0, "x")], path)
        with path.open("a") as handle:
            handle.write("\n")
        assert len(load_tsv(path)) == 1

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "d.tsv"
        save_tsv([make_message(0, "x")], path)
        assert list(tmp_path.iterdir()) == [path]
