"""Tests for the seeded adversarial workload scenarios."""

from __future__ import annotations

import pytest

from repro.stream.generator import (ADVERSARIAL_SCENARIOS,
                                    AdversarialConfig,
                                    AdversarialGenerator, StreamConfig,
                                    StreamError, StreamGenerator)

BASE = StreamConfig(seed=11, days=0.5, messages_per_day=800,
                    user_count=120, events_per_day=20.0)


def generate(scenario: str, **kw):
    return AdversarialGenerator(
        AdversarialConfig(scenario=scenario, base=BASE, **kw)
    ).generate_list()


@pytest.mark.parametrize("scenario", ADVERSARIAL_SCENARIOS)
class TestEveryScenario:
    def test_deterministic_by_seed(self, scenario):
        assert generate(scenario, seed=5) == generate(scenario, seed=5)

    def test_seed_changes_the_attack(self, scenario):
        if scenario == "mega-cascade":
            pytest.skip("cascade shape is seeded by the base stream")
        assert generate(scenario, seed=5) != generate(scenario, seed=6)

    def test_ids_unique(self, scenario):
        messages = generate(scenario)
        ids = [message.msg_id for message in messages]
        assert len(ids) == len(set(ids))


class TestInjectionScenarios:
    @pytest.mark.parametrize("scenario", ["spam-flood", "hashtag-hijack",
                                          "near-dup-storm"])
    def test_organic_messages_survive_byte_identical(self, scenario):
        organic = StreamGenerator(BASE).generate_list()
        mixed = generate(scenario)
        by_id = {message.msg_id: message for message in mixed}
        for message in organic:
            assert by_id[message.msg_id] == message

    @pytest.mark.parametrize("scenario", ["spam-flood", "hashtag-hijack",
                                          "near-dup-storm"])
    def test_attacks_carry_no_ground_truth(self, scenario):
        organic_count = len(StreamGenerator(BASE).generate_list())
        attacks = [message for message in generate(scenario)
                   if message.msg_id >= organic_count]
        assert attacks, "the scenario must inject traffic"
        assert all(message.event_id is None for message in attacks)
        assert all(message.parent_id is None for message in attacks)

    def test_intensity_scales_attack_volume(self):
        organic = len(StreamGenerator(BASE).generate_list())
        light = len(generate("spam-flood", intensity=0.1)) - organic
        heavy = len(generate("spam-flood", intensity=0.5)) - organic
        assert heavy > light > 0

    def test_merged_stream_is_date_ordered(self):
        messages = generate("spam-flood")
        dates = [message.date for message in messages]
        assert dates == sorted(dates)

    def test_hijack_reuses_trending_hashtags(self):
        from collections import Counter

        organic = StreamGenerator(BASE).generate_list()
        counts = Counter(tag for message in organic
                         for tag in message.hashtags)
        # Tie-robust top-10: everything at least as common as the 10th.
        floor = sorted(counts.values(), reverse=True)[:10][-1]
        trending = {tag for tag, n in counts.items() if n >= floor}
        attacks = [message for message in generate("hashtag-hijack")
                   if message.msg_id >= len(organic)]
        hits = sum(1 for message in attacks
                   if trending & set(message.hashtags))
        assert hits == len(attacks)

    def test_storm_copies_are_undeclared_near_dups(self):
        organic = StreamGenerator(BASE).generate_list()
        attacks = [message for message in generate("near-dup-storm")
                   if message.msg_id >= len(organic)]
        assert attacks
        # Copies must not carry RT markers — the whole point is testing
        # the *undeclared* duplicate path.
        assert all(not message.rt_users for message in attacks)


class TestMegaCascade:
    def test_one_enormous_event_dominates(self):
        from collections import Counter

        messages = generate("mega-cascade", cascade_factor=20)
        events = Counter(message.event_id for message in messages
                         if message.event_id is not None)
        biggest = max(events.values())
        rest = sorted(events.values())[:-1]
        typical = max(rest) if rest else 1
        assert biggest >= 5 * typical


class TestSkewedClock:
    def test_stream_arrives_out_of_order(self):
        messages = generate("skewed-clock", skew_fraction=0.3)
        dates = [message.date for message in messages]
        assert dates != sorted(dates)

    def test_only_dates_change(self):
        organic = StreamGenerator(BASE).generate_list()
        skewed = generate("skewed-clock", skew_fraction=0.3)
        assert len(skewed) == len(organic)
        for original, moved in zip(organic, skewed):
            assert moved.msg_id == original.msg_id
            assert moved.text == original.text
            assert moved.event_id == original.event_id
            assert moved.parent_id == original.parent_id


class TestValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(StreamError):
            AdversarialConfig(scenario="zerg-rush", base=BASE)

    def test_bad_intensity_rejected(self):
        with pytest.raises(StreamError):
            AdversarialConfig(scenario="spam-flood", base=BASE,
                              intensity=0.0)
