"""Tests for stream sampling strategies."""

from __future__ import annotations

import pytest

from repro.core.errors import StreamError
from repro.stream.sampling import (sample_by_hashtag, sample_by_user,
                                   sample_deterministic, sample_uniform)
from tests.conftest import make_message


def make_stream(count: int = 400):
    return [make_message(i, f"msg {i} #tag{i % 5}", user=f"u{i % 20}",
                         hours=i * 0.01) for i in range(count)]


class TestUniform:
    def test_rate_roughly_respected(self):
        sampled = list(sample_uniform(make_stream(), 0.5, seed=1))
        assert 120 < len(sampled) < 280

    def test_order_preserved(self):
        sampled = list(sample_uniform(make_stream(), 0.3, seed=2))
        ids = [m.msg_id for m in sampled]
        assert ids == sorted(ids)

    def test_deterministic(self):
        a = list(sample_uniform(make_stream(), 0.4, seed=3))
        b = list(sample_uniform(make_stream(), 0.4, seed=3))
        assert a == b

    def test_rate_one_keeps_everything(self):
        assert len(list(sample_uniform(make_stream(), 1.0))) in (399, 400)

    @pytest.mark.parametrize("rate", [0.0, -0.1, 1.5])
    def test_invalid_rate(self, rate):
        with pytest.raises(StreamError):
            list(sample_uniform(make_stream(10), rate))


class TestByUser:
    def test_user_output_complete(self):
        stream = make_stream()
        sampled = list(sample_by_user(stream, 0.5, seed=4))
        kept_users = {m.user for m in sampled}
        expected = [m for m in stream if m.user in kept_users]
        assert sampled == expected

    def test_user_decision_stable(self):
        sampled = list(sample_by_user(make_stream(), 0.5, seed=5))
        # a user is either fully in or fully out
        full_counts = {}
        for message in make_stream():
            full_counts[message.user] = full_counts.get(message.user, 0) + 1
        sample_counts = {}
        for message in sampled:
            sample_counts[message.user] = sample_counts.get(
                message.user, 0) + 1
        for user, count in sample_counts.items():
            assert count == full_counts[user]

    def test_invalid_rate(self):
        with pytest.raises(StreamError):
            list(sample_by_user(make_stream(10), 0.0))


class TestByHashtag:
    def test_only_tracked_kept(self):
        sampled = list(sample_by_hashtag(make_stream(), {"tag0", "tag3"}))
        assert sampled
        for message in sampled:
            assert message.hashtags & {"tag0", "tag3"}

    def test_untagged_dropped(self):
        stream = [make_message(0, "no tags at all")]
        assert list(sample_by_hashtag(stream, {"anything"})) == []

    def test_case_insensitive(self):
        stream = [make_message(0, "go #RedSox")]
        assert len(list(sample_by_hashtag(stream, {"REDSOX"}))) == 1

    def test_empty_tracked_rejected(self):
        with pytest.raises(StreamError):
            list(sample_by_hashtag(make_stream(10), set()))


class TestDeterministic:
    def test_reproducible_without_seed_state(self):
        a = list(sample_deterministic(make_stream(), 0.5, salt="x"))
        b = list(sample_deterministic(make_stream(), 0.5, salt="x"))
        assert a == b

    def test_different_salts_differ(self):
        a = {m.msg_id for m in sample_deterministic(make_stream(), 0.5,
                                                    salt="x")}
        b = {m.msg_id for m in sample_deterministic(make_stream(), 0.5,
                                                    salt="y")}
        assert a != b

    def test_subset_property(self):
        """A lower rate with the same salt keeps a subset of a higher
        rate's picks — the property that makes distributed sampling
        coordinate-free."""
        low = {m.msg_id for m in sample_deterministic(make_stream(), 0.2,
                                                      salt="s")}
        high = {m.msg_id for m in sample_deterministic(make_stream(), 0.6,
                                                       salt="s")}
        assert low <= high

    def test_rate_roughly_respected(self):
        sampled = list(sample_deterministic(make_stream(), 0.5, salt="z"))
        assert 130 < len(sampled) < 270

    def test_invalid_rate(self):
        with pytest.raises(StreamError):
            list(sample_deterministic(make_stream(10), 1.0001))
