"""Tests for stream replay and checkpointing."""

from __future__ import annotations

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.stream.replay import replay, replay_many
from tests.conftest import make_message


def make_stream(count: int):
    return [make_message(i, f"#topic{i % 5} message {i}", user=f"u{i % 7}",
                         hours=i * 0.05) for i in range(count)]


class TestReplay:
    def test_checkpoints_at_interval(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        points = replay(make_stream(25), indexer, checkpoint_every=10)
        assert [p.messages_seen for p in points] == [10, 20, 25]

    def test_final_checkpoint_always_taken(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        points = replay(make_stream(20), indexer, checkpoint_every=10)
        assert points[-1].messages_seen == 20
        assert len(points) == 2  # no duplicate final point

    def test_checkpoint_fields_consistent(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        points = replay(make_stream(30), indexer, checkpoint_every=15)
        last = points[-1]
        assert last.bundle_count == len(indexer.pool)
        assert last.message_count_in_memory == indexer.pool.message_count()
        assert last.edge_count == len(indexer.edge_pairs())
        assert last.current_date == indexer.current_date
        assert last.total_time >= last.match_time

    def test_on_checkpoint_callback(self):
        seen = []
        indexer = ProvenanceIndexer(IndexerConfig())
        replay(make_stream(12), indexer, checkpoint_every=5,
               on_checkpoint=lambda p: seen.append(p.messages_seen))
        assert seen == [5, 10, 12]

    def test_zero_interval_gives_only_final(self):
        indexer = ProvenanceIndexer(IndexerConfig())
        points = replay(make_stream(8), indexer, checkpoint_every=0)
        assert len(points) == 1
        assert points[0].messages_seen == 8


class TestReplayMany:
    def test_lockstep_positions_identical(self):
        engines = {
            "a": ProvenanceIndexer(IndexerConfig.full_index()),
            "b": ProvenanceIndexer(IndexerConfig.partial_index(pool_size=5)),
        }
        results = replay_many(make_stream(30), engines, checkpoint_every=10)
        positions_a = [p.messages_seen for p in results["a"]]
        positions_b = [p.messages_seen for p in results["b"]]
        assert positions_a == positions_b == [10, 20, 30]

    def test_generator_input_materialised_once(self):
        engines = {
            "a": ProvenanceIndexer(IndexerConfig()),
            "b": ProvenanceIndexer(IndexerConfig()),
        }
        results = replay_many(iter(make_stream(10)), engines,
                              checkpoint_every=4)
        assert results["a"][-1].messages_seen == 10
        assert engines["a"].stats.messages_ingested == 10
        assert engines["b"].stats.messages_ingested == 10

    def test_bounded_engine_smaller_pool(self):
        engines = {
            "full": ProvenanceIndexer(IndexerConfig.full_index()),
            "partial": ProvenanceIndexer(
                IndexerConfig.partial_index(pool_size=3)),
        }
        results = replay_many(make_stream(60), engines, checkpoint_every=30)
        assert (results["partial"][-1].bundle_count
                <= results["full"][-1].bundle_count)
