"""Tests for the event burst/cascade model."""

from __future__ import annotations

import random

import pytest

from repro.stream.events import (MAX_TEXT_LENGTH, ActiveEvent, EventSpec,
                                 PublishedMessage)
from repro.stream.vocab import Vocabulary
from tests.conftest import BASE_DATE


@pytest.fixture
def spec() -> EventSpec:
    return EventSpec(
        event_id=1,
        theme="baseball",
        name="test-game",
        start=BASE_DATE,
        duration=6 * 3600.0,
        volume=50,
        rt_prob=0.4,
        hashtag_prob=0.9,
        url_prob=0.5,
        topic_words=("yankees", "redsox", "stadium", "inning", "pitcher"),
        hashtags=("redsox", "mlb"),
        urls=("bit.ly/aaaaa", "ow.ly/bbbbb"),
        core_users=("beat_writer", "superfan"),
    )


@pytest.fixture
def event(spec) -> ActiveEvent:
    return ActiveEvent(spec, Vocabulary.default())


class TestSampleTimes:
    def test_volume_exact(self, spec):
        times = spec.sample_times(random.Random(1))
        assert len(times) == spec.volume

    def test_times_within_window(self, spec):
        times = spec.sample_times(random.Random(2))
        assert all(spec.start <= t <= spec.start + spec.duration
                   for t in times)

    def test_burst_front_loaded(self, spec):
        """Gamma(2) rise-decay: well over half the mass lands in the first
        half of the lifetime."""
        times = spec.sample_times(random.Random(3))
        midpoint = spec.start + spec.duration / 2
        early = sum(1 for t in times if t < midpoint)
        assert early > 0.6 * len(times)

    def test_deterministic(self, spec):
        assert spec.sample_times(random.Random(4)) == spec.sample_times(
            random.Random(4))


class TestCompose:
    def test_original_within_length_limit(self, event):
        rng = random.Random(1)
        for _ in range(50):
            assert len(event.compose_original(rng)) <= MAX_TEXT_LENGTH

    def test_original_contains_topic_words(self, event):
        text = event.compose_original(random.Random(2))
        assert any(word in text for word in event.spec.topic_words)

    def test_retweet_has_rt_marker(self, event):
        parent = PublishedMessage(0, "beat_writer", BASE_DATE, "big news")
        text = event.compose_retweet(parent, random.Random(3))
        assert "RT @beat_writer:" in text

    def test_retweet_within_length_limit(self, event):
        parent = PublishedMessage(0, "author", BASE_DATE, "word " * 40)
        for seed in range(10):
            text = event.compose_retweet(parent, random.Random(seed))
            assert len(text) <= MAX_TEXT_LENGTH


class TestCascade:
    def test_pick_parent_empty_event(self, event):
        assert event.pick_parent(random.Random(1)) is None

    def test_pick_parent_returns_published(self, event):
        event.record(0, "u0", BASE_DATE, "text0")
        event.record(1, "u1", BASE_DATE + 60, "text1")
        parent = event.pick_parent(random.Random(2))
        assert parent is not None
        assert parent.msg_id in {0, 1}

    def test_pick_parent_increments_children(self, event):
        event.record(0, "u0", BASE_DATE, "text0")
        parent = event.pick_parent(random.Random(3))
        assert parent.children == 1

    def test_preferential_attachment(self, event):
        """A message with many children attracts more future re-shares."""
        event.record(0, "hub", BASE_DATE, "hub text")
        event.record(1, "leaf", BASE_DATE + 10, "leaf text")
        event.published[0].children = 50
        rng = random.Random(4)
        picks = [event.pick_parent(rng).msg_id for _ in range(100)]
        assert picks.count(0) > picks.count(1)

    def test_pick_author_prefers_core_users(self, event):
        rng = random.Random(5)
        authors = [event.pick_author(rng, "fallback") for _ in range(200)]
        core = sum(1 for a in authors if a in event.spec.core_users)
        assert core > 80  # ~60% expected
