"""Tests for the synthetic stream generator."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import StreamError
from repro.stream.generator import (StreamConfig, StreamGenerator,
                                    make_event_spec)
from repro.stream.users import UserPool
from repro.stream.vocab import ShortUrlFactory


@pytest.fixture(scope="module")
def stream():
    config = StreamConfig(days=1.0, messages_per_day=1500, seed=5,
                          user_count=300, events_per_day=6.0)
    return StreamGenerator(config).generate_list()


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"days": 0},
        {"messages_per_day": 0},
        {"noise_fraction": 1.0},
        {"noise_fraction": -0.1},
        {"user_count": 0},
        {"events_per_day": -1.0},
        {"rt_prob": 1.5},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(StreamError):
            StreamConfig(**kwargs)

    def test_total_messages(self):
        config = StreamConfig(days=2.0, messages_per_day=100)
        assert config.total_messages == 200

    def test_end_date(self):
        config = StreamConfig(days=1.0)
        assert config.end_date == config.start_date + 86400.0


class TestGeneratedStream:
    def test_exact_message_count(self, stream):
        assert len(stream) == 1500

    def test_date_ordered(self, stream):
        dates = [m.date for m in stream]
        assert dates == sorted(dates)

    def test_ids_sequential(self, stream):
        assert [m.msg_id for m in stream] == list(range(len(stream)))

    def test_dates_within_window(self, stream):
        config = StreamConfig(days=1.0, messages_per_day=1500, seed=5,
                              user_count=300, events_per_day=6.0)
        assert all(config.start_date <= m.date < config.end_date
                   for m in stream)

    def test_deterministic_under_seed(self):
        config = StreamConfig(days=0.5, messages_per_day=400, seed=9,
                              user_count=100)
        first = StreamGenerator(config).generate_list()
        second = StreamGenerator(config).generate_list()
        assert first == second

    def test_different_seeds_differ(self):
        base = dict(days=0.5, messages_per_day=400, user_count=100)
        a = StreamGenerator(StreamConfig(seed=1, **base)).generate_list()
        b = StreamGenerator(StreamConfig(seed=2, **base)).generate_list()
        assert a != b

    def test_noise_fraction_roughly_respected(self, stream):
        unlabelled = sum(1 for m in stream if m.event_id is None)
        fraction = unlabelled / len(stream)
        assert 0.10 < fraction < 0.45  # target 0.25, volumes are stochastic

    def test_retweets_exist_with_ground_truth_parents(self, stream):
        retweets = [m for m in stream if m.parent_id is not None]
        assert retweets
        by_id = {m.msg_id: m for m in stream}
        for message in retweets:
            parent = by_id[message.parent_id]
            assert parent.date <= message.date
            assert parent.event_id == message.event_id

    def test_rt_text_marks_parent_author(self, stream):
        by_id = {m.msg_id: m for m in stream}
        retweets = [m for m in stream if m.parent_id is not None]
        sampled = retweets[:50]
        for message in sampled:
            parent = by_id[message.parent_id]
            assert parent.user in message.rt_users

    def test_event_messages_share_indicants(self, stream):
        """Messages of one event must overlap on hashtags or URLs often
        enough for provenance discovery to have a signal."""
        from collections import defaultdict
        by_event = defaultdict(list)
        for message in stream:
            if message.event_id is not None:
                by_event[message.event_id].append(message)
        big_events = [msgs for msgs in by_event.values() if len(msgs) >= 10]
        assert big_events
        for msgs in big_events:
            tagged = sum(1 for m in msgs if m.hashtags)
            assert tagged / len(msgs) > 0.4

    def test_iter_protocol(self):
        config = StreamConfig(days=0.2, messages_per_day=100, seed=3,
                              user_count=50)
        assert len(list(StreamGenerator(config))) == 20

    def test_event_specs_exposed_after_generation(self, stream):
        config = StreamConfig(days=1.0, messages_per_day=1500, seed=5,
                              user_count=300, events_per_day=6.0)
        generator = StreamGenerator(config)
        generator.generate_list()
        specs = generator.event_specs()
        assert specs
        assert len({spec.event_id for spec in specs}) == len(specs)


class TestMakeEventSpec:
    def _deps(self):
        rng = random.Random(1)
        return rng, UserPool.generate(20, rng), ShortUrlFactory(rng)

    def test_unknown_theme_rejected(self):
        rng, users, urls = self._deps()
        with pytest.raises(StreamError):
            make_event_spec(event_id=0, theme="nope", name="x",
                            start=0.0, duration_hours=1.0, volume=5,
                            rng=rng, users=users, url_factory=urls)

    def test_spec_fields_populated(self):
        rng, users, urls = self._deps()
        spec = make_event_spec(event_id=3, theme="tsunami", name="samoa",
                               start=100.0, duration_hours=2.0, volume=9,
                               rng=rng, users=users, url_factory=urls)
        assert spec.event_id == 3
        assert spec.topic_words and spec.hashtags and spec.urls
        assert spec.core_users
        assert spec.duration == pytest.approx(7200.0)


class TestExtraEvents:
    def test_injected_event_appears_in_stream(self):
        rng = random.Random(1)
        users = UserPool.generate(20, rng)
        urls = ShortUrlFactory(rng)
        config_base = StreamConfig(days=1.0, messages_per_day=500, seed=2,
                                   user_count=100, events_per_day=2.0)
        spec = make_event_spec(
            event_id=900, theme="tsunami", name="samoa-tsunami",
            start=config_base.start_date + 3600.0, duration_hours=5.0,
            volume=40, rng=rng, users=users, url_factory=urls)
        config = StreamConfig(days=1.0, messages_per_day=500, seed=2,
                              user_count=100, events_per_day=2.0,
                              extra_events=(spec,))
        stream = StreamGenerator(config).generate_list()
        labelled = [m for m in stream if m.event_id == 900]
        assert len(labelled) == 40
