"""Tests for the JSONL crawler-format adapter."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import StreamError
from repro.stream.jsonl import (iter_jsonl, load_jsonl, record_to_message,
                                save_jsonl)
from tests.conftest import BASE_DATE, make_message


class TestRecordToMessage:
    def test_full_record(self):
        message = record_to_message({
            "id": 5, "user": {"screen_name": "Alice"},
            "created_at": BASE_DATE, "text": "hi #tag",
        })
        assert message.msg_id == 5
        assert message.user == "alice"
        assert message.hashtags == frozenset({"tag"})

    def test_flat_user_field(self):
        message = record_to_message({
            "id": 1, "screen_name": "bob", "created_at": BASE_DATE,
            "text": "x",
        })
        assert message.user == "bob"

    def test_id_str_accepted(self):
        message = record_to_message({
            "id_str": "42", "user": "u", "created_at": BASE_DATE,
            "text": "x",
        })
        assert message.msg_id == 42

    def test_timestamp_alias(self):
        message = record_to_message({
            "id": 1, "user": "u", "timestamp": str(BASE_DATE), "text": "x",
        })
        assert message.date == BASE_DATE

    def test_labels_carried(self):
        message = record_to_message({
            "id": 1, "user": "u", "created_at": BASE_DATE, "text": "x",
            "event_id": 7, "parent_id": 0,
        })
        assert message.event_id == 7 and message.parent_id == 0

    @pytest.mark.parametrize("missing", ["id", "user", "created_at", "text"])
    def test_missing_fields_rejected(self, missing):
        record = {"id": 1, "user": "u", "created_at": BASE_DATE,
                  "text": "x"}
        del record[missing]
        with pytest.raises(StreamError):
            record_to_message(record)

    def test_bad_id_rejected_with_line(self):
        with pytest.raises(StreamError, match="line 3"):
            record_to_message({"id": "xyz", "user": "u",
                               "created_at": 0.0, "text": "x"}, line_no=3)


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        messages = [
            make_message(0, "hello #world"),
            make_message(1, "RT @alice: hello", user="bob", hours=1,
                         event_id=2, parent_id=0),
        ]
        path = tmp_path / "crawl.jsonl"
        assert save_jsonl(messages, path) == 2
        assert load_jsonl(path) == messages

    def test_unicode_and_quotes_survive(self, tmp_path):
        message = make_message(0, 'sáy "hí" \\ there')
        path = tmp_path / "crawl.jsonl"
        save_jsonl([message], path)
        assert load_jsonl(path)[0].text == message.text

    def test_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        save_jsonl([make_message(0, "x")], path)
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_iter_is_lazy(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        save_jsonl([make_message(i, f"m{i}", user=f"u{i}", hours=i * 0.1)
                    for i in range(4)], path)
        iterator = iter_jsonl(path)
        assert next(iterator).msg_id == 0

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "crawl.jsonl"
        save_jsonl([make_message(0, "x")], path)
        with path.open("a") as handle:
            handle.write("\n\n")
        assert len(load_jsonl(path)) == 1


class TestErrors:
    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": 1, broken\n')
        with pytest.raises(StreamError, match=":1"):
            load_jsonl(path)

    def test_non_object_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(StreamError):
            load_jsonl(path)

    def test_tsv_jsonl_equivalence(self, tmp_path, tiny_stream):
        """Both adapters reconstruct the identical stream."""
        from repro.stream.dataset import load_tsv, save_tsv

        sample = tiny_stream[:100]
        save_tsv(sample, tmp_path / "a.tsv")
        save_jsonl(sample, tmp_path / "a.jsonl")
        assert load_tsv(tmp_path / "a.tsv") == load_jsonl(
            tmp_path / "a.jsonl")
