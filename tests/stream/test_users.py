"""Tests for the synthetic user population."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.stream.users import UserPool, generate_handles


class TestGenerateHandles:
    def test_count_and_uniqueness(self):
        handles = generate_handles(500, random.Random(1))
        assert len(handles) == 500
        assert len(set(handles)) == 500

    def test_deterministic(self):
        assert generate_handles(20, random.Random(5)) == generate_handles(
            20, random.Random(5))

    def test_handles_are_plausible(self):
        for handle in generate_handles(50, random.Random(2)):
            assert handle
            assert " " not in handle


class TestUserPool:
    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            UserPool([])

    def test_generate_and_len(self):
        pool = UserPool.generate(100, random.Random(1))
        assert len(pool) == 100

    def test_sample_author_from_pool(self):
        pool = UserPool.generate(50, random.Random(1))
        rng = random.Random(2)
        for _ in range(20):
            assert pool.sample_author(rng) in pool.handles

    def test_activity_is_skewed(self):
        pool = UserPool.generate(100, random.Random(1), s=1.0)
        rng = random.Random(3)
        counts = Counter(pool.sample_author(rng) for _ in range(5000))
        top = counts.most_common(10)
        # top-10 accounts produce a disproportionate share of posts
        assert sum(c for _, c in top) > 0.25 * 5000

    def test_sample_distinct_returns_unique(self):
        pool = UserPool.generate(30, random.Random(1))
        picked = pool.sample_distinct(random.Random(4), 10)
        assert len(picked) == 10
        assert len(set(picked)) == 10

    def test_sample_distinct_caps_at_pool_size(self):
        pool = UserPool(["a", "b", "c"])
        picked = pool.sample_distinct(random.Random(1), 10)
        assert sorted(picked) == ["a", "b", "c"]
