"""Tests for sliding-window monitoring and burst alarms."""

from __future__ import annotations

import pytest

from repro.stream.window import SlidingWindowMonitor
from tests.conftest import make_message

HOUR = 3600.0


def feed(monitor, messages):
    alarms = []
    for message in messages:
        alarms.extend(monitor.observe(message))
    return alarms


class TestValidation:
    def test_short_must_be_less_than_long(self):
        with pytest.raises(ValueError):
            SlidingWindowMonitor(short_window=HOUR, long_window=HOUR)

    def test_positive_windows(self):
        with pytest.raises(ValueError):
            SlidingWindowMonitor(short_window=0, long_window=HOUR)

    def test_burst_ratio_above_one(self):
        with pytest.raises(ValueError):
            SlidingWindowMonitor(burst_ratio=1.0)

    def test_min_count_positive(self):
        with pytest.raises(ValueError):
            SlidingWindowMonitor(min_count=0)


class TestWindowing:
    def test_long_window_expiry(self):
        monitor = SlidingWindowMonitor(short_window=HOUR,
                                       long_window=4 * HOUR)
        feed(monitor, [make_message(i, "x #a", user=f"u{i}", hours=i)
                       for i in range(10)])
        # only messages within the last 4h remain
        assert len(monitor) <= 5

    def test_message_rate(self):
        monitor = SlidingWindowMonitor(short_window=HOUR,
                                       long_window=4 * HOUR)
        feed(monitor, [make_message(i, "x", user=f"u{i}", hours=9 + i * 0.1)
                       for i in range(5)])
        # 5 messages within the last half hour < short window of 1h
        assert monitor.message_rate(per=HOUR) == pytest.approx(5.0)

    def test_top_hashtags(self):
        monitor = SlidingWindowMonitor()
        feed(monitor, [make_message(i, "#hot topic", user=f"u{i}",
                                    hours=i * 0.01) for i in range(4)])
        assert monitor.top_hashtags(1) == [("hot", 4)]


class TestBurstAlarms:
    def _burst_stream(self):
        # 6 hours of background #slow chatter, then a dense #boom burst.
        background = [make_message(i, "chat #slow", user=f"u{i}",
                                   hours=i * 0.5) for i in range(12)]
        burst = [make_message(100 + i, "breaking #boom", user=f"b{i}",
                              hours=6.0 + i * 0.02) for i in range(10)]
        return background + burst

    def test_burst_detected(self):
        monitor = SlidingWindowMonitor(short_window=0.5 * HOUR,
                                       long_window=6 * HOUR,
                                       burst_ratio=3.0, min_count=5)
        alarms = feed(monitor, self._burst_stream())
        assert any(alarm.hashtag == "boom" for alarm in alarms)

    def test_steady_tag_never_alarms(self):
        monitor = SlidingWindowMonitor(short_window=0.5 * HOUR,
                                       long_window=6 * HOUR,
                                       burst_ratio=3.0, min_count=5)
        steady = [make_message(i, "chat #slow", user=f"u{i}",
                               hours=i * 0.25) for i in range(48)]
        alarms = feed(monitor, steady)
        assert all(alarm.hashtag != "slow" for alarm in alarms)

    def test_alarm_fires_once_per_burst(self):
        monitor = SlidingWindowMonitor(short_window=0.5 * HOUR,
                                       long_window=6 * HOUR,
                                       burst_ratio=3.0, min_count=5)
        alarms = feed(monitor, self._burst_stream())
        boom_alarms = [a for a in alarms if a.hashtag == "boom"]
        assert len(boom_alarms) == 1

    def test_alarm_carries_counts(self):
        monitor = SlidingWindowMonitor(short_window=0.5 * HOUR,
                                       long_window=6 * HOUR,
                                       burst_ratio=3.0, min_count=5)
        alarms = feed(monitor, self._burst_stream())
        alarm = next(a for a in alarms if a.hashtag == "boom")
        assert alarm.short_count >= 5
        assert alarm.ratio > 3.0

    def test_min_count_suppresses_tiny_bursts(self):
        monitor = SlidingWindowMonitor(short_window=0.5 * HOUR,
                                       long_window=6 * HOUR,
                                       burst_ratio=3.0, min_count=50)
        alarms = feed(monitor, self._burst_stream())
        assert alarms == []
