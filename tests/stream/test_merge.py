"""Tests for multi-source stream merging."""

from __future__ import annotations

import pytest

from repro.core.errors import StreamError
from repro.stream.merge import (deduplicate_stream, merge_streams,
                                renumber_stream)
from tests.conftest import make_message


def stream_a():
    return [make_message(0, "a0", hours=0.0),
            make_message(2, "a2", user="x", hours=2.0),
            make_message(4, "a4", user="y", hours=4.0)]


def stream_b():
    return [make_message(1, "b1", user="p", hours=1.0),
            make_message(3, "b3", user="q", hours=3.0)]


class TestMergeStreams:
    def test_interleaves_by_date(self):
        merged = list(merge_streams(stream_a(), stream_b()))
        assert [m.msg_id for m in merged] == [0, 1, 2, 3, 4]

    def test_single_source_passthrough(self):
        assert list(merge_streams(stream_a())) == stream_a()

    def test_empty_sources(self):
        assert list(merge_streams([], [])) == []
        assert list(merge_streams()) == []

    def test_three_sources(self):
        extra = [make_message(9, "c", user="z", hours=0.5)]
        merged = list(merge_streams(stream_a(), stream_b(), extra))
        dates = [m.date for m in merged]
        assert dates == sorted(dates)
        assert len(merged) == 6

    def test_unordered_source_rejected(self):
        bad = [make_message(0, "late", hours=5.0),
               make_message(1, "early", user="b", hours=1.0)]
        with pytest.raises(StreamError, match="source 1"):
            list(merge_streams(stream_a(), bad))

    def test_equal_dates_tie_break_by_id(self):
        left = [make_message(5, "x", hours=1.0)]
        right = [make_message(3, "y", user="b", hours=1.0)]
        merged = list(merge_streams(left, right))
        assert [m.msg_id for m in merged] == [3, 5]

    def test_lazy_evaluation(self):
        def infinite():
            index = 0
            while True:
                yield make_message(index, f"m{index}", user="i",
                                   hours=index * 0.1)
                index += 1

        merged = merge_streams(infinite())
        assert next(merged).msg_id == 0
        assert next(merged).msg_id == 1


class TestDeduplicate:
    def test_first_occurrence_wins(self):
        first = make_message(1, "original", hours=0)
        second = make_message(1, "copy", hours=0)
        result = list(deduplicate_stream([first, second]))
        assert result == [first]

    def test_distinct_ids_kept(self):
        result = list(deduplicate_stream(stream_a()))
        assert len(result) == 3


class TestRenumber:
    def test_dense_ids_in_order(self):
        merged = list(merge_streams(stream_a(), stream_b()))
        renumbered = list(renumber_stream(merged))
        assert [m.msg_id for m in renumbered] == [0, 1, 2, 3, 4]

    def test_parent_links_remapped(self):
        stream = [
            make_message(10, "root", hours=0),
            make_message(20, "child", user="b", hours=1, parent_id=10),
        ]
        renumbered = list(renumber_stream(stream))
        assert renumbered[0].msg_id == 0
        assert renumbered[1].parent_id == 0

    def test_dangling_parent_dropped(self):
        stream = [make_message(5, "orphan", parent_id=999)]
        renumbered = list(renumber_stream(stream))
        assert renumbered[0].parent_id is None

    def test_merged_pipeline_indexable(self):
        """The full pipeline: merge → dedup → renumber → ingest."""
        from repro.core.config import IndexerConfig
        from repro.core.engine import ProvenanceIndexer

        # second source: one clashing id (0) and two fresh ones
        other = [make_message(0, "dup of zero", user="o", hours=0.0),
                 make_message(7, "fresh seven", user="o", hours=0.6),
                 make_message(8, "fresh eight", user="o", hours=2.5)]
        pipeline = list(renumber_stream(deduplicate_stream(
            merge_streams(stream_a(), other))))
        # 3 + 3 merged, minus the duplicate id 0
        assert len(pipeline) == 5
        assert [m.msg_id for m in pipeline] == [0, 1, 2, 3, 4]
        indexer = ProvenanceIndexer(IndexerConfig())
        for message in pipeline:
            indexer.ingest(message)
        assert indexer.stats.messages_ingested == 5
