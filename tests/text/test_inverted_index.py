"""Tests for the document-level inverted index."""

from __future__ import annotations

import pytest

from repro.text.analyzer import Analyzer
from repro.text.inverted_index import InvertedIndex


@pytest.fixture
def index() -> InvertedIndex:
    return InvertedIndex(Analyzer())


class TestAddDocument:
    def test_add_and_stats(self, index):
        length = index.add_document(100, "yankees win the game")
        assert length == 3  # 'the' is a stopword
        assert index.doc_count == 1
        assert 100 in index

    def test_doc_frequency(self, index):
        index.add_document(1, "game tonight")
        index.add_document(2, "game tomorrow")
        assert index.doc_frequency("game") == 2
        assert index.doc_frequency("tonight") == 1
        assert index.doc_frequency("unseen") == 0

    def test_duplicate_external_id_rejected(self, index):
        index.add_document(1, "x game")
        with pytest.raises(ValueError):
            index.add_document(1, "y game")

    def test_average_doc_length(self, index):
        index.add_document(1, "game tonight stadium")   # 3 terms
        index.add_document(2, "game")                    # 1 term
        assert index.average_doc_length == pytest.approx(2.0)

    def test_empty_index_average_is_zero(self, index):
        assert index.average_doc_length == 0.0

    def test_positions_stored(self, index):
        # Positions index into the *analyzed* term sequence.
        index.add_document(1, "game tonight game")
        plist = index.postings("game")
        internal = index.internal_id(1)
        assert plist.get(internal).positions == [0, 2]

    def test_positions_can_be_disabled(self):
        index = InvertedIndex(Analyzer(), store_positions=False)
        index.add_document(1, "game tonight game")
        internal = index.internal_id(1)
        assert index.postings("game").get(internal).positions == []

    def test_add_terms_pre_analyzed(self, index):
        index.add_terms(5, ["alpha", "beta", "alpha"])
        assert index.doc_frequency("alpha") == 1
        assert index.doc_length(5) == 3


class TestRemoveDocument:
    def test_remove_clears_postings(self, index):
        index.add_document(1, "solo term")
        assert index.remove_document(1)
        assert index.doc_count == 0
        assert index.doc_frequency("solo") == 0
        assert index.term_count == 0

    def test_remove_missing_returns_false(self, index):
        assert not index.remove_document(9)

    def test_remove_keeps_other_docs(self, index):
        index.add_document(1, "shared term")
        index.add_document(2, "shared words")
        index.remove_document(1)
        assert index.doc_frequency("shared") == 1
        assert 2 in index

    def test_total_length_updated(self, index):
        index.add_document(1, "alpha beta")
        index.add_document(2, "gamma")
        index.remove_document(1)
        assert index.average_doc_length == pytest.approx(1.0)


class TestIdMapping:
    def test_round_trip(self, index):
        index.add_document(77, "hello world")
        internal = index.internal_id(77)
        assert index.external_id(internal) == 77

    def test_internal_id_missing(self, index):
        assert index.internal_id(123) is None

    def test_doc_length_by_external(self, index):
        index.add_document(4, "stadium crowd ovation")
        assert index.doc_length(4) == 3
        assert index.doc_length(999) == 0

    def test_terms_iterable(self, index):
        index.add_document(1, "alpha beta")
        assert sorted(index.terms()) == ["alpha", "beta"]
