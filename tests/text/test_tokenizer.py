"""Tests for the micro-blog tokenizer."""

from __future__ import annotations

from repro.text.tokenizer import Token, TokenType, tokenize, word_tokens


class TestTokenize:
    def test_simple_words(self):
        tokens = tokenize("Lester down tonight")
        assert [t.text for t in tokens] == ["Lester", "down", "tonight"]
        assert all(t.kind is TokenType.WORD for t in tokens)

    def test_hashtag_is_single_token(self):
        tokens = tokenize("go #redsox go")
        assert tokens[1].text == "#redsox"
        assert tokens[1].kind is TokenType.HASHTAG

    def test_mention_token(self):
        tokens = tokenize("thanks @user")
        assert tokens[1].kind is TokenType.MENTION
        assert tokens[1].text == "@user"

    def test_url_token_full(self):
        tokens = tokenize("look http://bit.ly/Uvcpr now")
        assert tokens[1].kind is TokenType.URL
        assert tokens[1].text == "http://bit.ly/Uvcpr"

    def test_bare_shortener_is_url(self):
        tokens = tokenize("pic twitpic.com/abc here")
        assert tokens[1].kind is TokenType.URL

    def test_number_token(self):
        tokens = tokenize("score 7 to 3.5")
        kinds = [t.kind for t in tokens]
        assert kinds.count(TokenType.NUMBER) == 2

    def test_positions_are_sequential(self):
        tokens = tokenize("a b c #d")
        assert [t.position for t in tokens] == [0, 1, 2, 3]

    def test_apostrophe_words(self):
        tokens = tokenize("can't believe it")
        assert tokens[0].text == "can't"

    def test_trailing_punctuation_stripped_from_url(self):
        tokens = tokenize("see http://x.com/a.")
        assert tokens[-1].text == "http://x.com/a"

    def test_empty_string(self):
        assert tokenize("") == []

    def test_punctuation_only(self):
        assert tokenize("!!! ... ???") == []

    def test_tokens_are_value_objects(self):
        assert Token("a", TokenType.WORD, 0) == Token("a", TokenType.WORD, 0)


class TestWordTokens:
    def test_words_lowercased(self):
        assert list(word_tokens("Lester DOWN")) == ["lester", "down"]

    def test_hashtag_bodies_included(self):
        assert list(word_tokens("go #RedSox")) == ["go", "redsox"]

    def test_mentions_and_urls_excluded(self):
        words = list(word_tokens("hi @user http://x.com/y"))
        assert words == ["hi"]

    def test_numbers_excluded(self):
        assert list(word_tokens("top 10 list")) == ["top", "list"]
