"""Tests for the boolean query language and its SearchEngine integration."""

from __future__ import annotations

import pytest

from repro.core.errors import QueryError
from repro.text.query_parser import (And, Field, Not, Or, Phrase, Term,
                                     evaluate, parse_query)
from repro.text.search import SearchEngine
from tests.conftest import make_message


class TestParsing:
    def test_single_term(self):
        assert parse_query("yankees") == Term("yankees")

    def test_implicit_and(self):
        node = parse_query("yankee redsox")
        assert isinstance(node, And)
        assert node.children == (Term("yankee"), Term("redsox"))

    def test_explicit_and_keyword(self):
        assert parse_query("a AND b") == parse_query("a b")

    def test_or_expression(self):
        node = parse_query("a OR b")
        assert isinstance(node, Or)

    def test_and_binds_tighter_than_or(self):
        node = parse_query("a b OR c")
        assert isinstance(node, Or)
        assert isinstance(node.children[0], And)

    def test_not(self):
        node = parse_query("NOT noise")
        assert node == Not(Term("noise"))

    def test_parentheses(self):
        node = parse_query("(a OR b) c")
        assert isinstance(node, And)
        assert isinstance(node.children[0], Or)

    def test_phrase(self):
        assert parse_query('"yankee stadium"') == Phrase("yankee stadium")

    def test_field_filters(self):
        assert parse_query("user:Alice") == Field("user", "alice")
        assert parse_query("tag:RedSox") == Field("tag", "redsox")
        assert parse_query("url:bit.ly/X") == Field("url", "bit.ly/x")

    def test_hash_shorthand(self):
        assert parse_query("#redsox") == Field("tag", "redsox")

    def test_unknown_field_is_plain_term(self):
        assert parse_query("foo:bar") == Term("foo:bar")

    def test_case_insensitive_keywords(self):
        assert isinstance(parse_query("a or b"), Or)
        assert parse_query("not x") == Not(Term("x"))

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            parse_query("   ")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(QueryError):
            parse_query("(a OR b")
        with pytest.raises(QueryError):
            parse_query("a ) b")

    def test_trailing_not_rejected(self):
        with pytest.raises(QueryError):
            parse_query("a NOT")

    def test_empty_field_value_rejected(self):
        with pytest.raises(QueryError):
            parse_query("user:")

    def test_nested_query(self):
        node = parse_query('("big game" OR playoffs) NOT user:spam')
        assert isinstance(node, And)


class _FakeTarget:
    """Minimal QueryTarget over explicit id sets."""

    def __init__(self):
        self.universe = {1, 2, 3, 4, 5}
        self.terms = {"a": {1, 2}, "b": {2, 3}, "c": {4}}
        self.phrases = {"x y": {5}}
        self.fields = {("user", "alice"): {1, 5}}

    def all_ids(self):
        return set(self.universe)

    def ids_for_term(self, term):
        return set(self.terms.get(term, set()))

    def ids_for_phrase(self, phrase):
        return set(self.phrases.get(phrase, set()))

    def ids_for_field(self, name, value):
        return set(self.fields.get((name, value), set()))


class TestEvaluate:
    def test_and(self):
        assert evaluate(parse_query("a b"), _FakeTarget()) == {2}

    def test_or(self):
        assert evaluate(parse_query("a OR c"), _FakeTarget()) == {1, 2, 4}

    def test_not(self):
        assert evaluate(parse_query("NOT a"), _FakeTarget()) == {3, 4, 5}

    def test_and_not(self):
        assert evaluate(parse_query("b NOT a"), _FakeTarget()) == {3}

    def test_phrase(self):
        assert evaluate(parse_query('"x y"'), _FakeTarget()) == {5}

    def test_field(self):
        assert evaluate(parse_query("user:alice"), _FakeTarget()) == {1, 5}

    def test_complex(self):
        result = evaluate(parse_query("(a OR b) NOT user:alice"),
                          _FakeTarget())
        assert result == {2, 3}

    def test_empty_and_short_circuits(self):
        assert evaluate(parse_query("a zzz"), _FakeTarget()) == set()


class TestSearchEngineIntegration:
    @pytest.fixture
    def engine(self) -> SearchEngine:
        engine = SearchEngine()
        engine.add_all([
            make_message(0, "yankee stadium ovation #redsox",
                         user="amalie"),
            make_message(1, "ugh #redsox", user="steve", hours=0.5),
            make_message(2, "market rally stocks up bit.ly/fin",
                         user="trader", hours=1.0),
            make_message(3, "yankee game plans with friends", user="amalie",
                         hours=1.5),
        ])
        return engine

    def test_term_and(self, engine):
        matched = engine.search_query("yankee stadium")
        assert [m.msg_id for m in matched] == [0]

    def test_or_query(self, engine):
        matched = engine.search_query("stadium OR market")
        assert {m.msg_id for m in matched} == {0, 2}

    def test_not_query(self, engine):
        matched = engine.search_query("#redsox NOT stadium")
        assert {m.msg_id for m in matched} == {1}

    def test_user_filter(self, engine):
        matched = engine.search_query("user:amalie yankee")
        assert {m.msg_id for m in matched} == {0, 3}

    def test_url_filter(self, engine):
        matched = engine.search_query("url:bit.ly/fin")
        assert [m.msg_id for m in matched] == [2]

    def test_phrase_query(self, engine):
        matched = engine.search_query('"yankee stadium"')
        assert [m.msg_id for m in matched] == [0]

    def test_results_newest_first(self, engine):
        matched = engine.search_query("yankee OR market OR #redsox")
        dates = [m.date for m in matched]
        assert dates == sorted(dates, reverse=True)

    def test_analyzed_term_matching(self, engine):
        # "games" stems to "game" which appears in message 3.
        matched = engine.search_query("games")
        assert {m.msg_id for m in matched} == {3}

    def test_k_limits(self, engine):
        assert len(engine.search_query("#redsox OR yankee", k=1)) == 1
