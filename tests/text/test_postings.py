"""Tests for postings lists and boolean merge operations."""

from __future__ import annotations

import pytest

from repro.text.postings import (Posting, PostingsList, intersect_postings,
                                 union_postings)


def build(doc_ids: list[int]) -> PostingsList:
    plist = PostingsList()
    for doc_id in doc_ids:
        plist.add(doc_id)
    return plist


class TestPosting:
    def test_add_occurrence_counts(self):
        posting = Posting(1)
        posting.add_occurrence(0)
        posting.add_occurrence(5)
        assert posting.term_freq == 2
        assert posting.positions == [0, 5]

    def test_occurrence_without_position(self):
        posting = Posting(1)
        posting.add_occurrence()
        assert posting.term_freq == 1
        assert posting.positions == []


class TestPostingsList:
    def test_add_in_order(self):
        plist = build([1, 3, 7])
        assert plist.doc_ids() == [1, 3, 7]
        assert plist.doc_freq == 3

    def test_readd_same_doc_bumps_freq(self):
        plist = PostingsList()
        plist.add(1, 0)
        plist.add(1, 4)
        assert plist.doc_freq == 1
        assert plist.get(1).term_freq == 2

    def test_out_of_order_rejected(self):
        plist = build([5])
        with pytest.raises(ValueError):
            plist.add(3)

    def test_contains(self):
        plist = build([1, 2])
        assert 1 in plist and 9 not in plist

    def test_remove_existing(self):
        plist = build([1, 2, 3])
        assert plist.remove(2)
        assert plist.doc_ids() == [1, 3]
        assert 2 not in plist

    def test_remove_missing_returns_false(self):
        assert not build([1]).remove(9)

    def test_iteration_yields_postings(self):
        plist = build([1, 2])
        assert [p.doc_id for p in plist] == [1, 2]


class TestIntersect:
    def test_common_docs(self):
        lists = [build([1, 2, 3]), build([2, 3, 4]), build([2, 3, 9])]
        assert intersect_postings(lists) == [2, 3]

    def test_disjoint(self):
        assert intersect_postings([build([1]), build([2])]) == []

    def test_empty_input(self):
        assert intersect_postings([]) == []

    def test_single_list(self):
        assert intersect_postings([build([4, 5])]) == [4, 5]


class TestUnion:
    def test_union_sorted_unique(self):
        assert union_postings([build([3, 5]), build([1, 3])]) == [1, 3, 5]

    def test_union_empty(self):
        assert union_postings([]) == []
