"""Tests for search-engine persistence."""

from __future__ import annotations

import pytest

from repro.core.errors import StorageError
from repro.text.analyzer import Analyzer
from repro.text.persistence import load_search_engine, save_search_engine
from repro.text.search import SearchEngine
from tests.conftest import make_message


@pytest.fixture
def engine(sample_messages) -> SearchEngine:
    engine = SearchEngine()
    engine.add_all(sample_messages)
    return engine


class TestRoundTrip:
    def test_corpus_preserved(self, engine, tmp_path):
        path = tmp_path / "index.json"
        assert save_search_engine(engine, path) == len(engine)
        restored = load_search_engine(path)
        assert len(restored) == len(engine)
        assert restored.all_ids() == engine.all_ids()

    def test_identical_search_results(self, engine, tmp_path):
        path = tmp_path / "index.json"
        save_search_engine(engine, path)
        restored = load_search_engine(path)
        for query in ("yankee redsox", "market stocks", "stadium"):
            original = [(h.message.msg_id, round(h.score, 9))
                        for h in engine.search(query)]
            reloaded = [(h.message.msg_id, round(h.score, 9))
                        for h in restored.search(query)]
            assert original == reloaded

    def test_field_maps_restored(self, engine, tmp_path):
        path = tmp_path / "index.json"
        save_search_engine(engine, path)
        restored = load_search_engine(path)
        assert restored.ids_for_field("tag", "redsox") == \
            engine.ids_for_field("tag", "redsox")
        assert restored.ids_for_field("user", "trader") == \
            engine.ids_for_field("user", "trader")

    def test_scorer_choice_preserved(self, sample_messages, tmp_path):
        engine = SearchEngine(scorer="tfidf")
        engine.add_all(sample_messages)
        path = tmp_path / "index.json"
        save_search_engine(engine, path)
        restored = load_search_engine(path)
        assert restored._scorer.__class__.__name__ == "TfIdfScorer"

    def test_analyzer_config_preserved(self, tmp_path):
        analyzer = Analyzer(
            stopwords=Analyzer().stopwords | frozenset({"customstop"}),
            min_length=4, stem=False)
        engine = SearchEngine(analyzer)
        engine.add(make_message(0, "customstop longword tiny"))
        path = tmp_path / "index.json"
        save_search_engine(engine, path)
        restored = load_search_engine(path)
        assert restored.analyzer.min_length == 4
        assert restored.analyzer.stem is False
        assert "customstop" in restored.analyzer.stopwords

    def test_restored_engine_accepts_new_documents(self, engine, tmp_path):
        path = tmp_path / "index.json"
        save_search_engine(engine, path)
        restored = load_search_engine(path)
        restored.add(make_message(99, "brand new content here", user="n",
                                  hours=9))
        assert restored.search("brand new content")

    def test_empty_engine_round_trip(self, tmp_path):
        path = tmp_path / "index.json"
        assert save_search_engine(SearchEngine(), path) == 0
        assert len(load_search_engine(path)) == 0


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_search_engine(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(StorageError):
            load_search_engine(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"v": 42}')
        with pytest.raises(StorageError):
            load_search_engine(path)
