"""Tests for TF-IDF and BM25 ranking."""

from __future__ import annotations

import pytest

from repro.text.analyzer import Analyzer
from repro.text.inverted_index import InvertedIndex
from repro.text.scoring import BM25Scorer, TfIdfScorer


@pytest.fixture
def index() -> InvertedIndex:
    index = InvertedIndex(Analyzer())
    index.add_document(0, "yankees win game tonight stadium")
    index.add_document(1, "yankees yankees yankees parade")
    index.add_document(2, "market rally stocks earnings")
    index.add_document(3, "game tonight plans dinner")
    return index


def external_ranking(index: InvertedIndex, scores: dict[int, float]) -> list[int]:
    ranked = sorted(scores.items(), key=lambda kv: -kv[1])
    return [index.external_id(doc) for doc, _ in ranked]


class TestTfIdf:
    def test_matching_docs_scored(self, index):
        scorer = TfIdfScorer(index)
        scores = scorer.score_all(["yankee"])
        assert len(scores) == 2

    def test_idf_zero_for_unseen(self, index):
        assert TfIdfScorer(index).idf("zzz") == 0.0

    def test_rare_term_scores_higher_than_common(self, index):
        scorer = TfIdfScorer(index)
        rare = max(scorer.score_all(["parade"]).values())
        common = max(scorer.score_all(["game"]).values())
        assert rare > common

    def test_unseen_query_returns_empty(self, index):
        assert TfIdfScorer(index).score_all(["zzz"]) == {}

    def test_repeated_query_terms_scale_score(self, index):
        scorer = TfIdfScorer(index)
        single = max(scorer.score_all(["parade"]).values())
        double = max(scorer.score_all(["parade", "parade"]).values())
        assert double == pytest.approx(2 * single)


class TestBM25:
    def test_scores_positive(self, index):
        scores = BM25Scorer(index).score_all(["yankee", "game"])
        assert scores and all(v > 0 for v in scores.values())

    def test_term_frequency_saturates(self, index):
        """Doc 1 has tf=3 for 'yankee' but must not score 3x doc 0."""
        scorer = BM25Scorer(index)
        scores = scorer.score_all(["yankee"])
        by_external = {index.external_id(k): v for k, v in scores.items()}
        assert by_external[1] < 3 * by_external[0]
        assert by_external[1] > by_external[0]  # but still more

    def test_idf_non_negative(self, index):
        scorer = BM25Scorer(index)
        for term in ("yankee", "game", "parade", "zzz"):
            assert scorer.idf(term) >= 0.0

    def test_invalid_k1_rejected(self, index):
        with pytest.raises(ValueError):
            BM25Scorer(index, k1=-1.0)

    @pytest.mark.parametrize("b", [-0.1, 1.1])
    def test_invalid_b_rejected(self, index, b):
        with pytest.raises(ValueError):
            BM25Scorer(index, b=b)

    def test_multi_term_beats_single_term_match(self, index):
        scorer = BM25Scorer(index)
        scores = scorer.score_all(["game", "stadium"])
        ranking = external_ranking(index, scores)
        assert ranking[0] == 0  # matches both terms

    def test_empty_query(self, index):
        assert BM25Scorer(index).score_all([]) == {}
