"""Tests for search-result highlighting."""

from __future__ import annotations

from repro.text.highlight import find_spans, highlight


class TestFindSpans:
    def test_simple_word(self):
        spans = find_spans("Lester down tonight", ["lester"])
        assert len(spans) == 1
        assert spans[0].start == 0 and spans[0].end == 6

    def test_analyzed_matching(self):
        # query "games" matches surface "game" via stemming
        spans = find_spans("great game tonight", ["games"])
        assert len(spans) == 1
        assert spans[0].term == "game"

    def test_hashtag_span_includes_sigil(self):
        spans = find_spans("go #redsox go", ["redsox"])
        assert len(spans) == 1
        text = "go #redsox go"
        assert text[spans[0].start:spans[0].end] == "#redsox"

    def test_multiple_occurrences(self):
        spans = find_spans("game after game after game", ["game"])
        assert len(spans) == 3

    def test_spans_ordered_non_overlapping(self):
        spans = find_spans("stadium game stadium", ["stadium", "game"])
        for first, second in zip(spans, spans[1:]):
            assert first.end <= second.start

    def test_no_match(self):
        assert find_spans("nothing here", ["zebra"]) == []

    def test_stopword_query_terms_ignored(self):
        assert find_spans("the game", ["the"]) == []

    def test_urls_not_highlighted(self):
        spans = find_spans("see bit.ly/game now", ["game"])
        assert spans == []


class TestHighlight:
    def test_wraps_matches(self):
        assert highlight("Lester down #redsox",
                         ["redsox", "lester"]) == "[Lester] down [#redsox]"

    def test_custom_markers(self):
        result = highlight("big game", ["game"], prefix="<b>",
                           suffix="</b>")
        assert result == "big <b>game</b>"

    def test_no_match_returns_original(self):
        assert highlight("plain text", ["zebra"]) == "plain text"

    def test_empty_terms(self):
        assert highlight("plain text", []) == "plain text"

    def test_text_outside_spans_untouched(self):
        original = "a game b stadium c"
        result = highlight(original, ["game", "stadium"])
        assert result.replace("[", "").replace("]", "") == original
