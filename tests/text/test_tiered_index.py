"""Tests for the TI-style tiered indexing baseline."""

from __future__ import annotations

import pytest

from repro.text.tiered_index import (QualityClassifier, TieredSearchEngine)
from tests.conftest import make_message


class TestQualityClassifier:
    def test_rich_message_is_high_quality(self):
        classifier = QualityClassifier()
        verdict = classifier.classify(make_message(
            0, "lester getting an ovation from the stadium crowd #redsox"))
        assert verdict.high_quality
        assert "wordy" in verdict.reasons
        assert "indicants" in verdict.reasons

    def test_emotional_fragment_is_noisy(self):
        classifier = QualityClassifier()
        verdict = classifier.classify(make_message(0, "ugh"))
        assert not verdict.high_quality
        assert "fragment" in verdict.reasons

    def test_bare_tag_fragment_is_noisy(self):
        classifier = QualityClassifier()
        verdict = classifier.classify(make_message(0, "ugh #redsox"))
        assert not verdict.high_quality

    def test_duplicate_penalised(self):
        classifier = QualityClassifier()
        text = ("breaking tsunami warning for the whole coast issued "
                "this morning #tsunami")
        first = classifier.classify(make_message(0, text))
        second = classifier.classify(make_message(1, text, user="b",
                                                  hours=0.1))
        assert first.high_quality
        assert second.score < first.score
        assert "duplicate" in second.reasons

    def test_retweet_bonus(self):
        classifier = QualityClassifier()
        verdict = classifier.classify(make_message(
            0, "RT @agency: quake hits the northern coast region"))
        assert "reshare" in verdict.reasons
        assert verdict.high_quality

    @pytest.mark.parametrize("kwargs", [
        {"threshold": 0.0}, {"min_words": 0},
    ])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            QualityClassifier(**kwargs)


class TestTieredSearchEngine:
    def _rich(self, msg_id: int, hours: float = 0.0):
        return make_message(
            msg_id, f"detailed report {msg_id} from the stadium game "
                    f"tonight #mlb", user=f"u{msg_id}", hours=hours)

    def _noise(self, msg_id: int, hours: float = 0.0):
        return make_message(msg_id, "ugh", user=f"n{msg_id}", hours=hours)

    def test_high_quality_searchable_immediately(self):
        tiered = TieredSearchEngine()
        tiered.ingest(self._rich(0))
        assert tiered.search("stadium game")
        assert tiered.stats.realtime_indexed == 1

    def test_noise_queued_not_searchable(self):
        tiered = TieredSearchEngine(batch_size=100)
        tiered.ingest(self._noise(0))
        assert tiered.pending == 1
        assert len(tiered) == 0

    def test_batch_flush_by_size(self):
        tiered = TieredSearchEngine(batch_size=3)
        for index in range(3):
            tiered.ingest(self._noise(index, hours=index * 0.01))
        assert tiered.pending == 0
        assert tiered.stats.batches_flushed == 1
        assert len(tiered) == 3

    def test_batch_flush_by_stream_time(self):
        tiered = TieredSearchEngine(batch_size=1000,
                                    batch_interval=3600.0)
        tiered.ingest(self._noise(0, hours=0.0))
        assert tiered.pending == 1
        tiered.ingest(self._noise(1, hours=2.0))  # > 1h later
        assert tiered.pending == 0

    def test_manual_flush(self):
        tiered = TieredSearchEngine(batch_size=1000)
        tiered.ingest(self._noise(0))
        assert tiered.flush() == 1
        assert tiered.pending == 0

    def test_flushed_noise_becomes_searchable(self):
        tiered = TieredSearchEngine(batch_size=1000)
        tiered.ingest(make_message(0, "weird unique fragmentword"))
        assert not tiered.search("fragmentword")
        tiered.flush()
        assert tiered.search("fragmentword")

    def test_freshness_trade_measured(self):
        """The TI property: high-quality content is always fresh, noise
        lags by up to one batch."""
        tiered = TieredSearchEngine(batch_size=10)
        for index in range(25):
            if index % 2 == 0:
                tiered.ingest(self._rich(index, hours=index * 0.01))
            else:
                tiered.ingest(self._noise(index, hours=index * 0.01))
        assert tiered.stats.realtime_indexed == 13
        assert tiered.stats.queued == 12
        assert tiered.pending < 10  # never more than one batch behind

    @pytest.mark.parametrize("kwargs", [
        {"batch_size": 0}, {"batch_interval": 0.0},
    ])
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            TieredSearchEngine(**kwargs)
