"""Tests for the analysis chain (normalize/stopwords/stemming/keywords)."""

from __future__ import annotations

from repro.text.analyzer import STOPWORDS, Analyzer, light_stem


class TestLightStem:
    def test_plural_s(self):
        assert light_stem("games") == "game"

    def test_plural_ies(self):
        assert light_stem("parties") == "party"

    def test_plural_es_strips_to_common_stem(self):
        # 'waves' and 'wave' must land on the same stem so the tsunami
        # event's vocabulary coheres.
        assert light_stem("waves") == light_stem("wave")

    def test_ing_with_doubled_consonant(self):
        assert light_stem("running") == "run"

    def test_ing_plain(self):
        assert light_stem("watching") == "watch"

    def test_short_words_untouched(self):
        assert light_stem("his") == "his"
        assert light_stem("is") == "is"

    def test_ss_not_stripped(self):
        assert light_stem("class") == "class"

    def test_idempotent_on_common_words(self):
        for word in ("game", "stadium", "tsunami", "market"):
            assert light_stem(light_stem(word)) == light_stem(word)


class TestAnalyzer:
    def test_stopwords_removed(self):
        analyzer = Analyzer()
        terms = analyzer.analyze("the game was a win")
        assert "the" not in terms and "was" not in terms
        assert "game" in terms and "win" in terms

    def test_short_words_removed(self):
        analyzer = Analyzer(min_length=4)
        assert "win" not in analyzer.analyze("big win today")

    def test_hashtag_bodies_analyzed(self):
        analyzer = Analyzer()
        assert "redsox" in analyzer.analyze("go #redsox")

    def test_stemming_applied(self):
        analyzer = Analyzer(stem=True)
        assert "game" in analyzer.analyze("two games")

    def test_stemming_can_be_disabled(self):
        analyzer = Analyzer(stem=False)
        assert "games" in analyzer.analyze("two games")

    def test_duplicates_preserved_in_analyze(self):
        analyzer = Analyzer()
        terms = analyzer.analyze("game game game")
        assert terms.count("game") == 3

    def test_term_set_dedupes(self):
        analyzer = Analyzer()
        assert analyzer.term_set("game game") == frozenset({"game"})

    def test_empty_text(self):
        analyzer = Analyzer()
        assert analyzer.analyze("") == []
        assert analyzer.keywords("") == []

    def test_micro_blog_chatter_in_stopwords(self):
        assert "lol" in STOPWORDS and "omg" in STOPWORDS


class TestKeywords:
    def test_most_frequent_first(self):
        analyzer = Analyzer()
        keywords = analyzer.keywords("game game stadium", limit=2)
        assert keywords[0] == "game"

    def test_limit_respected(self):
        analyzer = Analyzer()
        keywords = analyzer.keywords(
            "alpha bravo charlie delta echo foxtrot golf", limit=3)
        assert len(keywords) == 3

    def test_lexical_tie_break_is_deterministic(self):
        analyzer = Analyzer()
        first = analyzer.keywords("zebra apple mango", limit=3)
        second = analyzer.keywords("mango zebra apple", limit=3)
        assert first == second == sorted(first)
