"""Tests for the keyword search engine (the Fig. 1 baseline)."""

from __future__ import annotations

import pytest

from repro.text.search import SearchEngine
from tests.conftest import make_message


@pytest.fixture
def engine(sample_messages) -> SearchEngine:
    engine = SearchEngine()
    engine.add_all(sample_messages)
    return engine


class TestIndexing:
    def test_add_all_counts(self, sample_messages):
        engine = SearchEngine()
        assert engine.add_all(sample_messages) == len(sample_messages)
        assert len(engine) == len(sample_messages)

    def test_get_by_id(self, engine, sample_messages):
        assert engine.get(0) == sample_messages[0]
        assert engine.get(999) is None

    def test_unknown_scorer_rejected(self):
        with pytest.raises(ValueError):
            SearchEngine(scorer="magic")


class TestRankedSearch:
    def test_returns_relevant_messages(self, engine):
        hits = engine.search("yankee redsox")
        assert hits
        assert all("redsox" in h.message.text.lower()
                   or "yankee" in h.message.text.lower() for h in hits)

    def test_scores_descending(self, engine):
        hits = engine.search("yankee stadium redsox")
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_k_limits_results(self, engine):
        assert len(engine.search("redsox", k=2)) == 2

    def test_empty_query(self, engine):
        assert engine.search("") == []
        assert engine.search("the a an") == []  # all stopwords

    def test_no_match(self, engine):
        assert engine.search("quantum chromodynamics") == []

    def test_tfidf_variant_works(self, sample_messages):
        engine = SearchEngine(scorer="tfidf")
        engine.add_all(sample_messages)
        assert engine.search("redsox")


class TestBooleanSearch:
    def test_and_requires_all_terms(self, engine):
        hits = engine.search_boolean("yankee stadium", mode="and")
        assert hits
        for message in hits:
            text = message.text.lower()
            assert "yankee" in text and "stadium" in text

    def test_and_with_missing_term_is_empty(self, engine):
        assert engine.search_boolean("redsox xylophone", mode="and") == []

    def test_or_unions_matches(self, engine):
        both = engine.search_boolean("redsox finance", mode="or")
        assert len(both) >= 4  # redsox messages + the finance one

    def test_results_newest_first(self, engine):
        hits = engine.search_boolean("redsox", mode="or")
        dates = [m.date for m in hits]
        assert dates == sorted(dates, reverse=True)

    def test_unknown_mode_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.search_boolean("redsox", mode="xor")

    def test_empty_query(self, engine):
        assert engine.search_boolean("") == []


class TestPhraseSearch:
    def test_adjacent_phrase_found(self, engine):
        hits = engine.search_phrase("yankee stadium")
        assert hits
        assert all("yankee stadium" in m.text.lower() for m in hits)

    def test_non_adjacent_not_matched(self):
        engine = SearchEngine()
        engine.add(make_message(0, "yankee fans love the stadium"))
        assert engine.search_phrase("yankee stadium") == []

    def test_missing_term_empty(self, engine):
        assert engine.search_phrase("purple stadium") == []

    def test_single_term_phrase(self, engine):
        assert engine.search_phrase("redsox")

    def test_empty_phrase(self, engine):
        assert engine.search_phrase("") == []
