"""Tests for the decision-audit layer (AuditLog + DecisionRecord)."""

from __future__ import annotations

import json

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.obs import AuditLog, IngestOutcome, Observability, Tracer
from repro.obs.audit import (CandidateScore, DecisionRecord, RefinementEvent,
                             explain_from_jsonl, rung_label)
from repro.reliability.overload import HealthState, OverloadController
from tests.conftest import make_message


def rt_chain():
    """The canonical 3-message retweet chain of the acceptance test."""
    return [
        make_message(1, "breaking: #quake hits the bay area",
                     user="alice", hours=0.0),
        make_message(2, "RT @alice: breaking: #quake hits the bay area",
                     user="bob", hours=0.1),
        make_message(3, "RT @bob: RT @alice: breaking: #quake hits "
                        "the bay area", user="carol", hours=0.2),
    ]


def audited_engine(**kwargs):
    audit = kwargs.pop("audit", None)
    if audit is None:  # not `or`: an empty AuditLog is falsy (len 0)
        audit = AuditLog()
    obs = Observability(audit=audit, tracer=kwargs.pop("tracer", None))
    engine = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=15),
                               obs=obs, **kwargs)
    return engine, audit


class TestRTChainAcceptance:
    """The audit record of each ingest must match its IngestResult exactly."""

    def test_records_mirror_ingest_results(self):
        engine, audit = audited_engine()
        messages = rt_chain()
        results = [engine.ingest(message) for message in messages]

        assert audit.recorded == 3
        for message, result in zip(messages, results):
            record = audit.record_for(message.msg_id)
            assert record is not None
            assert record.msg_id == result.msg_id
            assert record.bundle_id == result.bundle_id
            expected = (IngestOutcome.NEW_BUNDLE if result.created_bundle
                        else IngestOutcome.MATCHED)
            assert record.outcome is expected
            if result.edge is None:
                assert record.parent_id is None
                assert record.edge_kind is None
            else:
                assert record.parent_id == result.edge.as_pair()[1]
                assert record.edge_kind == result.edge.kind.value
            assert record.rung == 0
            assert not record.skeleton
            assert record.candidate_cap == engine.config.max_candidates
            assert record.threshold == engine.config.min_match_score

    def test_algorithm_evidence_in_records(self):
        engine, audit = audited_engine()
        results = [engine.ingest(message) for message in rt_chain()]

        first = audit.record_for(1)
        assert not first.candidates     # empty index: nothing scored
        assert not first.allocation     # root member: nothing to align

        for msg_id, result in ((2, results[1]), (3, results[2])):
            record = audit.record_for(msg_id)
            # Algorithm 1: the joined bundle is among the scored
            # candidates and is the (only) selected row.
            selected = [c for c in record.candidates if c.selected]
            assert [c.bundle_id for c in selected] == [result.bundle_id]
            assert all(isinstance(c, CandidateScore)
                       for c in record.candidates)
            # Algorithm 2: the chosen parent row matches the edge, and
            # its Eq. 5 score is the edge's recorded score exactly.
            chosen = [a for a in record.allocation if a.chosen]
            assert len(chosen) == 1
            assert chosen[0].member_id == result.edge.as_pair()[1]
            assert chosen[0].score == result.edge.score
            assert chosen[0].score == max(
                a.score for a in record.allocation)

    def test_trace_and_audit_share_the_outcome_vocabulary(self):
        tracer = Tracer(sample_rate=1.0, seed=0)
        engine, audit = audited_engine(tracer=tracer)
        for message in rt_chain():
            engine.ingest(message)
        traces = list(tracer.finished)
        records = audit.tail(3)
        assert len(traces) == len(records) == 3
        for trace, record in zip(traces, records):
            assert trace.tags["msg_id"] == record.msg_id
            # Same enum value on both sides — they cannot disagree.
            assert trace.outcome == record.outcome.value
            assert trace.tags["bundle_id"] == record.bundle_id

    def test_explain_renders_the_full_narrative(self):
        engine, audit = audited_engine()
        results = [engine.ingest(message) for message in rt_chain()]
        text = audit.explain(2).render()
        assert (f"message 2 -> bundle {results[1].bundle_id}"
                in text)
        assert "Algorithm 1" in text and "Eq. 1" in text
        assert "Algorithm 2" in text and "Eq. 2-5" in text
        assert f"connected to parent {results[1].edge.as_pair()[1]}" in text
        root = audit.explain(1).render()
        assert "opened fresh bundle" in root
        assert "root message (no provenance edge)" in root
        assert audit.explain(999) is None


class TestDegradedRungRecording:
    """Regression: REDUCED / SKELETON decisions carry their rung."""

    def ingest_at(self, state: HealthState):
        engine, audit = audited_engine()
        controller = OverloadController()
        controller.ladder.state = state
        assert controller.apply_mode(engine) is state
        for message in rt_chain():
            engine.ingest(message)
        return engine, audit

    def test_reduced_rung_recorded_with_tightened_cap(self):
        engine, audit = self.ingest_at(HealthState.REDUCED)
        records = audit.tail(3)
        assert all(r.rung == int(HealthState.REDUCED) for r in records)
        assert all(not r.skeleton for r in records)
        cap = min(engine.config.max_candidates,
                  OverloadController().config.reduced_candidate_cap)
        assert all(r.candidate_cap == cap for r in records)
        assert rung_label(records[0].rung) == "reduced"

    def test_skeleton_rung_recorded_with_flag(self):
        engine, audit = self.ingest_at(HealthState.SKELETON)
        records = audit.tail(3)
        assert all(r.rung == int(HealthState.SKELETON) for r in records)
        assert all(r.skeleton for r in records)
        assert engine.stats.skeleton_ingests == 3
        assert rung_label(records[0].rung) == "skeleton"
        # The RT ancestry is an exact indicant: the chain still matches.
        matched = [r for r in records
                   if r.outcome is IngestOutcome.MATCHED]
        assert matched, "skeleton mode keeps RT matching alive"

    def test_rung_filter_splits_normal_from_degraded(self):
        engine, audit = audited_engine()
        engine.ingest(make_message(1, "#alpha start", hours=0.0))
        controller = OverloadController()
        controller.ladder.state = HealthState.REDUCED
        controller.apply_mode(engine)
        engine.ingest(make_message(2, "#alpha follow-up", hours=0.1))
        assert [r.msg_id for r in audit.filter(rung=0)] == [1]
        assert [r.msg_id for r in audit.filter(
            rung=int(HealthState.REDUCED))] == [2]


class TestRefusalRecords:
    def test_shed_and_deferred_records(self):
        audit = AuditLog()
        audit.record_refusal(7, IngestOutcome.SHED,
                             int(HealthState.SHED_ONLY))
        audit.record_refusal(8, IngestOutcome.DEFERRED,
                             int(HealthState.REDUCED))
        assert audit.refusals == 2
        shed = audit.record_for(7)
        assert not shed.placed
        assert shed.outcome is IngestOutcome.SHED
        assert shed.rung == int(HealthState.SHED_ONLY)
        text = audit.explain(7).render()
        assert "shed at admission" in text
        assert "never reached the indexing pipeline" in text

    def test_drained_placement_supersedes_the_deferral(self):
        engine, audit = audited_engine()
        audit.record_refusal(1, IngestOutcome.DEFERRED,
                             int(HealthState.REDUCED))
        engine.ingest(make_message(1, "#alpha finally admitted",
                                   hours=0.0))
        record = audit.record_for(1)
        assert record.placed
        assert record.deferred_first
        assert record.outcome is IngestOutcome.NEW_BUNDLE
        # The refusal line left the ring; one record per message.
        assert sum(1 for r in audit.tail(100) if r.msg_id == 1) == 1
        assert "deferred at admission, drained from backlog" in (
            audit.explain(1).render())


class TestRingEviction:
    def test_capacity_evicts_nonresident_records_first(self):
        audit = AuditLog(capacity=8)
        engine, _ = audited_engine(audit=audit)
        # Disjoint topics: fresh bundle each, pool_size=15 forces
        # refinement to evict old bundles as the stream runs.
        for i in range(80):
            engine.ingest(make_message(
                i, f"#only{i} standalone story number {i}",
                user=f"u{i}", hours=i * 0.05))
        assert audit.dropped > 0
        # Every message still pool-resident kept its record.
        for bundle in engine.pool:
            for msg_id in bundle.message_ids():
                assert audit.record_for(msg_id) is not None, (
                    f"pool-resident message {msg_id} lost its record")

    def test_ring_grows_rather_than_dropping_resident_records(self):
        audit = AuditLog(capacity=2)
        engine, _ = audited_engine(audit=audit)
        # One hot topic: everything lands in one pooled bundle, so all
        # records stay resident and the ring must grow past capacity.
        for i in range(6):
            engine.ingest(make_message(i, f"#hot shared topic {i}",
                                       user=f"u{i}", hours=i * 0.01))
        assert len(audit) == 6
        assert audit.dropped == 0

    def test_refinement_events_reach_records_and_explanations(self):
        engine, audit = audited_engine()
        for i in range(60):
            engine.ingest(make_message(
                i, f"#only{i} standalone story number {i}",
                user=f"u{i}", hours=i * 0.05))
        assert engine.stats.refinements > 0
        refined = [r for r in audit.tail(60) if r.refinement]
        assert len(refined) == engine.stats.refinements
        event = refined[0].refinement[0]
        assert isinstance(event, RefinementEvent)
        assert event.reason in {"tiny", "closed", "ranked", "shed"}
        # A message whose bundle was later evicted explains the loss.
        evicted_bundles = {e.bundle_id
                           for r in refined for e in r.refinement}
        explained = [audit.explain(r.msg_id) for r in audit.tail(60)
                     if r.bundle_id in evicted_bundles
                     and r.placed]
        narratives = [e.render() for e in explained if e is not None
                      and e.later_events]
        assert narratives
        assert "left the pool" in narratives[0]


class TestMaterializeSemantics:
    def test_materialize_is_idempotent_and_lazy(self):
        engine, audit = audited_engine()
        for message in rt_chain():
            engine.ingest(message)
        raw = audit._ring[-1]
        # The hot path stored raw tuples, not row objects.
        assert isinstance(raw.candidates, tuple)
        first = raw.materialize()
        assert first is raw
        rows = first.candidates
        assert all(isinstance(c, CandidateScore) for c in rows)
        assert raw.materialize().candidates is rows  # second pass: no-op

    def test_new_bundle_record_selects_no_candidate(self):
        engine, audit = audited_engine()
        engine.ingest(make_message(1, "#alpha topic one", hours=0.0))
        # Unrelated message: candidates may score, none above threshold.
        engine.ingest(make_message(2, "completely different #beta story",
                                   user="x", hours=0.1))
        record = audit.record_for(2)
        if record.outcome is IngestOutcome.NEW_BUNDLE:
            assert not any(c.selected for c in record.candidates)


class TestJsonlSink:
    def test_round_trip_preserves_every_field(self, tmp_path):
        sink = tmp_path / "audit.jsonl"
        audit = AuditLog(sink=sink)
        engine, _ = audited_engine(audit=audit)
        results = [engine.ingest(message) for message in rt_chain()]
        audit.close()
        lines = [json.loads(line)
                 for line in sink.read_text().splitlines()]
        decisions = [d for d in lines if d["type"] == "decision"]
        assert len(decisions) == 3
        for data, result in zip(decisions, results):
            rebuilt = DecisionRecord.from_dict(data)
            original = audit.record_for(result.msg_id)
            assert rebuilt.to_dict() == original.to_dict()

    def test_two_seeded_runs_are_byte_identical_determinism(self, tmp_path):
        def run(path):
            audit = AuditLog(sink=path)
            engine, _ = audited_engine(audit=audit)
            for i in range(120):
                engine.ingest(make_message(
                    i, f"#topic{i % 7} message body {i} "
                       f"http://e.com/{i % 11}",
                    user=f"u{i % 13}", hours=i * 0.01))
            audit.close()
            return path.read_bytes()

        first = run(tmp_path / "a.jsonl")
        second = run(tmp_path / "b.jsonl")
        assert first == second
        assert first  # non-empty: the comparison is meaningful

    def test_rerunning_the_same_sink_truncates(self, tmp_path):
        sink = tmp_path / "audit.jsonl"
        for _ in range(2):
            audit = AuditLog(sink=sink)
            engine, _ = audited_engine(audit=audit)
            for message in rt_chain():
                engine.ingest(message)
            audit.close()
        decisions = [line for line in sink.read_text().splitlines()
                     if json.loads(line)["type"] == "decision"]
        assert len(decisions) == 3  # not doubled

    def test_explain_from_jsonl_matches_the_ring(self, tmp_path):
        sink = tmp_path / "audit.jsonl"
        audit = AuditLog(sink=sink)
        engine, _ = audited_engine(audit=audit)
        for message in rt_chain():
            engine.ingest(message)
        audit.close()
        offline = explain_from_jsonl(sink, 3)
        online = audit.explain(3)
        assert offline is not None
        assert offline.render() == online.render()
        assert explain_from_jsonl(sink, 999) is None


class TestValidation:
    def test_bad_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            AuditLog(capacity=0)
        with pytest.raises(ValueError):
            AuditLog(flush_every=0)

    def test_audit_metrics_are_exported(self):
        engine, audit = audited_engine()
        for message in rt_chain():
            engine.ingest(message)
        value = engine.obs.registry.value
        assert value("repro_audit_records_total") == 3
        assert value("repro_audit_dropped_total") == 0
