"""Tests for the Prometheus renderer and the JSONL telemetry flusher."""

from __future__ import annotations

import json

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.errors import ConfigurationError
from repro.obs import (MetricsRegistry, TelemetryFlusher, render_json,
                       render_prometheus)
from repro.reliability.supervisor import ResilientIndexer
from repro.storage.wal import JournaledIndexer, MessageJournal
from tests.conftest import make_message


@pytest.fixture
def registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_demo_total", help="A demo counter").inc(3)
    registry.gauge("repro_demo_depth", unit="bytes").set(17)
    hist = registry.histogram("repro_demo_seconds", unit="seconds",
                              buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    return registry


class TestPrometheusFormat:
    def test_counter_and_gauge_lines(self, registry):
        text = render_prometheus(registry)
        assert "# HELP repro_demo_total A demo counter" in text
        assert "# TYPE repro_demo_total counter" in text
        assert "repro_demo_total 3" in text
        assert "# UNIT repro_demo_depth bytes" in text
        assert "repro_demo_depth 17" in text

    def test_histogram_buckets_are_cumulative_with_inf(self, registry):
        lines = render_prometheus(registry).splitlines()
        buckets = [l for l in lines
                   if l.startswith("repro_demo_seconds_bucket")]
        assert buckets == [
            'repro_demo_seconds_bucket{le="0.1"} 1',
            'repro_demo_seconds_bucket{le="1"} 2',
            'repro_demo_seconds_bucket{le="+Inf"} 3',
        ]
        assert "repro_demo_seconds_count 3" in lines
        assert any(l.startswith("repro_demo_seconds_sum") for l in lines)

    def test_labels_render_sorted_and_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total",
                         labels={"b": 'say "hi"\n', "a": "x\\y"}).inc()
        text = render_prometheus(registry)
        assert 'c_total{a="x\\\\y",b="say \\"hi\\"\\n"} 1' in text

    def test_disabled_registry_renders_empty(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c_total")
        assert render_prometheus(registry) == ""

    def test_render_json_is_the_snapshot(self, registry):
        decoded = json.loads(render_json(registry))
        assert decoded == registry.snapshot()

    def test_engine_metrics_render_end_to_end(self):
        engine = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=20))
        for i in range(30):
            engine.ingest(make_message(i, f"#topic{i % 3} body {i}",
                                       hours=i * 0.1))
        text = render_prometheus(engine.obs.registry)
        assert "repro_messages_ingested_total 30" in text
        assert 'repro_stage_seconds_bucket{stage="bundle_match",le="+Inf"} 30' in text
        assert "repro_pool_bundles" in text


class TestTelemetryFlusher:
    def test_flushes_every_n_ticks(self, tmp_path, registry):
        flusher = TelemetryFlusher(registry, tmp_path / "telemetry.jsonl",
                                   every_ticks=5)
        assert [flusher.tick() for _ in range(12)] == (
            [False] * 4 + [True] + [False] * 4 + [True] + [False] * 2)
        flusher.close()
        records = list(TelemetryFlusher.read_jsonl(
            tmp_path / "telemetry.jsonl"))
        assert [r["seq"] for r in records] == [0, 1, 2]  # close() flushed
        assert records[0]["metrics"]["counters"]["repro_demo_total"] == 3.0

    def test_min_interval_flushes_on_slow_tick_streams(self, tmp_path,
                                                       registry):
        now = [0.0]
        flusher = TelemetryFlusher(registry, tmp_path / "t.jsonl",
                                   every_ticks=1000,
                                   min_interval_seconds=10.0,
                                   clock=lambda: now[0])
        assert flusher.tick() is False
        now[0] = 11.0
        assert flusher.tick() is True
        assert flusher.flushes == 1

    def test_close_writes_a_final_snapshot_even_without_ticks(
            self, tmp_path, registry):
        flusher = TelemetryFlusher(registry, tmp_path / "t.jsonl")
        flusher.close()
        records = list(TelemetryFlusher.read_jsonl(tmp_path / "t.jsonl"))
        assert len(records) == 1

    def test_invalid_interval_rejected(self, tmp_path, registry):
        with pytest.raises(ConfigurationError):
            TelemetryFlusher(registry, tmp_path / "t.jsonl", every_ticks=0)

    def test_supervisor_hook_leaves_flight_recorder(self, tmp_path):
        telemetry_path = tmp_path / "telemetry.jsonl"
        journaled = JournaledIndexer(
            ProvenanceIndexer(IndexerConfig.partial_index(pool_size=15)),
            MessageJournal(tmp_path / "ingest.wal", sync_every=8),
            snapshot_path=tmp_path / "state.json", snapshot_every=10_000)
        with ResilientIndexer(journaled, sleep=lambda _: None,
                              telemetry=telemetry_path,
                              telemetry_every=10) as supervisor:
            for i in range(25):
                supervisor.ingest(make_message(
                    i, f"#topic{i % 4} message {i}", hours=i * 0.05))
        records = list(TelemetryFlusher.read_jsonl(telemetry_path))
        # 25 ticks / 10 per flush = 2 periodic + 1 final on close.
        assert len(records) == 3
        final = records[-1]["metrics"]
        assert final["counters"]["repro_messages_ingested_total"] == 25.0
        assert final["counters"]["repro_supervisor_ingested_total"] == 25.0
        assert final["histograms"][
            "repro_ingest_latency_seconds"]["count"] == 25.0
