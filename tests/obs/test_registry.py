"""Tests for the metrics registry: counters, gauges, histograms."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.obs import (DEFAULT_LATENCY_BUCKETS, NULL_COUNTER,
                       NULL_HISTOGRAM, Histogram, MetricsRegistry)
from repro.obs.registry import series_name


class TestCounter:
    def test_inc_accumulates(self):
        counter = MetricsRegistry().counter("c_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_callback_counter_reads_the_source(self):
        state = {"n": 0}
        counter = MetricsRegistry().counter(
            "c_total", callback=lambda: state["n"])
        assert counter.value == 0.0
        state["n"] = 41
        assert counter.value == 41.0

    def test_get_or_create_returns_same_child(self):
        registry = MetricsRegistry()
        assert registry.counter("c_total") is registry.counter("c_total")

    def test_label_sets_are_distinct_children(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", labels={"k": "a"})
        b = registry.counter("c_total", labels={"k": "b"})
        assert a is not b
        a.inc()
        assert registry.value("c_total", {"k": "a"}) == 1.0
        assert registry.value("c_total", {"k": "b"}) == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0

    def test_callback_gauge_is_a_view(self):
        backing = [100]
        gauge = MetricsRegistry().gauge("g", callback=lambda: backing[0])
        backing[0] = 250
        assert gauge.value == 250.0

    def test_reregistration_refreshes_callback(self):
        registry = MetricsRegistry()
        registry.gauge("g", callback=lambda: 1)
        gauge = registry.gauge("g", callback=lambda: 2)
        assert gauge.value == 2.0


class TestHistogramPercentiles:
    def test_deterministic_sequence_exact_while_reservoir_fits(self):
        hist = Histogram("h", buckets=(1.0, 10.0), reservoir_size=1000)
        for value in range(1, 101):  # 1..100, fits the reservoir
            hist.observe(float(value))
        assert hist.percentile(0) == 1.0
        assert hist.percentile(50) == pytest.approx(51.0)
        assert hist.percentile(95) == pytest.approx(95.0, abs=1.0)
        assert hist.percentile(99) == pytest.approx(99.0, abs=1.0)
        assert hist.percentile(100) == 100.0
        assert hist.count == 100
        assert hist.sum == pytest.approx(5050.0)
        assert hist.mean == pytest.approx(50.5)
        assert hist.min == 1.0
        assert hist.max == 100.0

    def test_single_observation_is_every_percentile(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(0.25)
        for q in (0, 50, 95, 99, 100):
            assert hist.percentile(q) == 0.25

    def test_empty_histogram_reads_zero(self):
        hist = Histogram("h", buckets=(1.0,))
        assert hist.percentile(50) == 0.0
        assert hist.mean == 0.0
        assert hist.stats()["min"] == 0.0

    def test_percentile_out_of_range_rejected(self):
        hist = Histogram("h", buckets=(1.0,))
        with pytest.raises(ConfigurationError):
            hist.percentile(101)

    def test_seeded_reservoir_is_reproducible(self):
        def fill(seed: int) -> "list[float]":
            hist = Histogram("h", buckets=(1.0,), reservoir_size=32,
                             seed=seed)
            for value in range(500):
                hist.observe(float(value))
            return [hist.percentile(q) for q in (50, 95, 99)]

        assert fill(7) == fill(7)
        # Not a hard guarantee, but with 500 draws into 32 slots two
        # different seeds virtually never agree on all three quantiles.
        assert fill(7) != fill(8)

    def test_bucket_counts_are_cumulative_in_export_order(self):
        hist = Histogram("h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.cumulative_buckets() == [
            (0.1, 1), (1.0, 3), (10.0, 4), (float("inf"), 5)]

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(1.0, 0.5))


class TestLabelCardinalityCap:
    def test_overflow_child_absorbs_excess_label_sets(self):
        registry = MetricsRegistry(max_label_sets=3)
        children = [registry.counter("c_total", labels={"k": str(i)})
                    for i in range(3)]
        assert len({id(c) for c in children}) == 3
        overflow_a = registry.counter("c_total", labels={"k": "99"})
        overflow_b = registry.counter("c_total", labels={"k": "1234"})
        assert overflow_a is overflow_b
        assert overflow_a.labels == {"overflow": "true"}
        assert registry.dropped_label_sets == 2

    def test_existing_label_sets_survive_the_cap(self):
        registry = MetricsRegistry(max_label_sets=2)
        keep = registry.counter("c_total", labels={"k": "keep"})
        registry.counter("c_total", labels={"k": "other"})
        registry.counter("c_total", labels={"k": "dropped"})
        assert registry.counter("c_total", labels={"k": "keep"}) is keep


class TestDisabledRegistry:
    def test_counters_and_histograms_are_shared_noops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c_total")
        hist = registry.histogram("h_seconds")
        assert counter is NULL_COUNTER
        assert hist is NULL_HISTOGRAM
        counter.inc(100)
        hist.observe(1.0)
        assert counter.value == 0.0
        assert hist.count == 0

    def test_gauges_stay_live_when_disabled(self):
        # The overload ladder reads pool memory through a registry
        # gauge; telemetry off must not blind admission control.
        registry = MetricsRegistry(enabled=False)
        gauge = registry.gauge("g", callback=lambda: 123)
        assert gauge.value == 123.0

    def test_families_and_exports_are_empty(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c_total")
        registry.gauge("g").set(5)
        assert registry.families() == []
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


class TestRegistryCatalog:
    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ConfigurationError):
            registry.gauge("x_total")

    def test_find_does_not_create(self):
        registry = MetricsRegistry()
        assert registry.find("missing") is None
        assert registry.value("missing", default=-1.0) == -1.0

    def test_value_on_histogram_returns_default(self):
        registry = MetricsRegistry()
        registry.histogram("h_seconds").observe(1.0)
        assert registry.value("h_seconds", default=-1.0) == -1.0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h_seconds").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"]["c_total"] == 3.0
        assert snap["gauges"]["g"] == 7.0
        assert snap["histograms"]["h_seconds"]["count"] == 1.0

    def test_series_name_is_order_stable(self):
        assert (series_name("c", {"b": "2", "a": "1"})
                == series_name("c", {"a": "1", "b": "2"})
                == "c{a=1,b=2}")

    def test_invalid_max_label_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry(max_label_sets=0)


class TestBucketMigration:
    """Dumps under the old 10 µs-bottom layout merge into the new one.

    The default latency buckets gained a sub-10 µs decade; workers (or
    archived dumps) recorded under the coarser layout must still fold
    into a fleet registry built with the new defaults — satisfied by
    crediting each old bucket to the new bucket sharing its upper
    bound, which preserves every cumulative count both layouts share.
    """

    OLD_BUCKETS = DEFAULT_LATENCY_BUCKETS[3:]  # the pre-sub-µs layout

    def test_defaults_bottom_out_below_a_microsecond(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 1e-6
        assert self.OLD_BUCKETS[0] == 1e-5

    def test_subset_dump_merges_preserving_cumulative_counts(self):
        old = Histogram("repro_ingest_latency_seconds",
                        buckets=self.OLD_BUCKETS)
        for value in (3e-6, 4e-5, 3e-4, 2e-3, 0.7, 42.0):
            old.observe(value)
        new = Histogram("repro_ingest_latency_seconds")
        new.observe(5e-7)
        new.merge_state(old.dump_state())
        assert new.count == 7
        assert new.sum == pytest.approx(old.sum + 5e-7)
        merged = dict(new.cumulative_buckets())
        reference = dict(old.cumulative_buckets())
        # Every bound the layouts share reports the same cumulative
        # count (plus the one new-native sub-µs observation).
        for bound in self.OLD_BUCKETS:
            assert merged[bound] == reference[bound] + 1

    def test_merge_dump_migrates_into_existing_new_layout_series(self):
        source = MetricsRegistry()
        coarse = source.histogram("repro_stage_seconds",
                                  labels={"stage": "bundle_match"},
                                  buckets=self.OLD_BUCKETS)
        for value in (2e-5, 8e-4, 0.03):
            coarse.observe(value)
        fleet = MetricsRegistry()
        fine = fleet.histogram("repro_stage_seconds",
                               labels={"stage": "bundle_match"})
        assert fine.bounds == DEFAULT_LATENCY_BUCKETS
        fleet.merge_dump(source.dump(), labels={"shard": "0"},
                         aggregate=True)
        assert fine.count == 3
        assert fine.sum == pytest.approx(coarse.sum)

    def test_non_subset_bounds_still_rejected(self):
        old = Histogram("h_seconds", buckets=(0.015, 1.5))
        new = Histogram("h_seconds")
        with pytest.raises(ConfigurationError):
            new.merge_state(old.dump_state())
