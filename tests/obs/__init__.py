"""Tests for the telemetry subsystem (:mod:`repro.obs`)."""
