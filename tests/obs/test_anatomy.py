"""Tests for the workload-anatomy subsystem (sketches, accountant,
fingerprints, capacity projection)."""

from __future__ import annotations

import json
import random

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.errors import ConfigurationError
from repro.core.summary_index import INDICANT_KINDS as CORE_KINDS
from repro.obs import Observability
from repro.obs.anatomy import (FINGERPRINT_VERSION, INDICANT_KINDS,
                               MemoryAccountant, SpaceSavingSketch,
                               WorkloadAnatomy, capacity_report,
                               deep_size_bytes, diff_fingerprints,
                               read_fingerprints, render_capacity_report,
                               render_diff, render_fingerprint)
from repro.obs.registry import MetricsRegistry
from repro.stream.generator import StreamConfig, StreamGenerator


def _engine_with_anatomy(sample_every: int = 1,
                         **anatomy_kwargs):
    obs = Observability()
    anatomy = WorkloadAnatomy(obs.registry, sample_every=sample_every,
                              **anatomy_kwargs)
    obs.anatomy = anatomy
    engine = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=50),
                               obs=obs)
    return engine, anatomy


def _stream(messages: int, seed: int = 13):
    config = StreamConfig(seed=seed, days=max(messages / 2000, 0.5),
                          messages_per_day=2000)
    return StreamGenerator(config).generate_list()[:messages]


class TestSpaceSavingSketch:
    def test_exact_under_capacity(self):
        sketch = SpaceSavingSketch(capacity=8)
        for item, weight in (("a", 5), ("b", 3), ("a", 2), ("c", 1)):
            sketch.observe(item, weight)
        assert sketch.top() == [("a", 7, 0), ("b", 3, 0), ("c", 1, 0)]
        assert sketch.count("a") == 7
        assert sketch.count("missing") == 0
        assert "a" in sketch and "missing" not in sketch

    def test_capacity_bound_holds(self):
        sketch = SpaceSavingSketch(capacity=4)
        for i in range(100):
            sketch.observe(f"t{i}")
        assert len(sketch) == 4
        assert sketch.observed == 100
        assert sketch.observed_weight == 100

    def test_eviction_error_bound(self):
        # Classic guarantee: count - error <= true weight <= count.
        sketch = SpaceSavingSketch(capacity=3)
        truth: dict[str, int] = {}
        rng = random.Random(5)
        for _ in range(500):
            item = f"t{rng.randrange(12)}"
            truth[item] = truth.get(item, 0) + 1
            sketch.observe(item)
        for item, count, error in sketch.top():
            assert count >= truth.get(item, 0)
            assert count - error <= truth.get(item, 0)

    def test_heavy_hitter_survives_noise(self):
        sketch = SpaceSavingSketch(capacity=8)
        rng = random.Random(3)
        stream = ["hot"] * 300 + [f"noise{i}" for i in range(300)]
        rng.shuffle(stream)
        for item in stream:
            sketch.observe(item)
        assert sketch.top(1)[0][0] == "hot"

    def test_deterministic_across_replays(self):
        def run():
            sketch = SpaceSavingSketch(capacity=8)
            rng = random.Random(11)
            for _ in range(2000):
                sketch.observe(f"t{rng.randrange(64)}",
                               rng.randrange(1, 4))
            return sketch.dump_state()

        assert run() == run()

    def test_dump_merge_round_trip(self):
        left = SpaceSavingSketch(capacity=8)
        right = SpaceSavingSketch(capacity=8)
        for i in range(6):
            left.observe(f"l{i}", i + 1)
            right.observe(f"r{i}", i + 1)
        right.observe("l5", 10)  # shared item: counts must add
        merged = SpaceSavingSketch(capacity=8)
        merged.merge_state(left.dump_state())
        merged.merge_state(right.dump_state())
        assert merged.count("l5") == 6 + 10
        assert len(merged) == 8  # truncated back to capacity
        assert merged.observed == left.observed + right.observed
        assert (merged.observed_weight
                == left.observed_weight + right.observed_weight)
        # Eviction after a merge exercises the stale-heap rebuild path.
        merged.observe("fresh", 100)
        assert merged.count("fresh") >= 100

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            SpaceSavingSketch(capacity=0)


class TestDeepSize:
    def test_containers_and_slots(self):
        class Slotted:
            __slots__ = ("a", "b")

            def __init__(self):
                self.a = [1, 2, 3]
                self.b = {"k": "v"}

        assert deep_size_bytes(Slotted()) > deep_size_bytes([])
        nested = {"outer": {"inner": list(range(50))}}
        assert deep_size_bytes(nested) > deep_size_bytes({})

    def test_shared_seen_charges_once(self):
        shared = list(range(1000))
        seen: set[int] = set()
        first = deep_size_bytes(["x", shared], seen)
        second = deep_size_bytes(["y", shared], seen)
        # The big list was charged to the first walk only.
        assert second < first / 2

    def test_never_enters_types_or_callables(self):
        # Sizing a class attribute must not drag in the module graph.
        assert deep_size_bytes(dict) < 1024
        assert deep_size_bytes(deep_size_bytes) < 1024


class TestMemoryAccountant:
    def test_measures_and_drifts(self):
        engine, _ = _engine_with_anatomy()
        for message in _stream(400):
            engine.ingest(message)
        account = MemoryAccountant().measure(engine)
        measured = account["measured"]
        assert measured["index"] > 0
        assert measured["pool"] > 0
        assert measured["dedup_cache"] == 0  # no guard attached
        assert measured["guard"] == 0
        assert measured["total"] == sum(
            measured[c] for c in ("index", "pool", "dedup_cache", "guard"))
        # Satellite 1: the calibrated estimates track the measured walk.
        # The fit is CPython-3.11 based; other interpreters shift object
        # headers, so the test bar is looser than the 10% dev target.
        assert abs(account["drift"]["index"]) < 0.25
        assert abs(account["drift"]["pool"]) < 0.25


class TestWorkloadAnatomy:
    def test_kinds_lock_step_with_summary_index(self):
        # anatomy.INDICANT_KINDS is a local mirror (importing the core
        # tuple would close an import cycle); they must never diverge.
        assert INDICANT_KINDS == CORE_KINDS

    def test_stride_sampling(self):
        engine, anatomy = _engine_with_anatomy(sample_every=4)
        for message in _stream(100):
            engine.ingest(message)
        assert anatomy.seen == 100
        assert anatomy.sampled == 25

    def test_sketches_see_ingested_terms(self):
        engine, anatomy = _engine_with_anatomy()
        for message in _stream(200):
            engine.ingest(message)
        assert anatomy.sketches["user"].observed == 200
        assert len(anatomy.sketches["keyword"]) > 0

    def test_invalid_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadAnatomy(sample_every=0)

    def test_publish_mirrors_and_zeroes(self):
        registry = MetricsRegistry()
        anatomy = WorkloadAnatomy(registry, publish_top=2)
        anatomy.sketches["hashtag"].observe("old", 10)
        anatomy.sketches["hashtag"].observe("stays", 5)
        anatomy.publish()
        assert registry.value("repro_hot_terms",
                              {"kind": "hashtag", "term": "old"}) == 10
        # 'old' falls out of the top-2; its gauge must zero, not linger.
        anatomy.sketches["hashtag"].observe("hotter", 50)
        anatomy.sketches["hashtag"].observe("stays", 50)
        anatomy.publish()
        assert registry.value("repro_hot_terms",
                              {"kind": "hashtag", "term": "old"}) == 0
        assert registry.value("repro_hot_terms",
                              {"kind": "hashtag", "term": "hotter"}) == 50

    def test_account_publishes_gauges(self):
        engine, anatomy = _engine_with_anatomy()
        for message in _stream(200):
            engine.ingest(message)
        anatomy.account(engine)
        registry = anatomy.registry
        assert registry.value("repro_memory_measured_bytes",
                              {"component": "index"}) > 0
        drift = registry.find("repro_memory_drift_ratio",
                              {"component": "pool"})
        assert drift is not None

    def test_standalone_without_registry(self):
        anatomy = WorkloadAnatomy()  # no registry: sketches still work
        engine = ProvenanceIndexer(
            IndexerConfig.partial_index(pool_size=50))
        engine.obs.anatomy = anatomy
        for message in _stream(80):
            engine.ingest(message)
        assert anatomy.sampled > 0
        anatomy.publish()  # no-op without a registry


class TestFingerprints:
    def test_schema_and_version(self):
        engine, anatomy = _engine_with_anatomy()
        for message in _stream(300):
            engine.ingest(message)
        record = anatomy.fingerprint(engine)
        assert record["version"] == FINGERPRINT_VERSION
        assert record["messages"] == 300
        for section in ("sketches", "postings", "touched_postings",
                        "fanin", "eviction", "index", "memory", "growth"):
            assert section in record
        for kind in INDICANT_KINDS:
            assert kind in record["sketches"]
            assert kind in record["postings"]
        assert record["fanin"]["fetched"]["count"] == 300
        json.dumps(record)  # JSON-able throughout

    def test_byte_deterministic_across_replays(self):
        def run() -> str:
            engine, anatomy = _engine_with_anatomy(sample_every=2)
            for message in _stream(600):
                engine.ingest(message)
            return json.dumps(anatomy.fingerprint(engine),
                              sort_keys=True, separators=(",", ":"))

        assert run() == run()

    def test_no_wall_clock_fields(self):
        engine, anatomy = _engine_with_anatomy()
        for message in _stream(100):
            engine.ingest(message)
        flat = json.dumps(anatomy.fingerprint(engine)).lower()
        for forbidden in ("timestamp", "wall", "elapsed"):
            assert forbidden not in flat

    def test_write_read_round_trip(self, tmp_path):
        engine, anatomy = _engine_with_anatomy()
        for message in _stream(100):
            engine.ingest(message)
        path = tmp_path / "fp.jsonl"
        record = anatomy.fingerprint(engine)
        anatomy.write_fingerprint(path, record)
        anatomy.write_fingerprint(path, record)
        loaded = list(read_fingerprints(path))
        assert loaded == [record, record]
        assert list(read_fingerprints(tmp_path / "missing.jsonl")) == []

    def test_growth_interval_between_fingerprints(self):
        engine, anatomy = _engine_with_anatomy()
        stream = _stream(400)
        for message in stream[:200]:
            engine.ingest(message)
        anatomy.fingerprint(engine)
        for message in stream[200:]:
            engine.ingest(message)
        second = anatomy.fingerprint(engine)
        interval = second["growth"]["interval"]
        assert interval["messages"] == 200
        # The term dictionary saturates: marginal novelty must not
        # exceed the cumulative average by construction of the stream.
        assert interval["new_terms_per_1k_msgs"] >= 0


class TestCapacityReport:
    def _fingerprint(self):
        engine, anatomy = _engine_with_anatomy()
        for message in _stream(800):
            engine.ingest(message)
        return anatomy.fingerprint(engine)

    def test_slab_schedule_brackets_distribution(self):
        record = self._fingerprint()
        report = capacity_report(record)
        for kind, plan in report["slab_schedule"].items():
            stats = record["postings"][kind]
            assert plan["initial_slice"] >= stats["p50"]
            assert plan["max_slice"] >= stats["p99"]
            assert plan["initial_slice"] & (plan["initial_slice"] - 1) == 0
            assert plan["max_slice"] & (plan["max_slice"] - 1) == 0
            assert plan["projected_slab_bytes"] == stats["sum"] * 8
        assert report["recommendations"]

    def test_prune_thresholds_share_bounded(self):
        report = capacity_report(self._fingerprint())
        for rule in report["prune_thresholds"].values():
            assert 0.0 <= rule["hot_fanin_share"] <= 1.0

    def test_empty_fingerprint_degrades(self):
        report = capacity_report({"postings": {}, "sketches": {}})
        assert report["slab_schedule"] == {}
        assert report["recommendations"] == []
        assert "no capacity data" in render_capacity_report(report)


class TestDiffAndRendering:
    def test_diff_tracks_scalars_and_churn(self):
        engine, anatomy = _engine_with_anatomy()
        stream = _stream(600)
        for message in stream[:300]:
            engine.ingest(message)
        before = anatomy.fingerprint(engine)
        for message in stream[300:]:
            engine.ingest(message)
        after = anatomy.fingerprint(engine)
        diff = diff_fingerprints(before, after)
        assert diff["scalars"]["messages"] == {"before": 300,
                                               "after": 600}
        render_diff(diff)  # renders without error

    def test_renderers_cover_fingerprint(self):
        engine, anatomy = _engine_with_anatomy()
        for message in _stream(300):
            engine.ingest(message)
        record = anatomy.fingerprint(engine)
        text = render_fingerprint(record)
        assert "workload fingerprint" in text
        assert "memory attribution" in text
        report = render_capacity_report(capacity_report(record))
        assert "slab slice schedule" in report


class TestEngineIntegration:
    def test_fanin_histograms_and_cap_counter(self):
        engine, _ = _engine_with_anatomy()
        for message in _stream(400):
            engine.ingest(message)
        registry = engine.obs.registry
        fetched = registry.find("repro_candidate_fanin",
                                {"phase": "fetched"})
        scored = registry.find("repro_candidate_fanin",
                               {"phase": "scored"})
        assert fetched.count == 400
        assert scored.count == 400
        assert scored.sum <= fetched.sum  # capping only ever shrinks
        capped = registry.value("repro_candidate_capped_total")
        assert capped >= 0

    def test_eviction_histograms_populate(self):
        # pool_size=50 forces refinement evictions within the stream.
        engine, _ = _engine_with_anatomy()
        for message in _stream(1200):
            engine.ingest(message)
        registry = engine.obs.registry
        size = registry.find("repro_evicted_bundle_size")
        assert size is not None and size.count > 0
        age = registry.find("repro_evicted_bundle_age_seconds")
        assert age is not None and age.count == size.count

    def test_detached_engine_records_nothing(self):
        engine = ProvenanceIndexer(
            IndexerConfig.partial_index(pool_size=50))
        for message in _stream(50):
            engine.ingest(message)
        assert engine.obs.anatomy is None
