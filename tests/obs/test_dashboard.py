"""Tests for the ``repro top`` dashboard renderer."""

from __future__ import annotations

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.obs import Observability, Tracer
from repro.obs.dashboard import ANSI_CLEAR, Dashboard
from tests.conftest import make_message


def run_engine(count: int = 40, **kwargs) -> ProvenanceIndexer:
    engine = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=15),
                               **kwargs)
    for i in range(count):
        engine.ingest(make_message(i, f"#topic{i % 4} message body {i}",
                                   user=f"u{i % 5}", hours=i * 0.05))
    return engine


class TestFrame:
    def test_frame_shows_nonzero_ingest_signals(self):
        engine = run_engine()
        now = [100.0]
        dashboard = Dashboard(engine.obs.registry, clock=lambda: now[0])
        now[0] = 110.0
        frame = dashboard.frame()
        assert "repro top" in frame
        assert "ingested" in frame
        assert "40 msgs" in frame
        assert "4/s now" in frame  # 40 msgs over the 10s window
        assert "bundle match (Alg. 1)" in frame
        assert "whole ingest" not in frame  # no supervisor in this setup
        assert "pool" in frame
        assert "normal" in frame  # rung gauge absent -> rung 0

    def test_stage_rows_show_percentiles(self):
        engine = run_engine()
        frame = Dashboard(engine.obs.registry).frame()
        # Every populated stage row renders count + p50/p95/p99 + total.
        for label in ("bundle match (Alg. 1)", "placement (Alg. 2)",
                      "index update"):
            (row,) = [l for l in frame.splitlines() if label in l]
            assert "ms" in row and "s" in row

    def test_rate_window_advances_between_frames(self):
        engine = run_engine()
        now = [0.0]
        dashboard = Dashboard(engine.obs.registry, clock=lambda: now[0])
        now[0] = 10.0
        dashboard.frame()
        now[0] = 20.0
        second = dashboard.frame()
        # No new messages in the second window: instantaneous rate is 0.
        assert "0/s now" in second
        assert "frame 2" in second

    def test_trace_line_present_when_tracer_exports(self):
        tracer = Tracer(sample_rate=1.0, seed=0)
        engine = run_engine(obs=Observability(tracer=tracer))
        frame = Dashboard(engine.obs.registry).frame()
        assert "traces: 40 sampled of 40 (100.0%)" in frame

    def test_trace_line_absent_without_tracer(self):
        engine = run_engine()
        assert "traces:" not in Dashboard(engine.obs.registry).frame()

    def test_empty_registry_renders_placeholder_rows(self):
        from repro.obs import MetricsRegistry

        frame = Dashboard(MetricsRegistry()).frame()
        assert "0 msgs" in frame
        assert "—" in frame  # unpopulated stage rows

    def test_live_frame_prefixes_ansi_clear(self):
        engine = run_engine(count=5)
        live = Dashboard(engine.obs.registry).live_frame()
        assert live.startswith(ANSI_CLEAR)


class TestAnatomyPanel:
    def _run_with_anatomy(self) -> ProvenanceIndexer:
        from repro.obs import WorkloadAnatomy

        obs = Observability()
        obs.anatomy = WorkloadAnatomy(obs.registry, sample_every=1)
        engine = run_engine(obs=obs)
        obs.anatomy.publish()
        obs.anatomy.account(engine)
        return engine

    def test_panel_present_after_publish(self):
        engine = self._run_with_anatomy()
        frame = Dashboard(engine.obs.registry).frame()
        assert "workload anatomy" in frame
        assert "fan-in fetched" in frame
        assert "index memory" in frame
        # The engine's hot hashtags show with their sketch weights.
        assert "topic0(" in frame

    def test_panel_absent_without_anatomy(self):
        engine = run_engine()
        frame = Dashboard(engine.obs.registry).frame()
        assert "workload anatomy" not in frame

    def test_shard_labeled_copies_not_double_counted(self):
        from repro.obs import WorkloadAnatomy
        from repro.runtime.telemetry import merge_worker_dumps

        obs = Observability()
        obs.anatomy = WorkloadAnatomy(obs.registry, sample_every=1)
        run_engine(obs=obs)
        obs.anatomy.publish()
        fleet = merge_worker_dumps({0: obs.registry.dump(),
                                    1: obs.registry.dump()})
        frame = Dashboard(fleet).frame()
        panel = frame[frame.index("workload anatomy"):]
        hashtag_row = next(line for line in panel.splitlines()
                           if line.startswith("hashtag"))
        # Two identical shards double the aggregate weight; each term
        # must still appear exactly once in the panel.
        assert hashtag_row.count("topic0(") == 1
