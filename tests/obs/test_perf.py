"""Tests for the continuous profiler and the trace timeline renderer."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.errors import ConfigurationError
from repro.core.message import parse_message
from repro.obs import (MetricsRegistry, Observability, StackSampler,
                       StageCell, render_trace_timeline)

BASE_DATE = 1_249_084_800.0


def stream(count):
    out = []
    for i in range(count):
        user = f"u{i % 23}"
        if i % 3 == 1:
            text = f"RT @u{(i - 1) % 23}: #tag{i % 7} report {i - 1}"
        else:
            text = f"#tag{i % 7} report {i}"
        out.append(parse_message(i, user, BASE_DATE + i * 2.0, text))
    return out


class TestStageCell:
    def test_set_and_clear(self):
        cell = StageCell()
        assert cell.stage == ""
        cell.set("bundle_match")
        assert cell.stage == "bundle_match"
        cell.clear()
        assert cell.stage == ""


class TestStackSampler:
    def test_rejects_bad_hz(self):
        with pytest.raises(ConfigurationError):
            StackSampler(hz=0)
        with pytest.raises(ConfigurationError):
            StackSampler(hz=2000)

    def test_rejects_double_start(self):
        sampler = StackSampler(hz=50)
        sampler.start()
        try:
            with pytest.raises(ConfigurationError):
                sampler.start()
        finally:
            sampler.stop()

    def test_samples_the_calling_thread(self):
        cell = StageCell()
        with StackSampler(hz=200, cell=cell) as sampler:
            cell.set("busy_stage")
            deadline = time.monotonic() + 0.5
            while time.monotonic() < deadline:
                sum(range(1000))
            cell.clear()
        assert sampler.samples > 0
        assert sampler.stage_samples["busy_stage"] > 0

    def test_empty_cell_bills_idle(self):
        with StackSampler(hz=200) as sampler:
            deadline = time.monotonic() + 0.3
            while time.monotonic() < deadline:
                sum(range(1000))
        assert sampler.stage_samples.get("idle", 0) == sampler.samples

    def test_collapsed_format(self):
        with StackSampler(hz=200) as sampler:
            deadline = time.monotonic() + 0.3
            while time.monotonic() < deadline:
                sum(range(1000))
        lines = sampler.collapsed()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert int(count) > 0
            assert stack
            for frame in stack.split(";"):
                assert "." in frame

    def test_write_collapsed_round_trips(self, tmp_path):
        with StackSampler(hz=200) as sampler:
            deadline = time.monotonic() + 0.3
            while time.monotonic() < deadline:
                sum(range(1000))
        target = sampler.write_collapsed(tmp_path / "out" / "p.folded")
        written = target.read_text().splitlines()
        assert written == sampler.collapsed()

    def test_stage_table_is_sorted_and_normalised(self):
        sampler = StackSampler(hz=50)
        sampler.stage_samples.update({"a": 3, "b": 7})
        sampler.stage_alloc_blocks.update({"a": 10})
        rows = sampler.stage_table()
        assert [row[0] for row in rows] == ["b", "a"]
        assert rows[0][2] == pytest.approx(0.7)
        assert rows[1][3] == 10

    def test_registry_counters_track_stage_samples(self):
        registry = MetricsRegistry()
        sampler = StackSampler(hz=50, registry=registry)
        sampler.stage_samples["bundle_match"] = 5
        assert registry.value(
            "repro_profile_samples_total",
            labels={"stage": "bundle_match"}) == 5.0

    def test_profiles_another_thread(self):
        stop = threading.Event()

        def busy():
            while not stop.is_set():
                sum(range(1000))

        worker = threading.Thread(target=busy, daemon=True)
        worker.start()
        sampler = StackSampler(hz=200)
        sampler.start(thread_ident=worker.ident)
        time.sleep(0.3)
        sampler.stop()
        stop.set()
        worker.join(timeout=2.0)
        assert sampler.samples > 0
        assert any("busy" in frame for stack in sampler.stacks
                   for frame in stack)


class TestEngineStageAttribution:
    """The engine's StageCell writes name real pipeline stages."""

    def test_ingest_names_engine_stages(self):
        cell = StageCell()
        obs = Observability(profile=cell)
        engine = ProvenanceIndexer(
            IndexerConfig.partial_index(pool_size=100), obs=obs)
        observed = set()

        class SpyCell(StageCell):
            def __setattr__(self, name, value):
                if name == "stage" and value:
                    observed.add(value)
                super().__setattr__(name, value)

        engine.obs.profile = spy = SpyCell()
        for message in stream(300):
            engine.ingest(message)
        assert spy.stage == ""
        assert {"bundle_match", "message_placement",
                "index_update"} <= observed


class TestTimelineRenderer:
    def _fleet_trace(self, *, dead=False):
        spans = [
            {"name": "route", "start": 0.0, "duration": 0.001,
             "tags": {"kind": "hop", "shard": 1}},
            {"name": "queue_wait", "start": 0.001, "duration": 0.006,
             "tags": {"kind": "hop"}},
            {"name": "service", "start": 0.007, "duration": 0.002,
             "tags": {"kind": "hop", "span_id": "1.1.4"}},
            {"name": "placement", "start": 0.0075, "duration": 0.001,
             "tags": {"kind": "stage", "edge": True}},
            {"name": "ack_transit", "start": 0.009, "duration": 0.001,
             "tags": {"kind": "hop"}},
        ]
        tags = {"outcome": "matched", "shard": 1, "msg_id": 42}
        if dead:
            tags["dead"] = True
        return {"trace_id": 42, "duration": 0.010, "tags": tags,
                "spans": spans}

    def test_hops_render_over_shared_axis(self):
        text = render_trace_timeline(self._fleet_trace())
        lines = text.splitlines()
        assert "trace 42" in lines[0]
        assert "10.000 ms" in lines[0]
        assert "outcome=matched" in lines[0]
        names = [line.split("|")[0].strip() for line in lines[1:]]
        assert names == ["route", "queue_wait", "service", "placement",
                         "ack_transit"]

    def test_stage_spans_indent_under_service(self):
        text = render_trace_timeline(self._fleet_trace())
        stage_line = next(line for line in text.splitlines()
                          if "placement" in line)
        assert stage_line.startswith("    ")

    def test_dead_trace_is_flagged(self):
        text = render_trace_timeline(self._fleet_trace(dead=True))
        assert "DEAD-HOP" in text.splitlines()[0]

    def test_flat_traces_render_without_hops(self):
        trace = {"trace_id": 7, "duration": 0.002,
                 "tags": {"outcome": "new-bundle"},
                 "spans": [{"name": "candidate_selection", "start": 0.0,
                            "duration": 0.001, "tags": {}},
                           {"name": "placement", "start": 0.001,
                            "duration": 0.001, "tags": {}}]}
        lines = render_trace_timeline(trace).splitlines()
        assert len(lines) == 3
        assert "candidate_selection" in lines[1]

    def test_zero_duration_trace_does_not_crash(self):
        text = render_trace_timeline(
            {"trace_id": 1, "duration": 0.0, "tags": {}, "spans": []})
        assert "trace 1" in text
