"""Tests for the engine's registry wiring and end-to-end tracing."""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer, StageSnapshot, StageTimers
from repro.obs import Observability, Tracer
from tests.conftest import make_message


def run_engine(count: int = 40, **kwargs) -> ProvenanceIndexer:
    engine = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=15),
                               **kwargs)
    for i in range(count):
        engine.ingest(make_message(i, f"#topic{i % 4} message body {i}",
                                   user=f"u{i % 5}", hours=i * 0.05))
    return engine


class TestEngineCounters:
    def test_callback_counters_mirror_stats(self):
        engine = run_engine()
        value = engine.obs.registry.value
        stats = engine.stats
        assert value("repro_messages_ingested_total") == 40
        assert value("repro_bundles_created_total") == stats.bundles_created
        assert value("repro_bundles_matched_total") == stats.bundles_matched
        assert value("repro_edges_created_total") == stats.edges_created
        assert value("repro_refinements_total") == stats.refinements
        assert (stats.bundles_created + stats.bundles_matched == 40)

    def test_stage_histograms_observe_once_per_ingest(self):
        engine = run_engine()
        for stage in ("bundle_match", "message_placement", "index_update"):
            assert engine.timers.histogram(stage).count == 40
        refinements = engine.timers.histogram("memory_refinement").count
        assert refinements == engine.stats.refinements

    def test_pool_and_index_gauges_are_views(self):
        engine = run_engine()
        registry = engine.obs.registry
        assert (registry.value("repro_pool_bundles")
                == len(engine.pool))
        assert (registry.value("repro_pool_memory_bytes")
                == engine.pool.approximate_memory_bytes())
        snap = engine.snapshot()
        assert snap.pool_bytes == engine.pool.approximate_memory_bytes()
        assert (snap.index_bytes
                == engine.summary_index.approximate_memory_bytes())

    def test_disabled_observability_keeps_timers_at_zero(self):
        engine = run_engine(obs=Observability.disabled())
        assert engine.stats.messages_ingested == 40
        assert engine.timers.total == 0.0
        assert engine.obs.registry.families() == []


class TestStageTimersView:
    def test_timers_equal_histogram_sums(self):
        engine = run_engine()
        timers = engine.timers
        assert timers.bundle_match == timers.histogram("bundle_match").sum
        assert timers.total == pytest.approx(sum(
            timers.histogram(stage).sum for stage in StageTimers.STAGES))

    def test_reset_returns_closed_interval_and_zeroes_the_view(self):
        engine = run_engine(count=20)
        closed = engine.timers.reset()
        assert isinstance(closed, StageSnapshot)
        assert closed.total > 0.0
        assert engine.timers.total == 0.0
        # The histograms themselves stay monotonic for Prometheus.
        assert engine.timers.histogram("bundle_match").sum > 0.0

    def test_intervals_tile_the_cumulative_total(self):
        engine = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=15))
        intervals = []
        for chunk in range(3):
            for i in range(15):
                msg_id = chunk * 15 + i
                engine.ingest(make_message(
                    msg_id, f"#t{msg_id % 4} body {msg_id}",
                    hours=msg_id * 0.05))
            intervals.append(engine.timers.reset())
        cumulative = sum(
            engine.timers.histogram(stage).sum
            for stage in StageTimers.STAGES)
        assert sum(s.total for s in intervals) == pytest.approx(cumulative)

    def test_interval_since_snapshot(self):
        timers = StageTimers()
        timers.observe("bundle_match", 1.0)
        before = timers.snapshot()
        timers.observe("bundle_match", 0.25)
        timers.observe("index_update", 0.5)
        delta = timers.interval(before)
        assert delta.bundle_match == pytest.approx(0.25)
        assert delta.index_update == pytest.approx(0.5)
        assert delta.message_placement == 0.0

    def test_standalone_timers_keep_working(self):
        timers = StageTimers()
        timers.observe("memory_refinement", 2.0)
        assert timers.memory_refinement == 2.0
        assert timers.total == 2.0


class TestEndToEndTrace:
    def test_rt_chain_span_tree_matches_ingest_results(self):
        """A 3-message RT chain: the trace tree must tell the same story
        as the engine's own IngestResult records."""
        tracer = Tracer(sample_rate=1.0, seed=0)
        engine = ProvenanceIndexer(
            IndexerConfig.partial_index(pool_size=15),
            obs=Observability(tracer=tracer))
        messages = [
            make_message(1, "breaking: #quake hits the bay area",
                         user="alice", hours=0.0),
            make_message(2, "RT @alice: breaking: #quake hits the bay area",
                         user="bob", hours=0.1),
            make_message(3, "RT @bob: RT @alice: breaking: #quake hits "
                            "the bay area", user="carol", hours=0.2),
        ]
        results = [engine.ingest(message) for message in messages]

        # Algorithm 1's decisions: first message opens a bundle, the two
        # re-shares match into it; Algorithm 2 finds both RT edges.
        assert results[0].created_bundle
        assert not results[1].created_bundle
        assert not results[2].created_bundle
        assert len({r.bundle_id for r in results}) == 1
        assert results[0].edge is None
        assert results[1].edge is not None
        assert results[2].edge is not None

        traces = list(tracer.finished)
        assert [t.tags["msg_id"] for t in traces] == [1, 2, 3]
        for trace, result in zip(traces, results):
            expected_outcome = ("new-bundle" if result.created_bundle
                                else "matched")
            assert trace.outcome == expected_outcome
            assert trace.tags["bundle_id"] == result.bundle_id
            names = [span.name for span in trace.spans]
            assert names[:3] == ["candidate_selection", "placement",
                                 "index_update"]
            placement = trace.spans[1]
            assert placement.tags["edge"] is (result.edge is not None)
            if result.edge is not None:
                assert (placement.tags["parent"]
                        == result.edge.as_pair()[1])
            assert trace.duration >= sum(
                span.duration for span in trace.spans) * 0.0  # non-negative
            assert trace.duration > 0.0

        # Span timing is self-consistent: children start inside the root.
        for trace in traces:
            for span in trace.spans:
                assert 0.0 <= span.start <= trace.duration + 1e-9

        # The first trace saw no candidates; the re-shares saw the bundle.
        assert traces[0].spans[0].tags["candidates"] == 0
        assert traces[1].spans[0].tags["candidates"] >= 1
        assert traces[2].spans[0].tags["candidates"] >= 1

    def test_sampling_counters_are_exported(self):
        tracer = Tracer(sample_rate=1.0, seed=0)
        engine = run_engine(count=10, obs=Observability(tracer=tracer))
        registry = engine.obs.registry
        assert registry.value("repro_traces_offered_total") == 10
        assert registry.value("repro_traces_sampled_total") == 10

    def test_refinement_span_appears_when_trigger_fires(self):
        tracer = Tracer(sample_rate=1.0, seed=0, keep=1024)
        engine = ProvenanceIndexer(
            IndexerConfig.partial_index(pool_size=15),
            obs=Observability(tracer=tracer))
        # Disjoint topics: every message opens a fresh bundle, so the
        # pool-size trigger must fire well before 60 messages.
        for i in range(60):
            engine.ingest(make_message(
                i, f"#only{i} standalone story number {i}",
                user=f"u{i}", hours=i * 0.05))
        assert engine.stats.refinements > 0
        refined = [t for t in tracer.finished
                   if any(s.name == "refinement" for s in t.spans)]
        assert len(refined) == engine.stats.refinements
        span = refined[0].spans[-1]
        assert span.tags["removed"] >= 0
        assert span.tags["pool_after"] <= 15
