"""Tests for ingest-path tracing: sampling determinism and export."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.obs import Tracer


def decide(rate: float, seed: int, count: int = 400) -> "list[int]":
    """Ids of the messages a fresh tracer samples from ``count`` offers."""
    tracer = Tracer(sample_rate=rate, seed=seed)
    sampled = []
    for trace_id in range(count):
        trace = tracer.begin(trace_id)
        if trace is not None:
            sampled.append(trace_id)
            tracer.finish(trace, duration=0.001, outcome="matched")
    return sampled


class TestSamplingDeterminism:
    def test_same_seed_same_sampled_set(self):
        assert decide(0.1, seed=42) == decide(0.1, seed=42)

    def test_different_seed_different_sampled_set(self):
        assert decide(0.1, seed=1) != decide(0.1, seed=2)

    def test_decision_depends_only_on_arrival_order(self):
        # Interleaving finish() work between begins must not perturb the
        # decision sequence: begin() consumes exactly one RNG draw.
        tracer = Tracer(sample_rate=0.1, seed=42)
        sampled = []
        for trace_id in range(400):
            trace = tracer.begin(trace_id)
            if trace is not None:
                sampled.append(trace_id)
                trace.span("candidate_selection", 0.0, 0.001, candidates=3)
                tracer.finish(trace, duration=0.002, outcome="matched",
                              bundle_id=trace_id % 7)
        assert sampled == decide(0.1, seed=42)

    def test_rate_zero_samples_nothing_but_counts_offers(self):
        tracer = Tracer(sample_rate=0.0, seed=0)
        assert all(tracer.begin(i) is None for i in range(50))
        assert tracer.offered == 50
        assert tracer.sampled == 0

    def test_rate_one_samples_everything(self):
        tracer = Tracer(sample_rate=1.0, seed=0)
        assert all(tracer.begin(i) is not None for i in range(50))
        assert tracer.sampled == 50

    def test_fractional_rate_is_roughly_proportional(self):
        sampled = decide(0.25, seed=3, count=2000)
        assert 0.15 < len(sampled) / 2000 < 0.35

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ConfigurationError):
            Tracer(sample_rate=-0.1)


class TestTraceStructure:
    def test_span_tree_and_outcome(self):
        tracer = Tracer(sample_rate=1.0)
        trace = tracer.begin(17)
        trace.span("candidate_selection", 0.0, 0.001, candidates=4)
        trace.span("placement", 0.001, 0.002, edge=True, parent=9)
        tracer.finish(trace, duration=0.003, outcome="matched",
                      msg_id=17, bundle_id=5)
        assert trace.outcome == "matched"
        assert [s.name for s in trace.spans] == ["candidate_selection",
                                                 "placement"]
        record = trace.to_dict()
        assert record["trace_id"] == 17
        assert record["tags"]["bundle_id"] == 5
        assert record["spans"][1]["tags"] == {"edge": True, "parent": 9}

    def test_finished_ring_is_bounded(self):
        tracer = Tracer(sample_rate=1.0, keep=4)
        for trace_id in range(10):
            tracer.finish(tracer.begin(trace_id), outcome="matched")
        assert [t.trace_id for t in tracer.finished] == [6, 7, 8, 9]

    def test_event_records_spanless_outcome(self):
        tracer = Tracer(sample_rate=1.0)
        tracer.event(99, "shed", rung=3)
        (trace,) = tracer.finished
        assert trace.trace_id == 99
        assert trace.outcome == "shed"
        assert trace.tags["rung"] == 3
        assert trace.spans == []

    def test_event_respects_sampling(self):
        tracer = Tracer(sample_rate=0.0)
        tracer.event(99, "shed")
        assert not tracer.finished


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        sink = tmp_path / "traces.jsonl"
        with Tracer(sample_rate=1.0, sink=sink) as tracer:
            for trace_id in range(3):
                trace = tracer.begin(trace_id)
                trace.span("candidate_selection", 0.0, 0.001)
                tracer.finish(trace, duration=0.002, outcome="new-bundle")
            assert tracer.exported == 3
        records = list(Tracer.read_jsonl(sink))
        assert [r["trace_id"] for r in records] == [0, 1, 2]
        assert all(r["tags"]["outcome"] == "new-bundle" for r in records)
        assert records[0]["spans"][0]["name"] == "candidate_selection"

    def test_read_skips_torn_lines(self, tmp_path):
        sink = tmp_path / "traces.jsonl"
        with Tracer(sample_rate=1.0, sink=sink) as tracer:
            tracer.finish(tracer.begin(1), outcome="matched")
        with sink.open("a", encoding="utf-8") as handle:
            handle.write('{"trace_id": 2, "truncat')  # torn tail
        records = list(Tracer.read_jsonl(sink))
        assert [r["trace_id"] for r in records] == [1]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert list(Tracer.read_jsonl(tmp_path / "nope.jsonl")) == []

    def test_close_is_idempotent(self, tmp_path):
        tracer = Tracer(sample_rate=1.0, sink=tmp_path / "t.jsonl")
        tracer.finish(tracer.begin(1), outcome="matched")
        tracer.close()
        tracer.close()
