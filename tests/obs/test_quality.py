"""Tests for the streaming quality monitor (Section VI-B, live)."""

from __future__ import annotations

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.metrics import compare_edge_sets, ground_truth_edges
from repro.obs import (AuditLog, Observability, QualityMonitor, QualityRule)
from repro.stream.generator import StreamConfig, StreamGenerator
from tests.conftest import make_message


def generated_stream(count: int = 800, seed: int = 7):
    config = StreamConfig(
        seed=seed, days=count / 100_000.0, messages_per_day=100_000,
        user_count=max(count // 10, 50), events_per_day=240.0)
    return StreamGenerator(config).generate_list()[:count]


def monitored_engine(**quality_kwargs):
    obs = Observability()
    obs.quality = QualityMonitor(obs.registry, **quality_kwargs)
    engine = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=50),
                               obs=obs)
    return engine, obs.quality


class TestOfflineAgreement:
    """The live monitor and the offline evaluation cannot disagree."""

    def test_cumulative_equals_compare_edge_sets_on_full_replay(self):
        messages = generated_stream()
        engine, monitor = monitored_engine()
        for message in messages:
            engine.ingest(message)

        offline = compare_edge_sets(engine.edge_pairs(),
                                    ground_truth_edges(messages))
        live = monitor.cumulative()
        assert live == offline  # same frozen dataclass, field for field
        assert live.accuracy == offline.accuracy
        assert live.coverage == offline.coverage
        assert live.f1 == offline.f1
        assert monitor.observed == len(messages)
        # The replay exercised something real on both sides.
        assert offline.reference_size > 0
        assert offline.candidate_size > 0

    def test_agreement_holds_on_every_prefix(self):
        messages = generated_stream(count=300)
        engine, monitor = monitored_engine()
        for index, message in enumerate(messages):
            engine.ingest(message)
            if index % 50 == 49:
                offline = compare_edge_sets(
                    engine.edge_pairs(),
                    ground_truth_edges(messages[:index + 1]))
                assert monitor.cumulative() == offline

    def test_gauges_read_the_same_values(self):
        messages = generated_stream(count=400)
        engine, monitor = monitored_engine()
        for message in messages:
            engine.ingest(message)
        value = engine.obs.registry.value
        cumulative = monitor.cumulative()
        assert value("repro_quality_accuracy") == cumulative.accuracy
        assert value("repro_quality_return") == cumulative.coverage
        assert value("repro_quality_f1") == cumulative.f1
        assert value("repro_quality_matched") == cumulative.matched
        assert (value("repro_quality_reference")
                == cumulative.reference_size)
        assert value("repro_quality_found") == cumulative.candidate_size
        windowed = monitor.windowed()
        assert (value("repro_quality_window_accuracy")
                == windowed.accuracy)
        assert value("repro_quality_window_return") == windowed.coverage


class TestWindowedView:
    def test_window_only_sees_recent_observations(self):
        monitor = QualityMonitor(window=4)
        # Four early misses, then four perfect hits: the cumulative
        # view remembers the misses, the window has forgotten them.
        for i in range(4):
            monitor._push((100 + i, 1), (100 + i, 99))  # wrong parent
        for i in range(4):
            monitor._push((200 + i, 2), (200 + i, 2))   # exact match
        assert monitor.windowed().accuracy == 1.0
        assert monitor.windowed().coverage == 1.0
        assert monitor.cumulative().accuracy == 0.5
        assert monitor.cumulative().coverage == 0.5

    def test_note_shed_costs_return_but_not_accuracy(self):
        monitor = QualityMonitor()
        message = make_message(5, "body", hours=0.0)
        object.__setattr__(message, "parent_id", 3)
        monitor.note_shed(message)
        view = monitor.cumulative()
        assert view.reference_size == 1
        assert view.candidate_size == 0
        assert view.coverage == 0.0

    def test_truthless_streams_keep_empty_set_conventions(self):
        monitor = QualityMonitor()
        engine, _ = None, None
        for i in range(5):
            monitor.observe(make_message(i, f"#t{i} body", hours=0.0),
                            None)
        view = monitor.cumulative()
        assert view.reference_size == 0
        assert view.accuracy == 1.0  # empty candidate vs empty reference
        assert view.coverage == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            QualityMonitor(window=0)
        with pytest.raises(ValueError):
            QualityMonitor(check_every=0)


class TestThresholdRules:
    def degraded_monitor(self, audit=None, only_degraded=True, rung=2):
        rule = QualityRule(name="accu-floor", metric="accuracy",
                           min_value=0.8, scope="window",
                           only_degraded=only_degraded, min_reference=4)
        return QualityMonitor(window=16, check_every=4, rules=(rule,),
                              rung=lambda: rung, audit=audit), rule

    def push_bad(self, monitor, count=8, start=0):
        for i in range(count):
            msg_id = 1000 + start + i
            monitor._push((msg_id, 1), (msg_id, 2))  # every edge wrong

    def push_good(self, monitor, count=8, start=0):
        for i in range(count):
            msg_id = 2000 + start + i
            monitor._push((msg_id, 7), (msg_id, 7))

    def test_alert_is_edge_triggered_once_per_excursion(self):
        monitor, rule = self.degraded_monitor()
        self.push_bad(monitor, count=16)
        assert len(monitor.alerts) == 1  # not one per check
        alert = monitor.alerts[0]
        assert alert["rule"] == "accu-floor"
        assert alert["metric"] == "accuracy"
        assert alert["value"] < rule.min_value
        assert alert["rung"] == 2

    def test_recovery_rearms_the_rule(self):
        monitor, _ = self.degraded_monitor()
        self.push_bad(monitor, count=8)
        assert len(monitor.alerts) == 1
        self.push_good(monitor, count=24)   # window goes clean
        self.push_bad(monitor, count=24, start=100)
        assert len(monitor.alerts) == 2     # second excursion, second alert

    def test_only_degraded_rules_stay_quiet_on_normal_rung(self):
        monitor, _ = self.degraded_monitor(rung=0)
        self.push_bad(monitor, count=32)
        assert monitor.alerts == []

    def test_always_on_rule_fires_regardless_of_rung(self):
        monitor, _ = self.degraded_monitor(only_degraded=False, rung=0)
        self.push_bad(monitor, count=8)
        assert len(monitor.alerts) == 1

    def test_min_reference_gates_early_noise(self):
        monitor, _ = self.degraded_monitor()
        self.push_bad(monitor, count=3)  # below min_reference=4... but
        # check_every=4 means no check ran yet either; push one more
        # with the reference still tiny after the window view.
        assert monitor.alerts == []

    def test_alert_lands_in_the_audit_stream(self):
        audit = AuditLog()
        monitor, rule = self.degraded_monitor(audit=audit)
        self.push_bad(monitor, count=8)
        assert len(audit.alerts) == 1
        payload = audit.alerts[0]
        assert payload["type"] == "alert"
        assert payload["rule"] == rule.name
        assert payload["threshold"] == rule.min_value
        assert monitor.alerts == audit.alerts

    def test_alert_counter_is_exported_per_rule(self):
        monitor, rule = self.degraded_monitor()
        self.push_bad(monitor, count=8)
        assert monitor.registry.value(
            "repro_quality_alerts_total", labels={"rule": rule.name}) == 1
        assert monitor.registry.value("repro_quality_alerts") == 1
