"""Tests for the ASCII line-chart renderer."""

from __future__ import annotations

import pytest

from repro.bench.reporting import line_chart


class TestLineChart:
    def test_basic_render(self):
        chart = line_chart([0, 50, 100], {"a": [0, 5, 10]}, width=20,
                           height=5)
        lines = chart.splitlines()
        assert len(lines) == 5 + 3  # grid + axis + range + legend
        assert "a" in lines[-1]

    def test_title_first(self):
        chart = line_chart([0, 1], {"s": [1, 2]}, title="Fig X")
        assert chart.splitlines()[0] == "Fig X"

    def test_marker_positions_extremes(self):
        chart = line_chart([0, 100], {"s": [0, 10]}, width=10, height=4)
        lines = chart.splitlines()
        # min value bottom-left, max value top-right
        grid = [line.split("|", 1)[1] for line in lines[:4]]
        assert grid[0].rstrip().endswith("*")   # top row, right edge
        assert grid[-1].lstrip().startswith("*")  # bottom row, left edge

    def test_multiple_series_distinct_markers(self):
        chart = line_chart([0, 1, 2], {"up": [0, 1, 2], "down": [2, 1, 0]},
                           width=12, height=5)
        assert "*" in chart and "o" in chart
        legend = chart.splitlines()[-1]
        assert "* up" in legend and "o down" in legend

    def test_y_axis_labels(self):
        chart = line_chart([0, 1], {"s": [1000, 5000]}, width=10, height=4)
        assert "5.00k" in chart
        assert "1.00k" in chart

    def test_x_range_printed(self):
        chart = line_chart([0, 700_000], {"s": [1, 2]}, width=20, height=4)
        assert "700k" in chart

    def test_flat_series_no_crash(self):
        chart = line_chart([0, 1, 2], {"s": [5, 5, 5]}, width=10, height=4)
        assert "*" in chart

    def test_single_point(self):
        chart = line_chart([10], {"s": [3]}, width=10, height=4)
        assert "*" in chart

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            line_chart([0, 1], {"s": [1]}, width=10, height=4)

    def test_empty_inputs(self):
        assert line_chart([], {}, title="T") == "T"
        assert line_chart([], {}) == ""
