"""Tests for text reporting helpers."""

from __future__ import annotations

import pytest

from repro.bench.reporting import (ascii_table, bar_chart, format_float,
                                   human_bytes, human_count, series_table)


class TestHumanCount:
    @pytest.mark.parametrize("value,expected", [
        (0, "0"),
        (999, "999"),
        (1500, "1.50k"),
        (45_321, "45.3k"),
        (700_000, "700k"),
        (1_234_567, "1.23m"),
        (2_000_000_000, "2.00b"),
    ])
    def test_formats(self, value, expected):
        assert human_count(value) == expected

    def test_fractional_small(self):
        assert human_count(0.5) == "0.50"


class TestHumanBytes:
    @pytest.mark.parametrize("value,expected", [
        (512, "512B"),
        (1536, "1.5KB"),
        (10 * 1024 * 1024, "10.0MB"),
        (3 * 1024 ** 3, "3.0GB"),
    ])
    def test_formats(self, value, expected):
        assert human_bytes(value) == expected


class TestFormatFloat:
    def test_trims_trailing_zeros(self):
        assert format_float(0.700) == "0.7"

    def test_keeps_precision(self):
        assert format_float(0.123456, digits=4) == "0.1235"

    def test_integer_value(self):
        assert format_float(2.0) == "2"


class TestAsciiTable:
    def test_alignment(self):
        table = ascii_table(["name", "value"],
                            [["a", 1], ["longer", 22]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len({line.index("value") if "value" in line else
                    lines[0].index("value") for line in lines[:1]}) == 1

    def test_title(self):
        table = ascii_table(["h"], [["x"]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        table = ascii_table(["a", "b"], [])
        assert "a" in table and "b" in table


class TestSeriesTable:
    def test_rows_per_checkpoint(self):
        table = series_table([100, 200], {"full": [1, 2], "partial": [3, 4]})
        lines = table.splitlines()
        assert len(lines) == 4
        assert "full" in lines[0] and "partial" in lines[0]

    def test_positions_humanised(self):
        table = series_table([100_000], {"m": [1]})
        assert "100k" in table


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = bar_chart(["a", "b"], [10, 5], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])

    def test_zero_values(self):
        chart = bar_chart(["a"], [0])
        assert "#" not in chart

    def test_title_included(self):
        assert bar_chart(["a"], [1], title="T").splitlines()[0] == "T"
