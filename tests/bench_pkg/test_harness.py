"""Tests for the lockstep comparison harness and workloads."""

from __future__ import annotations

import pytest

from repro.bench.harness import run_comparison
from repro.bench.workloads import MEDIUM, SMALL, TINY, three_variants
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from tests.conftest import make_message


def make_stream(count: int):
    return [make_message(i, f"#topic{i % 6} words here", user=f"u{i % 9}",
                         hours=i * 0.02) for i in range(count)]


class TestWorkloads:
    def test_sizes_ordered(self):
        assert (TINY.total_messages < SMALL.total_messages
                < MEDIUM.total_messages)

    def test_three_variants_configs(self):
        engines = three_variants(TINY)
        assert set(engines) == {"full", "partial", "bundle_limit"}
        assert engines["full"].config.max_pool_size is None
        assert engines["partial"].config.max_pool_size == TINY.pool_size
        assert engines["bundle_limit"].config.max_bundle_size == (
            TINY.bundle_size)

    def test_pool_ratio_roughly_preserved(self):
        for workload in (TINY, SMALL, MEDIUM):
            ratio = workload.total_messages / workload.pool_size
            assert 20 <= ratio <= 100


class TestRunComparison:
    def test_checkpoints_aligned(self):
        engines = {
            "full": ProvenanceIndexer(IndexerConfig.full_index()),
            "partial": ProvenanceIndexer(
                IndexerConfig.partial_index(pool_size=5)),
        }
        result = run_comparison(make_stream(40), engines,
                                checkpoint_every=15)
        assert result.positions() == [15, 30, 40]
        for name in engines:
            assert [p.messages_seen for p in result.checkpoints[name]] == (
                [15, 30, 40])

    def test_reference_not_compared_against_itself(self):
        engines = {
            "full": ProvenanceIndexer(IndexerConfig.full_index()),
            "partial": ProvenanceIndexer(
                IndexerConfig.partial_index(pool_size=5)),
        }
        result = run_comparison(make_stream(20), engines,
                                checkpoint_every=10)
        assert "full" not in result.comparisons
        assert len(result.comparisons["partial"]) == 2

    def test_reference_accuracy_is_sane(self):
        engines = {
            "full": ProvenanceIndexer(IndexerConfig.full_index()),
            "partial": ProvenanceIndexer(
                IndexerConfig.partial_index(pool_size=500)),
        }
        result = run_comparison(make_stream(60), engines,
                                checkpoint_every=30)
        final = result.comparisons["partial"][-1]
        # pool of 500 never refines on 60 messages: identical behaviour
        assert final.accuracy == 1.0
        assert final.coverage == 1.0

    def test_no_reference_skips_comparisons(self):
        engines = {"a": ProvenanceIndexer(IndexerConfig())}
        result = run_comparison(make_stream(10), engines,
                                checkpoint_every=5, reference=None)
        assert result.comparisons == {}

    def test_series_extraction(self):
        engines = {"full": ProvenanceIndexer(IndexerConfig.full_index())}
        result = run_comparison(make_stream(20), engines,
                                checkpoint_every=10)
        series = result.series("full", "bundle_count")
        assert len(series) == 2
        assert all(isinstance(v, int) for v in series)

    def test_methods_property(self):
        engines = {"full": ProvenanceIndexer(IndexerConfig())}
        result = run_comparison(make_stream(5), engines, checkpoint_every=0)
        assert result.methods == ["full"]
