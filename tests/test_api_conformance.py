"""Behavioural conformance of every backend to the ``Indexer`` protocol.

One retweet chain, five backends — the in-process engine, the
lock-guarded wrapper, the WAL-supervised stack, the in-process sharded
indexer and the multiprocess runtime — must agree on every protocol
verb: same provenance edges, same search ranking, same unified stats
keys.  The chain shares a single hashtag, so both routers co-locate it
on one shard and the sharded backends' state is bit-identical to the
single engine's.

The deprecated pre-protocol spellings must keep working but warn.
"""

from __future__ import annotations

import pytest

from repro.api import STATS_KEYS, Indexer, open_indexer
from repro.core.config import IndexerConfig
from repro.core.engine import IngestResult, ProvenanceIndexer
from repro.core.message import parse_message

BACKENDS = ("engine", "concurrent", "resilient", "sharded", "runtime")

BASE_DATE = 1_249_084_800.0


def rt_chain():
    """Three messages: a post and two retweets, one shared hashtag."""
    return [
        parse_message(0, "alice", BASE_DATE,
                      "#storm flood warning for the coast"),
        parse_message(1, "bob", BASE_DATE + 60.0,
                      "RT @alice: #storm flood warning for the coast"),
        parse_message(2, "carol", BASE_DATE + 120.0,
                      "RT @alice: #storm flood warning stay safe"),
    ]


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    """One open backend per param, closed after the test."""
    name = request.param
    if name == "resilient":
        indexer = open_indexer(name, root=tmp_path / "resilient")
    elif name == "sharded":
        indexer = open_indexer(name, workers=2)
    elif name == "runtime":
        indexer = open_indexer(name, root=tmp_path / "fleet", workers=2)
    else:
        indexer = open_indexer(name)
    yield indexer
    indexer.close()


@pytest.fixture(scope="module")
def reference():
    """The plain engine's ground truth for the chain."""
    engine = ProvenanceIndexer()
    engine.ingest_batch(rt_chain())
    return {
        "edges": engine.edge_pairs(),
        "hits": [(hit.bundle_id, hit.size, hit.score)
                 for hit in engine.search("#storm flood", k=5)],
        "stats": engine.stats(),
        "message_count": engine.snapshot().message_count,
    }


class TestConformance:
    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, Indexer)

    def test_ingest_batch_returns_results(self, backend):
        results = backend.ingest_batch(rt_chain())
        assert isinstance(results, list)
        assert len(results) == 3
        assert all(isinstance(result, IngestResult)
                   for result in results)
        assert [result.msg_id for result in results] == [0, 1, 2]

    def test_ingest_batch_count_only(self, backend):
        assert backend.ingest_batch(rt_chain(), count_only=True) == 3

    def test_identical_edges(self, backend, reference):
        backend.ingest_batch(rt_chain())
        assert backend.edge_pairs() == reference["edges"]

    def test_identical_search_hits(self, backend, reference):
        backend.ingest_batch(rt_chain())
        hits = [(hit.bundle_id, hit.size, hit.score)
                for hit in backend.search("#storm flood", k=5)]
        assert hits == reference["hits"]

    def test_unified_stats_keys_and_values(self, backend, reference):
        backend.ingest_batch(rt_chain())
        stats = backend.stats()
        assert set(stats) == STATS_KEYS
        for key in STATS_KEYS - {"shard_count"}:
            assert stats[key] == reference["stats"][key], key
        assert stats["shard_count"] >= 1

    def test_snapshot_accounts_messages(self, backend, reference):
        backend.ingest_batch(rt_chain())
        assert (backend.snapshot().message_count
                == reference["message_count"])

    def test_single_ingest_returns_result(self, backend):
        result = backend.ingest(rt_chain()[0])
        assert isinstance(result, IngestResult)
        assert result.msg_id == 0


@pytest.mark.parametrize("name", BACKENDS)
def test_context_manager(name, tmp_path):
    if name == "resilient":
        options = {"root": tmp_path / "resilient"}
    elif name == "sharded":
        options = {"workers": 2}
    elif name == "runtime":
        options = {"root": tmp_path / "fleet", "workers": 2}
    else:
        options = {}
    with open_indexer(name, **options) as indexer:
        indexer.ingest_batch(rt_chain(), count_only=True)
        assert indexer.stats()["messages_ingested"] == 3
    # close() is idempotent
    indexer.close()


def test_open_indexer_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown backend"):
        open_indexer("mystery")


class TestPostingsBackendMatrix:
    """Dict vs slab postings layouts must be observationally identical.

    The slab backend (and the vectorised Eq. 1 scoring it feeds) is a
    pure layout change: same candidate sets, same scores, same
    placements, same audit evidence.  Both cells of the matrix replay
    the same stream and every observable — provenance edges, search
    ranking, unified stats, the audit JSONL *bytes* — must agree.
    """

    POOL = 140  # ~70:1 message:pool ratio for the 10k seeded replay

    @staticmethod
    def _replay(backend, messages, sink):
        from repro.obs import AuditLog, Observability

        audit = AuditLog(sink=sink)
        engine = ProvenanceIndexer(
            IndexerConfig.partial_index(
                pool_size=TestPostingsBackendMatrix.POOL,
                postings_backend=backend),
            obs=Observability(audit=audit))
        engine.ingest_batch(messages, count_only=True)
        outcome = {
            "edges": engine.edge_pairs(),
            "stats": engine.stats(),
            "index_shape": {
                kind: (engine.summary_index.term_count(kind),
                       engine.summary_index.entry_count(kind),
                       sorted(engine.summary_index.postings_lengths(kind)))
                for kind in ("hashtag", "url", "keyword", "user")
            },
        }
        audit.close()
        return engine, outcome

    def _matrix(self, messages, tmp_path, query):
        results = {}
        for backend in ("slab", "dict"):
            sink = tmp_path / f"audit-{backend}.jsonl"
            engine, outcome = self._replay(backend, messages, sink)
            outcome["hits"] = [(hit.bundle_id, hit.size, hit.score)
                               for hit in engine.search(query, k=10)]
            outcome["audit_bytes"] = sink.read_bytes()
            results[backend] = outcome
        assert results["slab"]["audit_bytes"]  # non-empty comparison
        for key in ("edges", "stats", "index_shape", "hits",
                    "audit_bytes"):
            assert results["slab"][key] == results["dict"][key], key
        return results

    def test_rt_chain_byte_identical(self, tmp_path):
        results = self._matrix(rt_chain(), tmp_path, "#storm flood")
        assert results["slab"]["edges"]  # the chain links up

    def test_seeded_10k_replay_byte_identical(self, tmp_path):
        from repro.stream.generator import StreamConfig, StreamGenerator

        messages = StreamGenerator(StreamConfig(
            seed=11, days=2.0, messages_per_day=5000, user_count=400,
            events_per_day=15.0, event_volume_max=400)).generate_list()
        assert len(messages) >= 10_000
        results = self._matrix(messages, tmp_path, "#topic news")
        assert results["slab"]["stats"]["messages_ingested"] == len(messages)


class TestDeprecatedShims:
    """Old spellings warn but still work (see docs/api.md migration)."""

    def test_engine_ingest_all(self):
        engine = ProvenanceIndexer()
        with pytest.warns(DeprecationWarning, match="ingest_batch"):
            assert engine.ingest_all(rt_chain()) == 3

    def test_engine_memory_snapshot(self):
        engine = ProvenanceIndexer()
        engine.ingest_batch(rt_chain())
        with pytest.warns(DeprecationWarning, match="snapshot"):
            snap = engine.memory_snapshot()
        assert snap == engine.snapshot()

    def test_concurrent_memory_snapshot(self):
        from repro.core.concurrent import ConcurrentIndexer

        indexer = ConcurrentIndexer()
        indexer.ingest_batch(rt_chain())
        with pytest.warns(DeprecationWarning, match="snapshot"):
            snap = indexer.memory_snapshot()
        assert snap == indexer.snapshot()

    def test_concurrent_messages_ingested(self):
        from repro.core.concurrent import ConcurrentIndexer

        indexer = ConcurrentIndexer()
        indexer.ingest_batch(rt_chain())
        with pytest.warns(DeprecationWarning, match="stats"):
            assert indexer.messages_ingested() == 3
