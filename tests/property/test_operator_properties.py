"""Property-based tests for the bundle operator algebra."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bundle import Bundle
from repro.core.config import IndexerConfig
from repro.core.message import parse_message
from repro.core.operators import (bundle_difference, extract_cascade,
                                  filter_bundle, merge_bundles,
                                  rebuild_bundle, split_bundle_at)
from repro.core.validation import check_bundle

BASE_DATE = 1_249_084_800.0

words = st.text(alphabet="abcdefgh", min_size=2, max_size=5)


@st.composite
def bundles(draw, id_offset: int = 0, max_size: int = 18):
    count = draw(st.integers(min_value=1, max_value=max_size))
    tags = ["p", "q", "r"]
    bundle = Bundle(draw(st.integers(0, 5)), IndexerConfig())
    date = BASE_DATE
    for index in range(count):
        date += draw(st.floats(min_value=1.0, max_value=30_000.0,
                               allow_nan=False))
        text = f"#{draw(st.sampled_from(tags))} {draw(words)}"
        bundle.insert(parse_message(
            id_offset + index, draw(st.sampled_from(["a", "b", "c"])),
            date, text))
    return bundle


class TestOperatorProperties:
    @settings(max_examples=40)
    @given(bundles(), st.floats(min_value=0.0, max_value=2.0))
    def test_split_partitions_members(self, bundle, fraction):
        cut = bundle.start_time + fraction * max(bundle.time_span, 1.0)
        before, after = split_bundle_at(bundle, cut, before_id=100,
                                        after_id=101)
        assert set(before.message_ids()) | set(after.message_ids()) == \
            set(bundle.message_ids())
        assert not set(before.message_ids()) & set(after.message_ids())
        assert check_bundle(before) == []
        assert check_bundle(after) == []

    @settings(max_examples=40)
    @given(bundles(), st.floats(min_value=0.0, max_value=2.0))
    def test_split_edge_union_is_subset(self, bundle, fraction):
        cut = bundle.start_time + fraction * max(bundle.time_span, 1.0)
        before, after = split_bundle_at(bundle, cut, before_id=100,
                                        after_id=101)
        assert before.edge_pairs() | after.edge_pairs() <= \
            bundle.edge_pairs()

    @settings(max_examples=40)
    @given(bundles())
    def test_rebuild_full_selection_is_identity(self, bundle):
        clone = rebuild_bundle(bundle.bundle_id, bundle,
                               bundle.message_ids())
        assert clone.messages() == bundle.messages()
        assert clone.edge_pairs() == bundle.edge_pairs()
        assert clone.hashtag_counts == bundle.hashtag_counts
        assert check_bundle(clone) == []

    @settings(max_examples=40)
    @given(bundles())
    def test_filter_result_always_valid(self, bundle):
        filtered = filter_bundle(
            bundle, lambda m: m.msg_id % 2 == 0, bundle_id=200)
        assert check_bundle(filtered) == []
        assert all(m.msg_id % 2 == 0 for m in filtered.messages())

    @settings(max_examples=40)
    @given(bundles())
    def test_cascades_partition_under_roots(self, bundle):
        """Cascades extracted from all roots cover every member once."""
        from repro.core.graph import roots

        seen: list[int] = []
        for root in roots(bundle):
            cascade = extract_cascade(bundle, root, bundle_id=300)
            seen.extend(cascade.message_ids())
        assert sorted(seen) == sorted(bundle.message_ids())

    @settings(max_examples=30)
    @given(bundles(id_offset=0), bundles(id_offset=1000))
    def test_merge_valid_and_complete(self, first, second):
        merged = merge_bundles(999, first, second)
        assert set(merged.message_ids()) == (
            set(first.message_ids()) | set(second.message_ids()))
        assert check_bundle(merged) == []
        # internal edges of both inputs survive
        assert first.edge_pairs() <= merged.edge_pairs()
        assert second.edge_pairs() <= merged.edge_pairs()

    @settings(max_examples=40)
    @given(bundles())
    def test_difference_with_self_is_empty(self, bundle):
        assert bundle_difference(bundle, bundle).unchanged

    @settings(max_examples=30)
    @given(bundles(), st.floats(min_value=0.1, max_value=0.9))
    def test_diff_of_split_halves_reconstructs(self, bundle, fraction):
        cut = bundle.start_time + fraction * max(bundle.time_span, 1.0)
        before, after = split_bundle_at(bundle, cut, before_id=1,
                                        after_id=2)
        diff = bundle_difference(bundle, before)
        assert diff.added_messages == set(after.message_ids())
        assert not diff.removed_messages