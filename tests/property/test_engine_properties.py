"""Property-based tests wiring hypothesis to the invariant checker.

The strongest correctness statement the library makes is "after any
ingest sequence, every structural invariant holds".  These tests generate
arbitrary message streams and configurations and assert exactly that via
:mod:`repro.core.validation`, plus round-trip properties for the
persistence layers.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.message import parse_message
from repro.core.validation import check_bundle, check_engine
from repro.query.bundle_search import BundleSearchEngine
from repro.storage.snapshot import load_snapshot, save_snapshot

BASE_DATE = 1_249_084_800.0

words = st.text(alphabet="abcdefghij", min_size=2, max_size=6)


@st.composite
def streams(draw, max_size: int = 35):
    count = draw(st.integers(min_value=0, max_value=max_size))
    tags = ["red", "blue", "green"]
    users = ["ann", "bob", "cyd"]
    stream = []
    date = BASE_DATE
    for msg_id in range(count):
        date += draw(st.floats(min_value=0.0, max_value=20_000.0,
                               allow_nan=False))
        pieces = [draw(words)]
        if draw(st.booleans()):
            pieces.append("#" + draw(st.sampled_from(tags)))
        if draw(st.booleans()):
            pieces.append("bit.ly/" + draw(st.sampled_from("abc")))
        if draw(st.booleans()):
            pieces.insert(0, "RT @" + draw(st.sampled_from(users)) + ":")
        stream.append(parse_message(
            msg_id, draw(st.sampled_from(users)), date, " ".join(pieces)))
    return stream


@st.composite
def configs(draw):
    bounded = draw(st.booleans())
    if not bounded:
        return IndexerConfig.full_index()
    pool = draw(st.integers(min_value=2, max_value=12))
    if draw(st.booleans()):
        return IndexerConfig.bundle_limit(
            pool_size=pool,
            bundle_size=draw(st.integers(min_value=2, max_value=8)))
    return IndexerConfig.partial_index(pool_size=pool)


class TestEngineInvariants:
    @settings(max_examples=40, deadline=None)
    @given(streams(), configs())
    def test_all_invariants_after_any_stream(self, stream, config):
        indexer = ProvenanceIndexer(config)
        for message in stream:
            indexer.ingest(message)
        assert check_engine(indexer) == []

    @settings(max_examples=25, deadline=None)
    @given(streams(max_size=25))
    def test_snapshot_restore_preserves_invariants(self, stream):
        import tempfile
        from pathlib import Path

        indexer = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=6))
        for message in stream:
            indexer.ingest(message)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "snap.json"
            save_snapshot(indexer, path)
            restored = load_snapshot(path)
        assert check_engine(restored) == []
        assert restored.edge_pairs() == indexer.edge_pairs()

    @settings(max_examples=25, deadline=None)
    @given(streams(max_size=25), st.text(
        alphabet="abcdefghij #", min_size=1, max_size=20))
    def test_search_never_crashes_and_scores_ordered(self, stream, query):
        indexer = ProvenanceIndexer(IndexerConfig())
        for message in stream:
            indexer.ingest(message)
        engine = BundleSearchEngine(indexer)
        from repro.core.errors import QueryError

        try:
            hits = engine.search(query, k=5)
        except QueryError:
            return  # empty/blank queries may be rejected; that's the API
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)
        assert len(hits) <= 5

    @settings(max_examples=20, deadline=None)
    @given(streams(max_size=20))
    def test_store_round_trip_bundles_pass_checks(self, stream):
        import tempfile

        from repro.storage.bundle_store import BundleStore

        indexer = ProvenanceIndexer(IndexerConfig.full_index())
        for message in stream:
            indexer.ingest(message)
        with tempfile.TemporaryDirectory() as tmp:
            store = BundleStore(tmp)
            for bundle in indexer.pool:
                store.append(bundle)
            for bundle in store.iter_bundles():
                assert check_bundle(bundle) == []
