"""Property-based tests (hypothesis) on telemetry invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Histogram, MetricsRegistry, Tracer

observations = st.lists(
    st.floats(min_value=1e-9, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=300)


@given(values=observations, seed=st.integers(0, 2**16))
@settings(max_examples=60)
def test_percentiles_are_ordered_and_bounded(values, seed):
    """p50 ≤ p95 ≤ p99, and every quantile sits inside [min, max]."""
    hist = Histogram("h", buckets=(0.001, 1.0, 100.0),
                     reservoir_size=64, seed=seed)
    for value in values:
        hist.observe(value)
    p50, p95, p99 = (hist.percentile(q) for q in (50, 95, 99))
    assert p50 <= p95 <= p99
    assert min(values) <= p50
    assert p99 <= max(values)
    assert hist.min == min(values)
    assert hist.max == max(values)


@given(values=observations)
@settings(max_examples=60)
def test_bucket_counts_conserve_observations(values):
    """Cumulative buckets end at the exact observation count and never
    decrease bound to bound."""
    hist = Histogram("h", buckets=(0.001, 1.0, 100.0))
    for value in values:
        hist.observe(value)
    cumulative = hist.cumulative_buckets()
    counts = [count for _, count in cumulative]
    assert counts == sorted(counts)
    assert counts[-1] == len(values)
    assert hist.sum == sum(values)


@given(rate=st.floats(min_value=0.0, max_value=1.0),
       seed=st.integers(0, 2**16),
       count=st.integers(1, 200))
@settings(max_examples=60)
def test_sampling_replay_is_identical(rate, seed, count):
    """Two tracers with the same (seed, rate) sample the same ids."""
    def sampled_ids() -> "list[int]":
        tracer = Tracer(sample_rate=rate, seed=seed)
        out = []
        for trace_id in range(count):
            trace = tracer.begin(trace_id)
            if trace is not None:
                out.append(trace_id)
                tracer.finish(trace, outcome="matched")
        assert tracer.offered == count
        return out

    first, second = sampled_ids(), sampled_ids()
    assert first == second
    if rate == 0.0:
        assert first == []
    if rate == 1.0:
        assert first == list(range(count))


@given(label_values=st.lists(st.text(alphabet="abcdef", min_size=1,
                                     max_size=4),
                             min_size=1, max_size=40),
       cap=st.integers(1, 8))
@settings(max_examples=60)
def test_label_cardinality_never_exceeds_cap(label_values, cap):
    """However many label sets arrive, a family holds at most ``cap``
    children plus one shared overflow child."""
    registry = MetricsRegistry(max_label_sets=cap)
    for value in label_values:
        registry.counter("c_total", labels={"k": value}).inc()
    (family,) = registry.families()
    assert len(family.children) <= cap
    kept = {key[0][1] for key in family.children}
    # Every call whose label set did not win a child slot was counted.
    assert registry.dropped_label_sets == sum(
        1 for value in label_values if value not in kept)
    if len(set(label_values)) > cap:
        assert family.overflow is not None
    # Every increment landed somewhere: totals are conserved.
    total = sum(child.value for child in family.samples())
    assert total == len(label_values)
