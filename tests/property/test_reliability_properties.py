"""Property-based tests for the WAL's framing and escaping layers.

Two claims the reliability subsystem rests on:

* ``_escape`` / ``_unescape`` form an exact inverse pair for *any* text
  (a journal line must survive tabs, newlines, and — the historical
  trap — literal backslash sequences like ``"\\n"`` in message bodies);
* the CRC32 framing detects every single-byte corruption, so a record
  that replays is provably the record that was written.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.message import parse_message
from repro.storage.wal import (MessageJournal, ReplayStats, _escape,
                               _frame, _parse_line, _unescape)

texts = st.text(min_size=0, max_size=80)
#: Text biased toward the characters escaping actually touches,
#: including pre-escaped-looking sequences such as ``\n`` and ``\\t``.
tricky_texts = st.text(
    alphabet=st.sampled_from(list("ab\\nt\n\t\r")), min_size=0, max_size=40)


class TestEscapeRoundTrip:
    @given(text=texts)
    @settings(max_examples=200, deadline=None)
    def test_unescape_inverts_escape(self, text):
        assert _unescape(_escape(text)) == text

    @given(text=tricky_texts)
    @settings(max_examples=300, deadline=None)
    def test_round_trip_on_escape_dense_text(self, text):
        assert _unescape(_escape(text)) == text

    @given(text=texts)
    @settings(max_examples=200, deadline=None)
    def test_escaped_text_is_single_line(self, text):
        escaped = _escape(text)
        assert "\n" not in escaped
        assert "\t" not in escaped
        assert "\r" not in escaped

    @given(text=tricky_texts)
    @settings(max_examples=200, deadline=None)
    def test_journal_record_round_trips_text(self, text, tmp_path_factory):
        """The full append → replay path preserves the message verbatim."""
        from dataclasses import replace

        path = tmp_path_factory.mktemp("wal") / "round.wal"
        message = replace(parse_message(1, "prop", 0.0, "placeholder"),
                          text=text)
        with MessageJournal(path, sync_every=1) as journal:
            journal.append(message)
        replayed = list(MessageJournal.replay_entries(path))
        assert len(replayed) == 1
        assert replayed[0][1].text == text


class TestCrcFraming:
    @given(payload=st.text(
        alphabet=st.characters(blacklist_characters="\n\r",
                               blacklist_categories=("Cs",)),
        min_size=1, max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_intact_frame_parses(self, payload):
        framed = _frame(f"7\t1\tprop\t0.0\t\t\t{_escape(payload)}")
        parsed = _parse_line(framed)
        assert parsed is not None
        seq, message, legacy = parsed
        assert seq == 7 and not legacy
        assert message.text == payload

    @given(data=st.data())
    @settings(max_examples=300, deadline=None)
    def test_any_single_byte_corruption_is_rejected(self, data):
        """Flip one byte anywhere in a framed record: it must not parse
        back to a *different* record — either the CRC rejects it, or the
        line is no longer attributable to this seq."""
        text = data.draw(st.text(alphabet="abc#xyz ", min_size=1,
                                 max_size=30), label="text")
        line = _frame(f"3\t11\tprop\t42.0\t\t\t{_escape(text)}")
        raw = bytearray(line.encode("utf-8"))
        position = data.draw(st.integers(min_value=0,
                                         max_value=len(raw) - 1),
                             label="position")
        delta = data.draw(st.integers(min_value=1, max_value=255),
                          label="delta")
        raw[position] = (raw[position] + delta) % 256
        try:
            mutated = raw.decode("utf-8")
        except UnicodeDecodeError:
            return  # undecodable lines never reach _parse_line intact
        if "\n" in mutated or "\r" in mutated:
            return  # a line break splits the record: neither half has
            #         a valid CRC over its remaining payload
        parsed = _parse_line(mutated)
        if parsed is None:
            return  # detected — the expected outcome
        seq, message, legacy = parsed
        # The only undetectable mutations are those the framing is not
        # *supposed* to catch: a corrupted line that happens to look like
        # a (CRC-less) legacy v0 record.  A CRC-framed parse must match
        # the original exactly.
        if not legacy:
            assert seq == 3
            assert message.msg_id == 11
            assert message.text == text

    @given(count=st.integers(min_value=1, max_value=12),
           data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_replay_after_corruption_yields_subset(self, count, data,
                                                   tmp_path_factory):
        """Corrupt one byte of a journal: every surviving replayed record
        must be one of the originals, bit-for-bit."""
        path = tmp_path_factory.mktemp("wal") / "corrupt.wal"
        originals = [parse_message(i, f"u{i % 3}", float(i), f"body {i} #t")
                     for i in range(count)]
        with MessageJournal(path, sync_every=1) as journal:
            for message in originals:
                journal.append(message)
        raw = bytearray(path.read_bytes())
        position = data.draw(st.integers(min_value=0,
                                         max_value=len(raw) - 1),
                             label="position")
        delta = data.draw(st.integers(min_value=1, max_value=255),
                          label="delta")
        raw[position] = (raw[position] + delta) % 256
        path.write_bytes(bytes(raw))

        by_id = {message.msg_id: message for message in originals}
        stats = ReplayStats()
        for _, replayed in MessageJournal.replay_entries(path, stats=stats):
            original = by_id.get(replayed.msg_id)
            assert original is not None, "replay invented a message id"
            assert replayed == original, "replay returned a mutated record"
        assert stats.records + stats.skipped_corrupt >= count - 1
