"""Property-based tests (hypothesis) on audit-ring invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.obs import AuditLog, Observability
from tests.conftest import make_message

# Message shapes: a few hot topics (bundles that stay resident), many
# one-off topics (bundles that get refined away), and retweet-ish text.
topics = st.integers(min_value=0, max_value=4)
shapes = st.sampled_from(["hot", "solo", "rt"])
message_plans = st.lists(st.tuples(shapes, topics),
                         min_size=1, max_size=120)


def replay(plan, capacity):
    audit = AuditLog(capacity=capacity)
    engine = ProvenanceIndexer(
        IndexerConfig.partial_index(pool_size=8),
        obs=Observability(audit=audit))
    for index, (shape, topic) in enumerate(plan):
        if shape == "hot":
            text = f"#topic{topic} the ongoing shared story"
            user = f"fan{index % 3}"
        elif shape == "rt":
            text = f"RT @fan0: #topic{topic} the ongoing shared story"
            user = f"echo{index % 5}"
        else:
            text = f"#solo{index} a standalone item number {index}"
            user = f"solo{index}"
        engine.ingest(make_message(index, text, user=user,
                                   hours=index * 0.03))
    return engine, audit


@given(plan=message_plans, capacity=st.integers(1, 16))
@settings(max_examples=40, deadline=None)
def test_ring_eviction_never_loses_a_pool_resident_record(plan, capacity):
    """Residency protection: any message the pool still holds stays
    explainable, no matter how small the ring is."""
    engine, audit = replay(plan, capacity)
    for bundle in engine.pool:
        for msg_id in bundle.message_ids():
            record = audit.record_for(msg_id)
            assert record is not None, (
                f"pool-resident message {msg_id} lost its audit record "
                f"(capacity={capacity})")
            assert record.bundle_id == bundle.bundle_id


@given(plan=message_plans, capacity=st.integers(1, 16))
@settings(max_examples=40, deadline=None)
def test_ring_accounting_is_conserved(plan, capacity):
    """Records are only ever in the ring or counted as dropped (minus
    deferral lines superseded by their drained placement)."""
    engine, audit = replay(plan, capacity)
    assert audit.recorded == len(plan)
    assert len(audit) + audit.dropped == audit.recorded
    assert len(audit) <= max(capacity, engine.pool.message_count())
    # The index never points at evicted records.
    for record in audit.tail(len(audit)):
        assert audit.record_for(record.msg_id) is not None


@given(plan=message_plans)
@settings(max_examples=20, deadline=None)
def test_every_ingest_is_recorded_with_matching_outcome(plan):
    """An unbounded ring holds one coherent record per ingest."""
    engine, audit = replay(plan, capacity=4096)
    assert audit.recorded == len(plan)
    seen = set()
    for record in audit.tail(len(plan)):
        assert record.msg_id not in seen
        seen.add(record.msg_id)
        assert record.placed
        record.materialize()
        selected = [c for c in record.candidates if c.selected]
        if record.outcome.value == "matched":
            assert [c.bundle_id for c in selected] == [record.bundle_id]
        else:
            assert record.outcome.value == "new-bundle"
            assert selected == []
    assert seen == set(range(len(plan)))
