"""Property-based tests for the text retrieval substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.analyzer import Analyzer, light_stem
from repro.text.highlight import find_spans, highlight
from repro.text.inverted_index import InvertedIndex
from repro.text.scoring import BM25Scorer, TfIdfScorer

words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=3,
                max_size=9)
documents = st.lists(
    st.lists(words, min_size=1, max_size=15).map(" ".join),
    min_size=1, max_size=12)


def build_index(texts: "list[str]") -> InvertedIndex:
    index = InvertedIndex(Analyzer())
    for doc_id, text in enumerate(texts):
        index.add_document(doc_id, text)
    return index


class TestAnalyzerProperties:
    @given(words)
    def test_stemming_idempotent(self, word):
        once = light_stem(word)
        assert light_stem(once) == once or len(light_stem(once)) <= len(once)

    @given(st.lists(words, max_size=20).map(" ".join))
    def test_analyze_deterministic(self, text):
        analyzer = Analyzer()
        assert analyzer.analyze(text) == analyzer.analyze(text)

    @given(st.lists(words, max_size=20).map(" ".join))
    def test_keywords_subset_of_terms(self, text):
        analyzer = Analyzer()
        keywords = set(analyzer.keywords(text))
        assert keywords <= set(analyzer.analyze(text))


class TestIndexProperties:
    @settings(max_examples=40)
    @given(documents)
    def test_doc_frequencies_bounded(self, texts):
        index = build_index(texts)
        for term in index.terms():
            df = index.doc_frequency(term)
            assert 1 <= df <= len(texts)

    @settings(max_examples=40)
    @given(documents)
    def test_total_length_equals_sum(self, texts):
        index = build_index(texts)
        total = sum(index.doc_length(doc_id)
                    for doc_id in range(len(texts)))
        assert index.average_doc_length * index.doc_count == \
            pytest.approx(total)

    @settings(max_examples=30)
    @given(documents, st.integers(min_value=0, max_value=11))
    def test_remove_then_stats_consistent(self, texts, victim):
        index = build_index(texts)
        victim = victim % len(texts)
        index.remove_document(victim)
        assert victim not in index
        assert index.doc_count == len(texts) - 1
        for term in index.terms():
            assert index.doc_frequency(term) >= 1


class TestScorerProperties:
    @settings(max_examples=40)
    @given(documents)
    def test_bm25_scores_non_negative(self, texts):
        index = build_index(texts)
        scorer = BM25Scorer(index)
        some_terms = list(index.terms())[:3]
        for score in scorer.score_all(some_terms).values():
            assert score >= 0.0

    @settings(max_examples=40)
    @given(documents)
    def test_scorers_agree_on_match_set(self, texts):
        """TF-IDF and BM25 must retrieve the same documents (scores
        differ, the boolean match set must not)."""
        index = build_index(texts)
        terms = list(index.terms())[:3]
        if not terms:
            return
        bm25 = set(BM25Scorer(index).score_all(terms))
        tfidf = set(TfIdfScorer(index).score_all(terms))
        assert bm25 == tfidf

    @settings(max_examples=30)
    @given(documents)
    def test_idf_monotone_in_rarity(self, texts):
        index = build_index(texts)
        scorer = BM25Scorer(index)
        terms = sorted(index.terms(),
                       key=lambda t: index.doc_frequency(t))
        for rare, common in zip(terms, terms[1:]):
            if index.doc_frequency(rare) < index.doc_frequency(common):
                assert scorer.idf(rare) >= scorer.idf(common)


class TestHighlightProperties:
    @settings(max_examples=40)
    @given(st.lists(words, min_size=1, max_size=10).map(" ".join),
           st.lists(words, max_size=3))
    def test_highlight_preserves_text_content(self, text, query):
        marked = highlight(text, query, prefix="<", suffix=">")
        assert marked.replace("<", "").replace(">", "") == text

    @settings(max_examples=40)
    @given(st.lists(words, min_size=1, max_size=10).map(" ".join),
           st.lists(words, max_size=3))
    def test_spans_within_bounds_and_ordered(self, text, query):
        spans = find_spans(text, query)
        previous_end = 0
        for span in spans:
            assert 0 <= span.start < span.end <= len(text)
            assert span.start >= previous_end
            previous_end = span.end
