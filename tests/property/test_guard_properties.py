"""Property-based tests for the guard's statistical machinery.

Two subsystems whose correctness is probabilistic rather than
structural, so they get property coverage:

* ``MinHasher`` — the signature-agreement estimate must track exact
  shingle Jaccard within the binomial error of ``num_hashes`` draws,
  and signatures/bands must be deterministic across instances (the
  LSH index is rebuilt from scratch on every restart);
* ``CredibilityTracker`` — the spam score must be monotone in observed
  duplicates, stay inside ``[0, 1]``, and decay toward the neutral 0.5
  prior rather than past it.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.credibility import CredibilityTracker
from repro.core.dedup import (DuplicateDetector, MinHasher, jaccard,
                              shingles)
from tests.conftest import make_message

words = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
texts = st.lists(words, min_size=1, max_size=30).map(" ".join)


class TestMinHashEstimate:
    @given(first=texts, second=texts)
    @settings(max_examples=150, deadline=None)
    def test_estimate_tracks_exact_jaccard(self, first, second):
        hasher = MinHasher(num_hashes=128)
        a, b = shingles(first), shingles(second)
        exact = jaccard(a, b)
        estimate = MinHasher.estimate(hasher.signature(a),
                                      hasher.signature(b))
        # 128 draws of a Bernoulli(exact): beyond ~5 sigma is a bug,
        # not bad luck (sigma ≈ 0.044 at p=0.5).
        assert abs(estimate - exact) <= 0.25

    @given(text=texts)
    @settings(max_examples=100, deadline=None)
    def test_identical_sets_estimate_one(self, text):
        hasher = MinHasher(num_hashes=64)
        signature = hasher.signature(shingles(text))
        assert MinHasher.estimate(signature, signature) == 1.0

    @given(text=texts)
    @settings(max_examples=100, deadline=None)
    def test_signatures_deterministic_across_instances(self, text):
        grams = shingles(text)
        assert MinHasher(32).signature(grams) == \
            MinHasher(32).signature(grams)


class TestBandDeterminism:
    @given(body=texts, ids=st.lists(st.integers(0, 10_000), min_size=2,
                                    max_size=8, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_detector_verdicts_reproducible(self, body, ids):
        # Two detectors fed the same stream must agree on every verdict
        # — restart-rebuilt LSH state may never change what folds.
        stream = [make_message(msg_id, body + f" tail{i % 3}",
                              hours=i * 0.1)
                  for i, msg_id in enumerate(sorted(ids))]
        first = DuplicateDetector(threshold=0.5)
        second = DuplicateDetector(threshold=0.5)
        for message in stream:
            assert first.check_and_add(message) == \
                second.check_and_add(message)

    @given(text=texts)
    @settings(max_examples=60, deadline=None)
    def test_exact_copy_is_always_caught(self, text):
        detector = DuplicateDetector(threshold=0.99)
        detector.check_and_add(make_message(1, text))
        assert detector.check_and_add(
            make_message(2, text, hours=0.1)) == 1


class TestSpamScore:
    @given(dups=st.integers(0, 40), clean=st.integers(0, 40))
    @settings(max_examples=150, deadline=None)
    def test_score_bounded_and_monotone_in_duplicates(self, dups, clean):
        tracker = CredibilityTracker(prior=2.0)
        for _ in range(clean):
            tracker.note_message("u")
        previous = tracker.spam_score("u")
        assert 0.0 <= previous <= 1.0
        for _ in range(dups):
            tracker.note_duplicate("u")
            score = tracker.spam_score("u")
            assert score >= previous, \
                "another duplicate must never lower the spam score"
            assert 0.0 <= score <= 1.0
            previous = score

    @given(clean=st.integers(1, 40))
    @settings(max_examples=100, deadline=None)
    def test_clean_history_scores_below_neutral(self, clean):
        tracker = CredibilityTracker(prior=2.0)
        for _ in range(clean):
            tracker.note_message("u")
        assert tracker.spam_score("u") < 0.5
        assert tracker.spam_score("unseen-user") == 0.5

    @given(dups=st.integers(1, 30), clean=st.integers(0, 30),
           factor=st.floats(0.1, 0.9),
           rounds=st.integers(1, 12))
    @settings(max_examples=150, deadline=None)
    def test_decay_moves_score_toward_neutral(self, dups, clean, factor,
                                              rounds):
        tracker = CredibilityTracker(prior=2.0)
        for _ in range(clean):
            tracker.note_message("u")
        for _ in range(dups):
            tracker.note_duplicate("u")
        score = tracker.spam_score("u")
        for _ in range(rounds):
            decayed = tracker.decay(factor) or tracker.spam_score("u")
            # Each decay round shrinks the evidence, pulling the score
            # strictly toward (never past) the 0.5 prior.
            if score > 0.5:
                assert 0.5 <= decayed <= score + 1e-12
            else:
                assert score - 1e-12 <= decayed <= 0.5
            score = decayed
        # Exposure decays with the counters, so a reformed user also
        # drops back under any judgment gate eventually.
        assert tracker.exposure("u") <= dups + clean
