"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bundle import Bundle
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.graph import cascade_stats, roots
from repro.core.message import (extract_hashtags, extract_urls,
                                parse_message)
from repro.core.metrics import compare_edge_sets
from repro.core.scoring import (hashtag_overlap, message_similarity,
                                time_closeness, url_overlap)
from repro.storage.serializer import bundle_from_dict, bundle_to_dict
from repro.stream.stats import histogram
from repro.text.analyzer import Analyzer, light_stem
from repro.text.tokenizer import tokenize

BASE_DATE = 1_249_084_800.0

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

words = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                max_size=10)

message_texts = st.lists(
    st.one_of(
        words,
        words.map(lambda w: "#" + w),
        words.map(lambda w: "bit.ly/" + w),
        words.map(lambda w: "RT @" + w + ":"),
    ),
    min_size=0, max_size=12,
).map(" ".join)


@st.composite
def message_streams(draw, max_size: int = 30):
    """Arrival-ordered lists of parsed messages with bounded vocab."""
    count = draw(st.integers(min_value=1, max_value=max_size))
    tags = ["alpha", "beta", "gamma", "delta"]
    stream = []
    date = BASE_DATE
    for msg_id in range(count):
        date += draw(st.floats(min_value=0.0, max_value=7200.0,
                               allow_nan=False))
        tag = draw(st.sampled_from(tags))
        extra = draw(words)
        text = f"#{tag} {extra} message"
        user = draw(st.sampled_from(["ann", "bob", "cyd", "dee"]))
        stream.append(parse_message(msg_id, user, date, text))
    return stream


# ---------------------------------------------------------------------------
# Parsing / text properties
# ---------------------------------------------------------------------------


class TestParsingProperties:
    @given(message_texts)
    def test_parse_never_crashes(self, text):
        message = parse_message(0, "user", BASE_DATE, text)
        assert message.text == text

    @given(message_texts)
    def test_extracted_hashtags_are_lowercase(self, text):
        assert all(tag == tag.lower() for tag in extract_hashtags(text))

    @given(message_texts)
    def test_urls_have_no_scheme(self, text):
        assert not any(url.startswith("http")
                       for url in extract_urls(text))

    @given(st.text(max_size=200))
    def test_tokenize_total_function(self, text):
        tokens = tokenize(text)
        positions = [t.position for t in tokens]
        assert positions == sorted(positions)

    @given(words)
    def test_light_stem_never_longer(self, word):
        stemmed = light_stem(word)
        assert len(stemmed) <= len(word) + 1  # ies->y can keep length-1+1

    @given(st.text(max_size=140))
    def test_analyzer_terms_are_clean(self, text):
        analyzer = Analyzer()
        for term in analyzer.analyze(text):
            assert term == term.lower()
            assert len(term) >= analyzer.min_length - 1  # stem may shorten


# ---------------------------------------------------------------------------
# Scoring properties
# ---------------------------------------------------------------------------


class TestScoringProperties:
    @given(message_streams(max_size=6))
    def test_overlaps_bounded(self, stream):
        for later in stream[1:]:
            earlier = stream[0]
            assert 0.0 <= url_overlap(later, earlier) <= 1.0
            assert 0.0 <= hashtag_overlap(later, earlier) <= 1.0
            assert 0.0 < time_closeness(later, earlier) <= 1.0

    @given(message_streams(max_size=6))
    def test_similarity_non_negative(self, stream):
        config = IndexerConfig()
        for later in stream[1:]:
            assert message_similarity(later, stream[0], config) >= 0.0


# ---------------------------------------------------------------------------
# Bundle forest invariants
# ---------------------------------------------------------------------------


class TestBundleProperties:
    @settings(max_examples=40)
    @given(message_streams(max_size=25))
    def test_bundle_forest_invariants(self, stream):
        """Inserting any arrival-ordered stream into one bundle yields an
        acyclic forest whose edges point strictly backwards."""
        bundle = Bundle(0, IndexerConfig())
        analyzer = Analyzer()
        for message in stream:
            bundle.insert(message, frozenset(analyzer.keywords(message.text)))
        assert len(bundle) == len(stream)
        member_ids = set(bundle.message_ids())
        for edge in bundle.edges():
            assert edge.src_id in member_ids
            assert edge.dst_id in member_ids
            assert edge.dst_id < edge.src_id
        stats = cascade_stats(bundle)  # raises on cycle
        assert stats.root_count >= 1
        assert stats.edge_count + stats.root_count == len(bundle)
        assert roots(bundle)

    @settings(max_examples=30)
    @given(message_streams(max_size=20))
    def test_serializer_round_trip(self, stream):
        bundle = Bundle(3, IndexerConfig())
        for message in stream:
            bundle.insert(message)
        restored = bundle_from_dict(bundle_to_dict(bundle))
        assert restored.messages() == bundle.messages()
        assert restored.edge_pairs() == bundle.edge_pairs()
        assert restored.hashtag_counts == bundle.hashtag_counts


# ---------------------------------------------------------------------------
# Engine invariants
# ---------------------------------------------------------------------------


class TestEngineProperties:
    @settings(max_examples=25, deadline=None)
    @given(message_streams(max_size=30),
           st.integers(min_value=2, max_value=8))
    def test_pool_bound_always_holds_after_refinement(self, stream, bound):
        indexer = ProvenanceIndexer(
            IndexerConfig.partial_index(pool_size=bound))
        for message in stream:
            indexer.ingest(message)
            assert len(indexer.pool) <= bound + 1  # +1 before trigger fires

    @settings(max_examples=25, deadline=None)
    @given(message_streams(max_size=30))
    def test_each_message_assigned_exactly_once(self, stream):
        indexer = ProvenanceIndexer(IndexerConfig.full_index())
        for message in stream:
            indexer.ingest(message)
        seen: set[int] = set()
        for bundle in indexer.pool:
            for msg_id in bundle.message_ids():
                assert msg_id not in seen
                seen.add(msg_id)
        assert seen == {m.msg_id for m in stream}

    @settings(max_examples=25, deadline=None)
    @given(message_streams(max_size=25))
    def test_edge_count_below_message_count(self, stream):
        indexer = ProvenanceIndexer(IndexerConfig.full_index())
        for message in stream:
            indexer.ingest(message)
        assert len(indexer.edge_pairs()) < len(stream) or not stream


# ---------------------------------------------------------------------------
# Metrics properties
# ---------------------------------------------------------------------------

edge_sets = st.sets(
    st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=30)


class TestMetricsProperties:
    @given(edge_sets, edge_sets)
    def test_accuracy_and_coverage_bounded(self, candidate, reference):
        cmp = compare_edge_sets(candidate, reference)
        assert 0.0 <= cmp.accuracy <= 1.0
        assert 0.0 <= cmp.coverage <= 1.0
        assert 0.0 <= cmp.f1 <= 1.0

    @given(edge_sets)
    def test_self_comparison_perfect(self, edges):
        cmp = compare_edge_sets(edges, edges)
        assert cmp.accuracy == 1.0
        assert cmp.coverage == 1.0

    @given(edge_sets, edge_sets)
    def test_matched_bounded_by_both(self, candidate, reference):
        cmp = compare_edge_sets(candidate, reference)
        assert cmp.matched <= min(cmp.candidate_size, cmp.reference_size)


class TestHistogramProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), max_size=100),
           st.lists(st.integers(-100, 100), min_size=2, max_size=10,
                    unique=True).map(sorted))
    def test_histogram_conserves_count(self, values, edges):
        counts = histogram(values, edges)
        assert sum(counts) == len(values)
        assert len(counts) == len(edges) - 1
