"""Property-based tests for stream-layer components."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.message import parse_message
from repro.core.sharding import ShardedIndexer
from repro.stream.merge import (deduplicate_stream, merge_streams,
                                renumber_stream)
from repro.stream.sampling import sample_deterministic, sample_uniform
from repro.stream.window import SlidingWindowMonitor

BASE_DATE = 1_249_084_800.0


@st.composite
def ordered_streams(draw, max_size: int = 25, id_start: int = 0):
    count = draw(st.integers(min_value=0, max_value=max_size))
    stream = []
    date = BASE_DATE
    for index in range(count):
        date += draw(st.floats(min_value=0.0, max_value=5000.0,
                               allow_nan=False))
        tag = draw(st.sampled_from(["a", "b", "c"]))
        stream.append(parse_message(
            id_start + index, draw(st.sampled_from(["x", "y"])),
            date, f"#{tag} text {index}"))
    return stream


class TestMergeProperties:
    @settings(max_examples=40)
    @given(ordered_streams(), ordered_streams(id_start=10_000))
    def test_merge_is_ordered_and_complete(self, left, right):
        merged = list(merge_streams(left, right))
        assert len(merged) == len(left) + len(right)
        keys = [m.sort_key() for m in merged]
        assert keys == sorted(keys)

    @settings(max_examples=40)
    @given(ordered_streams())
    def test_merge_with_empty_is_identity(self, stream):
        assert list(merge_streams(stream, [])) == stream

    @settings(max_examples=40)
    @given(ordered_streams())
    def test_renumber_preserves_order_and_density(self, stream):
        renumbered = list(renumber_stream(stream))
        assert [m.msg_id for m in renumbered] == list(range(len(stream)))
        assert [m.date for m in renumbered] == [m.date for m in stream]

    @settings(max_examples=40)
    @given(ordered_streams())
    def test_dedup_idempotent(self, stream):
        once = list(deduplicate_stream(stream))
        twice = list(deduplicate_stream(once))
        assert once == twice


class TestSamplingProperties:
    @settings(max_examples=30)
    @given(ordered_streams(), st.floats(min_value=0.05, max_value=1.0),
           st.integers(0, 100))
    def test_uniform_sample_is_ordered_subsequence(self, stream, rate,
                                                   seed):
        sampled = list(sample_uniform(stream, rate, seed=seed))
        ids = [m.msg_id for m in sampled]
        assert ids == sorted(ids)
        assert set(ids) <= {m.msg_id for m in stream}

    @settings(max_examples=30)
    @given(ordered_streams(),
           st.floats(min_value=0.05, max_value=0.95),
           st.floats(min_value=0.0, max_value=0.9))
    def test_deterministic_subset_monotone_in_rate(self, stream, rate,
                                                   delta):
        low = {m.msg_id for m in
               sample_deterministic(stream, rate * (1 - delta) or 0.01,
                                    salt="s")}
        high = {m.msg_id for m in sample_deterministic(stream, rate,
                                                       salt="s")}
        assert low <= high


class TestWindowProperties:
    @settings(max_examples=30, deadline=None)
    @given(ordered_streams(max_size=40))
    def test_window_counts_conserved(self, stream):
        monitor = SlidingWindowMonitor(short_window=1800.0,
                                       long_window=7200.0)
        for message in stream:
            monitor.observe(message)
            # the long window can never hold more than everything seen
            assert len(monitor) <= len(stream)
            # every retained tag count is positive
            for _, count in monitor.top_hashtags(100):
                assert count > 0


class TestShardingProperties:
    @settings(max_examples=30, deadline=None)
    @given(ordered_streams(max_size=30),
           st.integers(min_value=1, max_value=8),
           st.sampled_from(["hash", "cooccurrence"]))
    def test_every_message_placed_once(self, stream, shards, router):
        sharded = ShardedIndexer(shards, router=router)
        for message in stream:
            shard, _ = sharded.ingest_routed(message)
            assert 0 <= shard < shards
        assert sharded.shard_stats().total_messages == len(stream)

    @settings(max_examples=30)
    @given(ordered_streams(max_size=30),
           st.integers(min_value=2, max_value=8))
    def test_hash_router_pure(self, stream, shards):
        """The hash router must not depend on ingestion history."""
        fresh = ShardedIndexer(shards, router="hash")
        warmed = ShardedIndexer(shards, router="hash")
        for message in stream:
            warmed.ingest(message)
        for message in stream:
            assert fresh.route(message) == warmed.route(message)
