"""Fleet-wide trace propagation: stitching, crashes, determinism.

The load-bearing property is additivity: every hop boundary in a
stitched trace is a ``time.monotonic()`` stamp shared with its
neighbour, so the hop durations partition the end-to-end latency — the
acceptance bar says within 5%, the construction delivers it exactly.
The crash tests pin the other half of the contract: a SIGKILL mid-batch
yields a trace that *says so* (an explicit dead hop, never a silent
truncation), and the restarted worker's span ids never collide with the
dead boot's (the durable boot counter).
"""

from __future__ import annotations

import time

import pytest

from repro.core.message import parse_message
from repro.runtime import ShardedRuntime, WorkerCrash

BASE_DATE = 1_249_084_800.0

HOP_CHAIN = ("route", "coordinator_buffer", "queue_wait", "batch_wait",
             "service", "worker_drain", "ack_transit")


def stream(count, start=0):
    out = []
    for i in range(start, start + count):
        user = f"u{i % 23}"
        if i % 3 == 1:
            text = f"RT @u{(i - 1) % 23}: #tag{i % 7} report {i - 1}"
        else:
            text = f"#tag{i % 7} report {i}"
        out.append(parse_message(i, user, BASE_DATE + i * 2.0, text))
    return out


def hops(trace):
    return [s for s in trace.spans if s.tags.get("kind") == "hop"]


def stages(trace):
    return [s for s in trace.spans if s.tags.get("kind") == "stage"]


@pytest.fixture(scope="module")
def traced_fleet(tmp_path_factory):
    """A 2-worker fleet tracing every message, preloaded with 120."""
    root = tmp_path_factory.mktemp("traced-fleet")
    runtime = ShardedRuntime(root, 2, trace_sample=1.0, trace_seed=7,
                             trace_keep=512)
    runtime.ingest_batch(stream(120), count_only=True)
    yield runtime
    runtime.close()


class TestStitching:
    """One ingest → one multi-process trace with additive hops."""

    def test_every_message_yields_one_trace(self, traced_fleet):
        finished = list(traced_fleet.tracer.finished)
        assert len(finished) == 120
        assert {t.trace_id for t in finished} == set(range(120))

    def test_hop_durations_sum_to_end_to_end_latency(self, traced_fleet):
        for trace in traced_fleet.tracer.finished:
            total = sum(h.duration for h in hops(trace))
            assert trace.duration > 0.0
            # The acceptance bar is 5%; construction makes it exact.
            assert total == pytest.approx(trace.duration, rel=0.05)

    def test_hop_chain_is_complete_and_ordered(self, traced_fleet):
        for trace in traced_fleet.tracer.finished:
            names = tuple(h.name for h in hops(trace))
            assert names == HOP_CHAIN
            starts = [h.start for h in hops(trace)]
            assert starts == sorted(starts)

    def test_consecutive_hops_share_boundaries(self, traced_fleet):
        trace = next(iter(traced_fleet.tracer.finished))
        chain = hops(trace)
        for earlier, later in zip(chain, chain[1:]):
            assert later.start == pytest.approx(
                earlier.start + earlier.duration, abs=1e-9)

    def test_service_hop_carries_worker_span_id(self, traced_fleet):
        for trace in traced_fleet.tracer.finished:
            service = next(h for h in hops(trace) if h.name == "service")
            span_id = str(service.tags["span_id"])
            shard, boot, seq = span_id.split(".")
            assert int(service.tags["shard"]) == int(shard)
            assert int(boot) >= 1
            assert int(seq) >= 1

    def test_engine_stages_nest_inside_service_hop(self, traced_fleet):
        nested = 0
        for trace in traced_fleet.tracer.finished:
            if trace.outcome not in ("matched", "new-bundle"):
                continue
            service = next(h for h in hops(trace) if h.name == "service")
            for stage in stages(trace):
                assert stage.start >= service.start - 1e-9
                assert (stage.start + stage.duration
                        <= service.start + service.duration + 1e-9)
                nested += 1
        assert nested > 0

    def test_traces_carry_outcome_and_shard(self, traced_fleet):
        for trace in traced_fleet.tracer.finished:
            assert trace.outcome in ("matched", "new-bundle", "deferred")
            assert trace.tags["shard"] in (0, 1)
            assert trace.tags["msg_id"] == trace.trace_id

    def test_ack_wait_decomposes_into_queue_and_service(self, traced_fleet):
        stats = traced_fleet.stats
        assert stats.queue_wait_seconds > 0.0
        assert stats.service_seconds > 0.0
        exported = stats.as_dict()
        assert exported["queue_wait_seconds"] == pytest.approx(
            stats.queue_wait_seconds, abs=1e-5)
        assert exported["service_seconds"] == pytest.approx(
            stats.service_seconds, abs=1e-5)


class TestDeterministicSampling:
    """The coordinator's seeded decision samples the same messages."""

    def test_same_seed_samples_same_messages(self, tmp_path):
        sampled = []
        for attempt in ("a", "b"):
            with ShardedRuntime(tmp_path / attempt, 2, trace_sample=0.3,
                                trace_seed=11) as runtime:
                runtime.ingest_batch(stream(200), count_only=True)
                sampled.append(sorted(
                    t.trace_id for t in runtime.tracer.finished))
        assert sampled[0] == sampled[1]
        assert 0 < len(sampled[0]) < 200

    def test_different_seed_samples_differently(self, tmp_path):
        sampled = []
        for seed in (1, 2):
            with ShardedRuntime(tmp_path / f"s{seed}", 2,
                                trace_sample=0.3,
                                trace_seed=seed) as runtime:
                runtime.ingest_batch(stream(200), count_only=True)
                sampled.append(sorted(
                    t.trace_id for t in runtime.tracer.finished))
        assert sampled[0] != sampled[1]


class TestCrashTracing:
    """SIGKILL mid-batch: explicit dead hops, no span-id reuse."""

    def test_dead_hop_marks_the_lost_batch(self, tmp_path):
        with ShardedRuntime(tmp_path / "fleet", 2, trace_sample=1.0,
                            trace_seed=7) as runtime:
            # Dispatch a batch big enough that the worker is still
            # indexing when the SIGKILL lands, then collect: the
            # coordinator detects the death, restarts the shard and
            # finishes the riding traces with an explicit dead hop.
            worker = runtime._workers[0]
            batch = stream(3000)
            traces = []
            for position, message in enumerate(batch):
                t0 = time.monotonic()
                trace = runtime.tracer.begin(message.msg_id)
                traces.append((position, trace, t0, time.monotonic()))
            runtime._dispatch(worker, batch, True, None, traces)
            runtime.kill_worker(0)
            runtime.flush()
            assert runtime.stats.restarts == 1
            dead = [t for t in runtime.tracer.finished
                    if t.tags.get("dead")]
            assert dead, "no trace recorded the crash"
            for trace in dead:
                assert trace.outcome == "lost"
                names = [h.name for h in hops(trace)]
                assert names == ["route", "coordinator_buffer", "lost"]
                lost = hops(trace)[-1]
                assert lost.tags["dead"] is True
                total = sum(h.duration for h in hops(trace))
                assert total == pytest.approx(trace.duration, rel=0.05)

    def test_no_duplicate_span_ids_across_restart(self, tmp_path):
        with ShardedRuntime(tmp_path / "fleet", 2, trace_sample=1.0,
                            trace_seed=7) as runtime:
            runtime.ingest_batch(stream(60), count_only=True)
            runtime.kill_worker(0)
            runtime.kill_worker(1)
            # The crash surfaces on the next touch of each shard; the
            # replayed ingest then lands on the restarted workers.
            replayed = stream(60, start=60)
            for attempt in range(6):
                try:
                    runtime.ingest_batch(replayed, count_only=True)
                    break
                except WorkerCrash:
                    continue
            else:
                pytest.fail("workers never came back after restart")
            span_ids = []
            for trace in runtime.tracer.finished:
                for hop in hops(trace):
                    if hop.name == "service" and "span_id" in hop.tags:
                        span_ids.append(str(hop.tags["span_id"]))
            assert len(span_ids) == len(set(span_ids))
            # Both boots are represented: pre-crash spans under boot 1,
            # post-restart spans under a bumped boot counter.
            boots = {tuple(span_id.split(".")[:2])
                     for span_id in span_ids}
            shards_with_two_boots = {
                shard for shard, _ in boots
                if len([b for s, b in boots if s == shard]) > 1}
            assert shards_with_two_boots, boots

    def test_wal_replay_emits_no_traces(self, tmp_path):
        root = tmp_path / "fleet"
        with ShardedRuntime(root, 2, trace_sample=1.0,
                            trace_seed=7) as runtime:
            runtime.ingest_batch(stream(40), count_only=True)
            first = len(runtime.tracer.finished)
            assert first == 40
        # Reopening replays every shard's WAL through the engine; the
        # worker tracer samples at 0.0 with no forced contexts, so the
        # replay contributes nothing to the trace stream.
        with ShardedRuntime(root, 2, trace_sample=1.0,
                            trace_seed=7) as reopened:
            assert len(reopened.tracer.finished) == 0
            reopened.ingest_batch(stream(10, start=40), count_only=True)
            assert len(reopened.tracer.finished) == 10


class TestTraceSink:
    """Finished fleet traces export as JSONL for `repro trace`."""

    def test_sink_round_trips_through_read_jsonl(self, tmp_path):
        from repro.obs import Tracer

        sink = tmp_path / "fleet_trace.jsonl"
        with ShardedRuntime(tmp_path / "fleet", 2, trace_sample=1.0,
                            trace_seed=7, trace_sink=sink) as runtime:
            runtime.ingest_batch(stream(30), count_only=True)
        documents = list(Tracer.read_jsonl(sink))
        assert len(documents) == 30
        for document in documents:
            kinds = [s["tags"].get("kind") for s in document["spans"]]
            assert kinds.count("hop") == len(HOP_CHAIN)
