"""Cross-shard edge repair: journals, reconciliation, crash matrix.

The load-bearing suite is :class:`TestCrashMatrix`: it SIGKILLs a
worker at every stage of a reconciliation round (``drained`` /
``scored`` / ``applied``) and proves the interrupted fleet converges to
the byte-identical edge set of an uninterrupted twin — no acknowledged
edge lost, no duplicate or phantom edges created.  The guarantees under
test: boundary entries are fsynced before the ingest ACK, repairs are
journaled (fsynced) before they touch the ledger, ``apply_repair`` is
idempotent, and the durable cursor only advances after a fully
successful shard round.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.message import parse_message
from repro.core.metrics import compare_edge_sets
from repro.core.sharding import CooccurrenceRouter
from repro.runtime import (BoundaryEntry, BoundaryLog, RepairEntry,
                           RepairJournal, ShardedRuntime, merge_worker_dumps,
                           scan_fleet_repair)
from repro.stream.generator import StreamConfig, StreamGenerator

BASE_DATE = 1_249_084_800.0
WORKERS = 3


def _message(msg_id=1, user="alice", offset=0.0,
             text="#quake tremor felt downtown"):
    return parse_message(msg_id, user, BASE_DATE + offset, text)


@pytest.fixture(scope="module")
def messages():
    """A realistic cascade-heavy stream (retweets, shared hashtags)."""
    generator = StreamGenerator(StreamConfig(seed=11))
    return list(itertools.islice(iter(generator), 600))


@pytest.fixture(scope="module")
def reference(tmp_path_factory, messages):
    """Edge set of an uninterrupted fleet after full reconciliation."""
    root = tmp_path_factory.mktemp("reference")
    with ShardedRuntime(root, WORKERS, router="cooccurrence") as runtime:
        runtime.ingest_stream(messages, batch_size=128)
        runtime.repair_until_clean()
        return runtime.edge_pairs()


class TestEntryRoundTrip:
    def test_boundary_entry_survives_tabs_and_newlines(self):
        entry = BoundaryEntry(seq=7, msg_id=42, user="ali\tce",
                              date=BASE_DATE + 0.5,
                              text="line one\nline\ttwo \\ three",
                              peers=(0, 2), dst=9, score=1.25)
        assert BoundaryEntry.parse(entry.payload()) == entry

    def test_boundary_entry_no_parent(self):
        entry = BoundaryEntry(seq=1, msg_id=5, user="bob", date=BASE_DATE,
                              text="orphan", peers=(1,), dst=None,
                              score=0.0)
        parsed = BoundaryEntry.parse(entry.payload())
        assert parsed.dst is None
        assert parsed == entry

    def test_repair_entry_round_trip(self):
        entry = RepairEntry(seq=3, src=10, old_dst=None, new_dst=4,
                            score=2.5)
        assert RepairEntry.parse(entry.payload()) == entry
        moved = RepairEntry(seq=4, src=10, old_dst=4, new_dst=6, score=3.0)
        assert RepairEntry.parse(moved.payload()) == moved


class TestBoundaryLog:
    def _append(self, log, n, start=0):
        entries = []
        for i in range(start, start + n):
            entries.append(log.append(_message(msg_id=i, offset=float(i)),
                                      peers=(1, 2), dst=None, score=0.0))
        log.sync()
        return entries

    def test_append_sync_reload(self, tmp_path):
        log = BoundaryLog(tmp_path)
        self._append(log, 3)
        log.close()
        reopened = BoundaryLog(tmp_path)
        assert reopened.pending_count == 3
        assert [e.msg_id for e in reopened.pending()] == [0, 1, 2]
        reopened.close()

    def test_advance_is_durable_and_prunes(self, tmp_path):
        log = BoundaryLog(tmp_path)
        entries = self._append(log, 3)
        log.advance(entries[1].seq)
        assert [e.msg_id for e in log.pending()] == [2]
        log.close()
        reopened = BoundaryLog(tmp_path)
        assert [e.msg_id for e in reopened.pending()] == [2]
        reopened.close()

    def test_compact_keeps_pending_and_seqs(self, tmp_path):
        log = BoundaryLog(tmp_path)
        entries = self._append(log, 4)
        log.advance(entries[2].seq)
        log.compact()
        log.close()
        reopened = BoundaryLog(tmp_path)
        pending = reopened.pending()
        assert [e.seq for e in pending] == [entries[3].seq]
        # New appends keep monotonically increasing sequence numbers.
        fresh = reopened.append(_message(msg_id=99), peers=(0,),
                                dst=None, score=0.0)
        assert fresh.seq > entries[3].seq
        reopened.close()

    def test_torn_tail_is_dropped(self, tmp_path):
        log = BoundaryLog(tmp_path)
        self._append(log, 2)
        log.close()
        path = tmp_path / "boundary.log"
        with path.open("ab") as handle:
            handle.write(b"deadbeef\tgarbage without a frame\n")
        reopened = BoundaryLog(tmp_path)
        assert reopened.pending_count == 2
        reopened.close()


class TestRepairJournal:
    def _engine(self):
        engine = ProvenanceIndexer(IndexerConfig(), track_edges=True)
        # Seed the ledger directly through the idempotent repair path.
        assert engine.repair_edge(5, None, 3)
        return engine

    def test_record_reload_replay(self, tmp_path):
        journal = RepairJournal(tmp_path)
        journal.record(5, 3, 7, 2.0)
        journal.close()
        engine = self._engine()
        reopened = RepairJournal(tmp_path)
        assert reopened.replay(engine) == 1
        assert engine.has_edge(5, 7)
        assert not engine.has_edge(5, 3)
        reopened.close()

    def test_replay_is_idempotent(self, tmp_path):
        journal = RepairJournal(tmp_path)
        journal.record(5, 3, 7, 2.0)
        engine = self._engine()
        journal.replay(engine)
        # A second replay (double restart) changes nothing: the new
        # edge is already installed, so match-on-old fails cleanly.
        assert journal.replay(engine) == 0
        assert engine.edge_pairs() == {(5, 7)}
        journal.close()

    def test_crash_between_record_and_apply(self, tmp_path):
        # WAL discipline: the journal entry hits disk before the ledger
        # mutation.  Simulate the SIGKILL window between the two — the
        # engine still holds the old edge, the journal already holds the
        # repair — and verify replay completes the repair exactly once.
        journal = RepairJournal(tmp_path)
        journal.record(5, 3, 7, 2.0)
        journal.close()
        engine = self._engine()  # old edge (5, 3) as at ingest time
        replayer = RepairJournal(tmp_path)
        assert replayer.replay(engine) == 1
        assert engine.edge_pairs() == {(5, 7)}
        replayer.close()


class TestRouterHints:
    def test_same_component_sticks_without_boundary(self):
        router = CooccurrenceRouter(4)
        first = router.route_with_hint(
            _message(msg_id=1, user="ann", text="#storm landfall"))
        second = router.route_with_hint(
            _message(msg_id=2, user="joe", offset=5.0,
                     text="#storm surge rising"))
        assert second.shard == first.shard
        assert not second.boundary

    def test_component_merge_emits_peer_hint(self):
        router = CooccurrenceRouter(4)
        seen = {}
        # Grow disjoint single-tag components until two land on
        # different shards, then bridge them with one message.
        for i in range(64):
            decision = router.route_with_hint(
                _message(msg_id=i, user=f"u{i}", offset=float(i),
                         text=f"#t{i} isolated story"))
            seen[f"t{i}"] = decision.shard
            tags = list(seen)
            split = [(a, b) for a in tags for b in tags
                     if seen[a] != seen[b]]
            if split:
                left, right = split[0]
                bridge = router.route_with_hint(
                    _message(msg_id=1000, user="bridge", offset=99.0,
                             text=f"#{left} meets #{right}"))
                assert bridge.boundary
                assert bridge.peers
                assert bridge.shard not in bridge.peers
                return
        pytest.fail("router never spread components over two shards")


class TestRepairPipeline:
    def test_reconciliation_drains_and_converges(self, tmp_path, messages):
        root = tmp_path / "fleet"
        with ShardedRuntime(root, WORKERS,
                            router="cooccurrence") as runtime:
            runtime.ingest_stream(messages, batch_size=128)
            assert runtime.stats.boundary_hints > 0
            pending_before = sum(
                payload["repair"]["boundary_pending"]
                for payload in runtime.shard_stats().values())
            assert pending_before == runtime.stats.boundary_hints
            report = runtime.repair_until_clean()
            assert report["advanced"] == pending_before
            edges = runtime.edge_pairs()
            registry = merge_worker_dumps(runtime.telemetry_dumps())
            assert registry.value("repro_fleet_edge_coverage") == 1.0
        scans = scan_fleet_repair(root)
        assert scans and all(s.healthy for s in scans.values())
        # Repair may move an edge to a better parent but never
        # duplicates one: each non-root message has at most one parent.
        srcs = [src for src, _ in edges]
        assert len(srcs) == len(set(srcs))

    def test_hash_router_emits_no_hints(self, tmp_path, messages):
        with ShardedRuntime(tmp_path / "fleet", WORKERS,
                            router="hash") as runtime:
            runtime.ingest_stream(messages[:200], batch_size=128)
            assert runtime.stats.boundary_hints == 0
            report = runtime.repair_pass()
            assert report == {"pending": 0, "probed": 0, "repaired": 0,
                              "advanced": 0, "backoffs": 0}


class TestRepairCli:
    def test_rejects_non_fleet_root(self, tmp_path, capsys):
        from repro import cli

        assert cli.main(["repair", str(tmp_path)]) == 2
        assert "runtime.json" in capsys.readouterr().err

    def test_drains_backlog_and_reports(self, tmp_path, messages, capsys):
        from repro import cli

        root = tmp_path / "fleet"
        with ShardedRuntime(root, 2, router="cooccurrence") as runtime:
            runtime.ingest_stream(messages[:300], batch_size=64)
            hints = runtime.stats.boundary_hints
        assert hints > 0
        assert cli.main(["repair", str(root)]) == 0
        out = capsys.readouterr().out
        assert "orphan(s) before" in out
        assert "0 orphan(s) left" in out
        scans = scan_fleet_repair(root)
        assert all(scan.pending == 0 for scan in scans.values())

    def test_search_reopens_with_marker_router(self, tmp_path, messages,
                                               capsys):
        # `repro search fleet/` must honour the fleet's router marker —
        # a cooccurrence fleet used to refuse with a router mismatch.
        from repro import cli

        root = tmp_path / "fleet"
        with ShardedRuntime(root, 2, router="cooccurrence") as runtime:
            runtime.ingest_stream(messages[:200], batch_size=64)
        code = cli.main(["search", str(root), "breaking report",
                         "--workers", "2"])
        captured = capsys.readouterr()
        assert code in (0, 1)  # hits or no hits — never a router error
        assert "router" not in captured.err


class TestCrashMatrix:
    """SIGKILL at every reconciliation stage: the fleet still converges.

    ``drained``: the backlog was read but nothing applied — the cursor
    never moved, the whole round replays.  ``scored``: repairs are
    decided but not installed — same.  ``applied``: repairs are
    journaled and installed but the cursor did not advance — the round
    replays and every ``apply_repair`` is a detected duplicate.
    """

    @pytest.mark.parametrize("stage", [
        pytest.param("drained", marks=pytest.mark.chaos),
        pytest.param("scored", marks=pytest.mark.chaos),
        "applied",
    ])
    def test_sigkill_mid_reconciliation(self, stage, tmp_path, messages,
                                        reference):
        root = tmp_path / "interrupted"
        killed = []
        with ShardedRuntime(root, WORKERS,
                            router="cooccurrence") as runtime:
            runtime.ingest_stream(messages, batch_size=128)
            acked = runtime.edge_pairs()

            def hook(fired_stage, shard):
                if fired_stage == stage and not killed:
                    killed.append(shard)
                    runtime.kill_worker(shard)

            runtime.repair_until_clean(fault_hook=hook)
            assert killed, "fault hook never fired — no boundary backlog"
            assert runtime.stats.restarts >= 1
            # Converge without further faults; idempotence means the
            # replayed round cannot double-install anything.
            runtime.repair_until_clean()
            survivors = runtime.edge_pairs()
        scans = scan_fleet_repair(root)

        assert survivors == reference
        srcs = [src for src, _ in survivors]
        assert len(srcs) == len(set(srcs))
        # Every message that had an acknowledged edge before the kill
        # still has exactly one (possibly repaired to a better parent).
        assert {src for src, _ in acked} <= set(srcs)
        assert compare_edge_sets(survivors, reference).coverage == 1.0
        assert all(scan.pending == 0 for scan in scans.values())
