"""The multiprocess runtime: parity, durability under SIGKILL, recovery.

The load-bearing test is :class:`TestCrashDurability` — it SIGKILLs a
worker mid-stream and proves (via ``compare_edge_sets`` against an
uninterrupted fleet) that no *acknowledged* edge is lost: the worker
fsyncs its WAL before every ACK, and the restarted process replays the
tail.
"""

from __future__ import annotations

import pytest

from repro.core.message import parse_message
from repro.core.metrics import compare_edge_sets
from repro.core.errors import ConfigurationError
from repro.core.sharding import ShardedIndexer
from repro.runtime import (RuntimeClient, ShardedRuntime, WorkerCrash,
                           fleet_table, merge_worker_dumps)

BASE_DATE = 1_249_084_800.0


def stream(count, start=0):
    """Deterministic mixed stream: originals and retweet chains."""
    out = []
    for i in range(start, start + count):
        user = f"u{i % 23}"
        if i % 3 == 1:
            text = f"RT @u{(i - 1) % 23}: #tag{i % 7} report {i - 1}"
        else:
            text = f"#tag{i % 7} report {i}"
        out.append(parse_message(i, user, BASE_DATE + i * 2.0, text))
    return out


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    """One shared 2-worker fleet, preloaded with 240 messages."""
    root = tmp_path_factory.mktemp("fleet")
    runtime = ShardedRuntime(root, 2)
    runtime.ingest_stream(stream(240), batch_size=40)
    yield runtime
    runtime.close()


class TestParity:
    """The fleet must agree with the in-process sharded indexer."""

    def test_edges_match_inprocess(self, fleet):
        local = ShardedIndexer(2, router="hash")
        local.ingest_batch(stream(240))
        assert fleet.edge_pairs() == local.edge_pairs()

    def test_stats_match_inprocess(self, fleet):
        local = ShardedIndexer(2, router="hash")
        local.ingest_batch(stream(240))
        assert fleet.stats_totals() == local.stats()

    def test_search_matches_inprocess(self, fleet):
        local = ShardedIndexer(2, router="hash")
        local.ingest_batch(stream(240))
        fleet_hits = [(shard, hit.bundle_id, hit.score) for shard, hit
                      in fleet.search_by_shard("#tag3 report", k=5)]
        local_hits = [(shard, hit.bundle_id, hit.score) for shard, hit
                      in local.search_by_shard("#tag3 report", k=5)]
        assert fleet_hits == local_hits

    def test_snapshot_sums_fleet(self, fleet):
        snap = fleet.snapshot()
        assert snap.message_count == 240
        assert snap.pool_bytes > 0

    def test_budgeted_search_covers_fleet(self, fleet):
        outcome = fleet.search_within("#tag3 report", k=5,
                                      budget_seconds=5.0)
        assert outcome.hits
        assert not outcome.partial
        assert outcome.coverage == 1.0

    def test_exhausted_budget_is_partial(self, fleet):
        outcome = fleet.search_within("#tag3 report", k=5,
                                      budget_seconds=0.0)
        assert outcome.partial
        assert outcome.hits == []
        assert fleet.stats.shards_skipped_by_budget >= 2


class TestCrashDurability:
    """SIGKILL a worker mid-stream: zero acknowledged edges lost."""

    def test_kill_and_restart_loses_no_acknowledged_edges(self, tmp_path):
        first, second = stream(160), stream(160, start=160)

        with ShardedRuntime(tmp_path / "interrupted", 2) as interrupted:
            interrupted.ingest_batch(first, count_only=True)
            acked_edges = interrupted.edge_pairs()
            interrupted.kill_worker(0)
            # The crash surfaces on the next touch of shard 0, the
            # batch is retried against the restarted worker; duplicate
            # re-sends of already-indexed messages are dead-lettered by
            # the worker, never double-indexed.
            for attempt in range(4):
                try:
                    interrupted.ingest_batch(second, count_only=True)
                    break
                except WorkerCrash:
                    continue
            else:
                pytest.fail("worker never came back after restart")
            assert interrupted.stats.restarts >= 1
            survivors = interrupted.edge_pairs()

        with ShardedRuntime(tmp_path / "uninterrupted", 2) as clean:
            clean.ingest_batch(first + second, count_only=True)
            reference = clean.edge_pairs()

        # Every edge acknowledged before the kill survived the replay...
        assert compare_edge_sets(survivors, acked_edges).coverage == 1.0
        # ...and the interrupted fleet converged on the clean run.
        comparison = compare_edge_sets(survivors, reference)
        assert comparison.coverage == 1.0
        assert survivors == reference

    def test_restart_accounts_lost_inflight(self, tmp_path):
        with ShardedRuntime(tmp_path / "fleet", 2) as runtime:
            runtime.ingest_batch(stream(40), count_only=True)
            runtime.kill_worker(1)
            with pytest.raises(WorkerCrash):
                # Routed at shard 1 ("t:tag0" hashes there with 2
                # shards); the send fails and the batch is counted lost.
                while True:
                    runtime.ingest_batch(stream(40), count_only=True)
            assert runtime.stats.restarts == 1


class TestRecovery:
    """Closing and reopening a fleet root restores every shard."""

    def test_reopen_preserves_state(self, tmp_path):
        root = tmp_path / "fleet"
        with ShardedRuntime(root, 2) as runtime:
            runtime.ingest_stream(stream(120), batch_size=30)
            edges = runtime.edge_pairs()
            totals = runtime.stats_totals()
        with ShardedRuntime(root, 2) as reopened:
            assert reopened.edge_pairs() == edges
            assert reopened.stats_totals() == totals

    def test_reopen_with_wrong_worker_count_refuses(self, tmp_path):
        root = tmp_path / "fleet"
        with ShardedRuntime(root, 2) as runtime:
            runtime.ingest_batch(stream(10), count_only=True)
        with pytest.raises(ConfigurationError, match="workers"):
            ShardedRuntime(root, 3)

    def test_reopen_with_wrong_router_refuses(self, tmp_path):
        root = tmp_path / "fleet"
        with ShardedRuntime(root, 2) as runtime:
            runtime.ingest_batch(stream(10), count_only=True)
        with pytest.raises(ConfigurationError, match="router"):
            ShardedRuntime(root, 2, router="cooccurrence")


class TestFleetTelemetry:
    def test_merged_registry_has_shard_labels_and_totals(self, fleet):
        registry = merge_worker_dumps(fleet.telemetry_dumps())
        total = registry.value("repro_messages_ingested_total")
        assert total >= 240
        per_shard = [registry.value("repro_messages_ingested_total",
                                    {"shard": str(shard)})
                     for shard in range(2)]
        assert sum(per_shard) == total
        assert all(count > 0 for count in per_shard)

    def test_mode_gauges_not_aggregated(self, fleet):
        registry = merge_worker_dumps(fleet.telemetry_dumps())
        # Shard ids exist per shard but summing them would be nonsense,
        # so no unlabeled aggregate series is created.
        assert registry.find("repro_shard_id", {"shard": "1"}) is not None
        assert registry.find("repro_shard_id") is None

    def test_merged_histograms_keep_buckets(self, fleet):
        from repro.obs.registry import Histogram

        registry = merge_worker_dumps(fleet.telemetry_dumps())
        ingest = registry.find("repro_ingest_latency_seconds")
        assert isinstance(ingest, Histogram)
        assert ingest.count >= 240
        assert ingest.percentile(50) > 0

    def test_dashboard_renders_fleet_frame(self, fleet):
        from repro.obs.dashboard import Dashboard

        registry = merge_worker_dumps(fleet.telemetry_dumps())
        frame = Dashboard(registry).frame()
        assert "fleet — 2 shards" in frame

    def test_fleet_table_renders_all_shards(self, fleet):
        table = fleet_table(fleet.shard_stats())
        lines = table.splitlines()
        assert lines[0].split()[:2] == ["shard", "messages"]
        assert lines[-1].startswith("  all") or "all" in lines[-1]


class TestBackpressureGate:
    """Coordinator-side hysteresis over per-shard queue fractions."""

    def test_engages_on_any_hot_shard(self):
        from repro.reliability.overload import FleetBackpressure

        gate = FleetBackpressure(high_watermark=0.8, low_watermark=0.5)
        assert not gate.note(0, 0.2)
        assert gate.note(1, 0.9)
        assert gate.engaged
        assert gate.worst == (1, 0.9)
        # Stays engaged until *every* shard is under the low watermark.
        assert gate.note(1, 0.6)
        assert not gate.note(1, 0.4)
        assert gate.engagements == 1

    def test_rejects_bad_watermarks(self):
        from repro.core.errors import ConfigurationError
        from repro.reliability.overload import FleetBackpressure

        with pytest.raises(ConfigurationError):
            FleetBackpressure(high_watermark=0.3, low_watermark=0.6)

    def test_runtime_builds_gate_from_overload_config(self, tmp_path):
        from repro.reliability.overload import OverloadConfig

        config = OverloadConfig(max_queue=64)
        with ShardedRuntime(tmp_path / "fleet", 2,
                            overload=config) as runtime:
            assert runtime.gate is not None
            assert runtime.ingest_batch(stream(20),
                                        count_only=True) == 20


class TestGuardedFleet:
    """Per-worker ingest guards behind the coordinator."""

    def test_guarded_fleet_folds_and_accounts(self, tmp_path):
        # Four templates repeated by many users: every shard sees
        # verbatim undeclared copies, so its guard must fold.  Per-user
        # volume stays under spam_min_messages so nobody is quarantined.
        messages = [
            parse_message(
                i, f"u{i % 37}", BASE_DATE + i * 2.0,
                f"breaking report {i % 4} about the flood downtown "
                f"tonight stay safe")
            for i in range(160)
        ]
        root = tmp_path / "fleet"
        with ShardedRuntime(root, 2, guard=True) as runtime:
            runtime.ingest_stream(messages, batch_size=32)
            folded = 0
            for shard, payload in runtime.shard_stats().items():
                g = payload["guard"]
                # Conservation: every screened arrival has exactly one
                # verdict (or is still buffered).
                assert g["screened"] == (
                    g["passed"] + g["folded"] + g["quarantined"]
                    + g["late"] + g["buffer_depth"]), shard
                assert g["quarantined"] == 0, shard
                folded += g["folded"]
            assert folded > 0
            # Folds still count as ingested — nothing acknowledged is
            # lost to screening.
            assert runtime.stats_totals()["messages_ingested"] == 160
        shard_roots = sorted(root.glob("shard-*"))
        assert len(shard_roots) == 2
        for shard_root in shard_roots:
            # Custody + fold logs live in the shard root, inside the
            # pre-ACK durability barrier.
            assert (shard_root / "quarantine.log").exists()
            assert (shard_root / "folds.log").exists()

    def test_unguarded_fleet_reports_no_guard_block(self, fleet):
        for payload in fleet.shard_stats().values():
            assert "guard" not in payload


class TestRuntimeClient:
    def test_client_is_thin_facade(self, tmp_path):
        with RuntimeClient(tmp_path / "fleet", workers=2) as client:
            count = client.ingest_batch(stream(30), count_only=True)
            assert count == 30
            assert client.stats()["messages_ingested"] == 30
            assert client.stats()["shard_count"] == 2
            assert client.search("#tag1 report", k=3)
            assert client.snapshot().message_count == 30
            assert client.edge_pairs()
