"""Shared fixtures for the figure-regeneration benchmarks.

Figures 7, 8, 11, 12 and 13 are different views of one lockstep replay of
the three Section VI-A method variants, so that replay runs once per
benchmark session (the ``comparison`` fixture) and each figure's benchmark
extracts its series from it.

Workload scale is selected with the ``REPRO_BENCH_SCALE`` environment
variable (``tiny`` / ``small`` / ``medium``; default ``small`` ≈ 35k
messages, which reproduces every figure's shape in a few minutes).  Each
benchmark writes its regenerated figure to ``benchmarks/results/`` and
echoes it to the terminal.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.harness import ComparisonSeries, run_comparison
from repro.bench.workloads import MEDIUM, SMALL, TINY, Workload, three_variants
from repro.core.message import Message
from repro.stream.generator import StreamGenerator

RESULTS_DIR = Path(__file__).parent / "results"

_SCALES = {"tiny": TINY, "small": SMALL, "medium": MEDIUM}


@pytest.fixture(scope="session")
def workload() -> Workload:
    """The selected workload scale."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if scale not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}")
    return _SCALES[scale]


@pytest.fixture(scope="session")
def stream(workload: Workload) -> list[Message]:
    """The materialised synthetic stream for the selected workload."""
    return StreamGenerator(workload.stream).generate_list()


@pytest.fixture(scope="session")
def comparison(workload: Workload,
               stream: list[Message]) -> ComparisonSeries:
    """One lockstep replay of full / partial / bundle-limit variants."""
    return run_comparison(stream, three_variants(workload),
                          checkpoint_every=workload.checkpoint_every)


@pytest.fixture
def emit(capfd, workload: Workload):
    """Write a regenerated figure to results/ and echo it to the terminal."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        payload = f"[scale={workload.name}] {name}\n{text.rstrip()}\n"
        (RESULTS_DIR / f"{name}.txt").write_text(payload, encoding="utf-8")
        with capfd.disabled():
            print(f"\n=== {payload}", flush=True)

    return _emit
