"""Telemetry overhead — what observability costs on the ingest hot path.

Five variants ingest the same stream:

* telemetry off (``Observability.disabled()``: no-op metrics, no tracer),
* metrics only (the default: real registry, tracing off),
* metrics + tracing sampled at 1% (the recommended production setting),
* metrics + tracing at 100% (every message builds a span tree),
* metrics + the continuous profiler (a 97 Hz background stack sampler
  attributing samples to engine stages via the ``StageCell`` mailbox —
  the ``serve --profile-dir`` / ``repro profile`` configuration).

Every measurement of an instrumented variant is paired with its own
immediately-preceding uninstrumented baseline, and the reported
overhead is the best (minimum) of the per-pair ratios — scheduler and
clock-speed noise only ever inflates a ratio, so the minimum is the
cleanest estimate of the true cost.  The
tentpole's budget: metrics must stay under 5% even with 1% tracing —
telemetry that costs real throughput would never be left on, and every
other signal in the registry is a callback view that costs nothing
until read.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.bench.reporting import (ascii_table, format_float, human_count,
                                   write_bench_json)
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.obs import Observability, StackSampler, StageCell, Tracer

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def test_obs_overhead(benchmark, stream, emit, workload):
    sample = stream[: min(4_000, len(stream))]

    def run(obs: Observability,
            sampler: "StackSampler | None" = None) -> float:
        engine = ProvenanceIndexer(
            IndexerConfig.partial_index(pool_size=200), obs=obs)
        if sampler is not None:
            sampler.start()
        try:
            started = time.perf_counter()
            for message in sample:
                engine.ingest(message)
            elapsed = time.perf_counter() - started
        finally:
            if sampler is not None:
                sampler.stop()
        assert engine.stats.messages_ingested == len(sample)
        return elapsed

    def make_profiled() -> "tuple[Observability, StackSampler]":
        cell = StageCell()
        return (Observability(profile=cell),
                StackSampler(hz=97, cell=cell))

    instrumented = {
        "metrics": lambda: (Observability(), None),
        "trace 1%": lambda: (Observability(
            tracer=Tracer(sample_rate=0.01, seed=0, keep=64)), None),
        "trace 100%": lambda: (Observability(
            tracer=Tracer(sample_rate=1.0, seed=0, keep=64)), None),
        "profile": make_profiled,
    }
    run(Observability.disabled())  # warm-up, discarded
    rounds = 5
    ratios: "dict[str, list[float]]" = {name: [] for name in instrumented}
    base_times: "list[float]" = []
    metrics_time = float("inf")
    for round_index in range(rounds):
        for name, make_obs in instrumented.items():
            base = run(Observability.disabled())
            base_times.append(base)
            if name == "metrics" and round_index == rounds - 1:
                # The last metrics run goes through pytest-benchmark so
                # the session records it; the ratio uses it all the same.
                elapsed = benchmark.pedantic(
                    lambda: run(Observability()), rounds=1, iterations=1)
            else:
                elapsed = run(*make_obs())
            if name == "metrics":
                metrics_time = min(metrics_time, elapsed)
            ratios[name].append(elapsed / base)

    # A best ratio below 1.0 means the cost is indistinguishable from
    # the noise floor; report that as zero rather than a negative cost.
    overhead = {name: max(min(values) - 1.0, 0.0)
                for name, values in ratios.items()}
    rate = len(sample) / metrics_time

    emit("obs_overhead", ascii_table(
        ["variant", "best paired overhead vs telemetry off"],
        [["off", f"— (baseline, best {min(base_times):.2f}s)"]]
        + [[name, format_float(overhead[name] * 100, 1) + "%"]
           for name in instrumented],
        title=f"telemetry overhead ({human_count(len(sample))} messages "
              f"x {rounds} paired rounds, metrics-on rate "
              f"{rate:,.0f} msg/s)"))

    write_bench_json(
        BENCH_JSON, bench="obs_overhead",
        config={"messages": len(sample), "rounds": rounds,
                "scale": workload.name, "pool_size": 200},
        metrics={f"overhead_{name.replace(' ', '_').replace('%', 'pct')}":
                 overhead[name] for name in instrumented}
        | {"metrics_rate_msg_per_s": rate})

    # The acceptance budget: metrics alone, metrics with 1% trace
    # sampling, and the continuous profiler must each stay under 5%
    # of the uninstrumented path.
    assert overhead["metrics"] < 0.05, overhead
    assert overhead["trace 1%"] < 0.05, overhead
    assert overhead["profile"] < 0.05, overhead
    # Full tracing builds four spans per message; it may cost real time
    # but must stay in the same order of magnitude.
    assert overhead["trace 100%"] < 0.5, overhead
