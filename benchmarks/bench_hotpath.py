"""Ingest hot path — slab postings + batched Eq. 1 scoring, measured.

PR 10 rearchitected the per-message inner loop of Algorithm 1: the
summary index's per-term ``dict[int, int]`` postings moved into
contiguous array slabs (interned terms, bisect-maintained extents,
arena reuse across ``remove_bundle``), and candidate scoring moved
from one ``bundle_match_score`` call per candidate to a single
vectorised :func:`repro.core.scoring.bundle_match_scores` sweep over
the gathered per-kind hit matrix.  Both changes are observationally
invisible (``tests/test_api_conformance.py`` asserts byte-identical
audit trails dict-vs-slab); this bench pins what they buy.

Two streams, because the layouts trade differently:

* **sparse** — the anatomy workload (15 events/day, long tail of
  organic chatter): gathers are small, the adaptive cutoff
  (``SMALL_GATHER_CUTOFF``) keeps most probes on the pure-Python
  side, and the two backends are near parity.
* **dense** — the heavy-hitter stream bench_parallel measures (240
  events/day): probes routinely touch thousands of postings, the
  slab's contiguous extents feed the numpy gather, and slab wins.

The headline metric is ``speedup_vs_single_baseline``: the sparse
slab rate over the **pinned** single-process baseline from
``BENCH_parallel.json`` (``single_msg_per_s`` — the full resilient
stack, WAL and snapshots included, on the dense 100k stream).  That
is deliberately an end-to-end comparison, not an ablation: it answers
"how much faster is a bare engine on the hot path than the durable
stack we shard", and the acceptance bar is **>= 10x**.  The honest
apples-to-apples numbers are the ``slab_vs_dict_*`` ratios in the
same run; the dense one carries the layout's perf claim and gates at
**>= 0.9** (parity-or-better; measured ~1.07).

Run standalone (``python benchmarks/bench_hotpath.py``); ``--quick``
is the CI smoke mode (short streams, no assertions — fixed costs
dominate toy runs) and still writes ``BENCH_hotpath.json``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.reporting import (ascii_table, format_float, human_bytes,
                                   human_count, write_bench_json)
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.stream.generator import StreamConfig, StreamGenerator

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

#: ``single_msg_per_s`` pinned in BENCH_parallel.json: one resilient
#: stack (WAL group-commit, snapshots, spill store) ingesting the
#: dense seed-7 100k stream.  Quoted as a constant so this bench's
#: gate cannot drift when bench_parallel re-pins on other hardware.
SINGLE_BASELINE_MSG_PER_S = 535.9385880423306

BACKENDS = ("slab", "dict")


def make_streams(sparse_messages: int, dense_messages: int):
    """(name, messages, pool_size) per workload, generator-seeded."""
    sparse = StreamGenerator(StreamConfig(
        seed=11, days=sparse_messages / 1750.0, messages_per_day=1750,
        user_count=400, events_per_day=15.0,
        event_volume_max=400)).generate_list()[:sparse_messages]
    dense = StreamGenerator(StreamConfig(
        seed=7, days=dense_messages / 100_000.0,
        messages_per_day=100_000, user_count=800,
        events_per_day=240.0)).generate_list()[:dense_messages]
    return (("sparse", sparse, 150), ("dense", dense, 200))


def run_cell(backend: str, stream, pool_size: int,
             repeats: int) -> "dict[str, float]":
    """One matrix cell: bare engine, edges off, count-only ingest.

    Best-of-``repeats`` wall time — each repeat rebuilds the engine
    from scratch, so the max rate is the least-disturbed run, not a
    warm cache artefact.
    """
    best_rate = 0.0
    for _ in range(repeats):
        engine = ProvenanceIndexer(
            IndexerConfig.partial_index(pool_size=pool_size,
                                        postings_backend=backend),
            track_edges=False)
        started = time.perf_counter()
        engine.ingest_batch(stream, count_only=True)
        elapsed = time.perf_counter() - started
        best_rate = max(best_rate, len(stream) / elapsed)
    return {
        "msg_per_s": best_rate,
        "index_bytes": float(engine.summary_index
                             .approximate_memory_bytes()),
        "entries": float(engine.summary_index.entry_count()),
    }


def run_hotpath_bench(sparse_messages: int, dense_messages: int, *,
                      quick: bool) -> dict:
    repeats = 1 if quick else 3
    metrics: "dict[str, float]" = {}
    rows = []
    for name, stream, pool_size in make_streams(sparse_messages,
                                                dense_messages):
        print(f"{name}: {human_count(len(stream))} messages, "
              f"pool {pool_size}", flush=True)
        cells = {}
        for backend in BACKENDS:
            cell = run_cell(backend, stream, pool_size, repeats)
            cells[backend] = cell
            metrics[f"{name}_{backend}_msg_per_s"] = cell["msg_per_s"]
            metrics[f"{name}_{backend}_index_bytes"] = cell["index_bytes"]
            print(f"  {backend}: {cell['msg_per_s']:,.0f} msg/s, "
                  f"index {human_bytes(cell['index_bytes'])} "
                  f"({human_count(cell['entries'])} postings)",
                  flush=True)
        ratio = cells["slab"]["msg_per_s"] / cells["dict"]["msg_per_s"]
        memory_ratio = (cells["slab"]["index_bytes"]
                        / cells["dict"]["index_bytes"])
        metrics[f"slab_vs_dict_{name}"] = ratio
        metrics[f"slab_vs_dict_{name}_memory"] = memory_ratio
        rows.append([name, human_count(len(stream)),
                     f"{cells['slab']['msg_per_s']:,.0f}",
                     f"{cells['dict']['msg_per_s']:,.0f}",
                     format_float(ratio, 2) + "x",
                     human_bytes(cells["slab"]["index_bytes"]),
                     human_bytes(cells["dict"]["index_bytes"])])

    speedup = (metrics["sparse_slab_msg_per_s"]
               / SINGLE_BASELINE_MSG_PER_S)
    metrics["single_baseline_msg_per_s"] = SINGLE_BASELINE_MSG_PER_S
    metrics["speedup_vs_single_baseline"] = speedup

    print()
    print(ascii_table(
        ["stream", "msgs", "slab msg/s", "dict msg/s", "slab/dict",
         "slab index", "dict index"],
        rows,
        title="hot-path matrix (bare engine, edges off, count-only)"))
    print(f"\nsparse slab vs pinned resilient single baseline "
          f"({SINGLE_BASELINE_MSG_PER_S:,.0f} msg/s): "
          f"{speedup:.1f}x")

    write_bench_json(
        BENCH_JSON, bench="hotpath",
        config={"sparse_messages": sparse_messages,
                "dense_messages": dense_messages,
                "backends": list(BACKENDS), "repeats": repeats,
                "quick": quick,
                "baseline": "BENCH_parallel.json single_msg_per_s "
                            "(resilient stack, pinned)"},
        metrics=metrics)
    print(f"wrote {BENCH_JSON}")
    return metrics


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="slab postings + batched scoring hot-path benchmark")
    parser.add_argument("--sparse-messages", type=int, default=10_500)
    parser.add_argument("--dense-messages", type=int, default=20_000)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: short streams, no "
                             "assertions")
    args = parser.parse_args(argv)
    sparse = 2_000 if args.quick else args.sparse_messages
    dense = 3_000 if args.quick else args.dense_messages

    metrics = run_hotpath_bench(sparse, dense, quick=args.quick)

    if not args.quick:
        failures = []
        speedup = metrics["speedup_vs_single_baseline"]
        if speedup < 10.0:
            failures.append(
                f"sparse slab speedup vs single baseline "
                f"{speedup:.1f}x < 10x")
        dense_ratio = metrics["slab_vs_dict_dense"]
        if dense_ratio < 0.9:
            failures.append(f"dense slab/dict ratio "
                            f"{dense_ratio:.2f} < 0.9")
        for name in ("sparse", "dense"):
            memory_ratio = metrics[f"slab_vs_dict_{name}_memory"]
            if memory_ratio > 1.0:
                failures.append(f"{name} slab index uses "
                                f"{memory_ratio:.2f}x dict memory "
                                "(> 1.0)")
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"PASS: speedup {speedup:.1f}x >= 10x, dense slab/dict "
              f"{metrics['slab_vs_dict_dense']:.2f} >= 0.9, slab "
              "index never larger than dict")
    return 0


if __name__ == "__main__":
    sys.exit(main())
