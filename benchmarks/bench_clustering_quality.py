"""Extension — bundling quality as a clustering of events.

Complements Fig. 8's edge-set evaluation with clustering metrics enabled
by the synthetic stream's ground-truth event labels: B-cubed precision /
recall and event fragmentation for each method variant, measured over the
final in-memory pools.

Expected shape: all variants reach high B-cubed precision (bundles rarely
mix events); the bundle-limit variant trades recall for its size cap
(events split across closed bundles → higher fragmentation), which is the
cluster-level view of Fig. 8's accuracy gap.
"""

from __future__ import annotations

from repro.bench.reporting import ascii_table, format_float
from repro.core.clustering_metrics import (bcubed_scores,
                                           event_fragmentation,
                                           pairwise_scores)


def score_pools(comparison):
    rows = {}
    for method, engine in comparison.engines.items():
        bundles = engine.bundles()
        bcubed = bcubed_scores(bundles)
        pairwise = pairwise_scores(bundles)
        rows[method] = (bcubed, pairwise,
                        event_fragmentation(bundles))
    return rows


def test_clustering_quality(benchmark, comparison, emit):
    rows = benchmark(score_pools, comparison)

    table = ascii_table(
        ["method", "b3 precision", "b3 recall", "pair F1",
         "fragmentation"],
        [[method, format_float(bcubed.precision),
          format_float(bcubed.recall), format_float(pairwise.f1),
          format_float(fragmentation, 2)]
         for method, (bcubed, pairwise, fragmentation) in rows.items()],
        title="Clustering quality of final pools (event labels)")
    emit("clustering_quality", table)

    partial_b3 = rows["partial"][0]
    limit_b3 = rows["bundle_limit"][0]
    # Bundles rarely mix events under any variant...
    for method, (bcubed, _, _) in rows.items():
        assert bcubed.precision > 0.6, method
    # ...and the size cap splits events, costing cluster recall relative
    # to the same pool bound without the cap.  (Fragmentation values are
    # point-in-time pool views and not comparable across retention
    # policies, so only the recall ordering is asserted.)
    assert limit_b3.recall < partial_b3.recall
