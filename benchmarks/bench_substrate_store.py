"""Substrate benchmark — the on-disk bundle store (Fig. 4 back-end).

Not a paper figure: measures append and random-load throughput of the
segmented store, the operations the refinement path exercises when it
backs median bundles up to disk.
"""

from __future__ import annotations

import random

from repro.core.bundle import Bundle
from repro.core.message import parse_message
from repro.storage.bundle_store import BundleStore

BASE_DATE = 1_249_084_800.0


def build_bundles(count: int) -> list[Bundle]:
    bundles = []
    for index in range(count):
        bundle = Bundle(index)
        for offset in range(5):
            bundle.insert(parse_message(
                index * 10 + offset, f"user{offset}",
                BASE_DATE + index * 60.0 + offset,
                f"#topic{index} message {offset} bit.ly/x{index % 7}"))
        bundles.append(bundle)
    return bundles


def test_substrate_store_append(benchmark, tmp_path):
    bundles = build_bundles(200)
    counter = iter(range(10_000))

    def append_all():
        store = BundleStore(tmp_path / f"store-{next(counter)}",
                            max_segment_bytes=256 * 1024)
        for bundle in bundles:
            store.append(bundle)
        return len(store)

    assert benchmark.pedantic(append_all, rounds=3, iterations=1) == 200


def test_substrate_store_random_load(benchmark, tmp_path):
    bundles = build_bundles(200)
    store = BundleStore(tmp_path / "store", max_segment_bytes=256 * 1024)
    for bundle in bundles:
        store.append(bundle)
    rng = random.Random(7)
    ids = [rng.randrange(200) for _ in range(50)]

    def load_random():
        return sum(len(store.load(bundle_id)) for bundle_id in ids)

    assert benchmark(load_random) == 50 * 5
