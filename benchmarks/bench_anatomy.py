"""Workload-anatomy overhead + determinism — what characterization costs.

Three questions, one pinned answer each in ``BENCH_anatomy.json``:

* **overhead** — the anatomy subsystem (SpaceSaving sketches, postings
  shape histograms, stride sampling) rides the ingest hot path; it must
  stay under the same 5% paired-ratio budget as every other telemetry
  tier.  Methodology matches ``bench_obs_overhead``: each instrumented
  measurement is paired with its own immediately-preceding baseline
  (metrics-only, no anatomy), and the reported overhead is the best
  (minimum) of the per-pair ratios — noise only ever inflates a ratio.
* **determinism** — two replays of the same seeded stream must produce
  byte-identical fingerprint JSONL.  The capacity projections feeding
  the slab-allocator design (ROADMAP item 1) are only trustworthy if
  they cannot wobble run to run; the CI anatomy-smoke job re-checks
  this across *processes* (hash-seed variation), this bench re-checks
  it in-process.
* **capacity** — the slab slice schedule and prune thresholds the
  measured workload projects, embedded machine-readable so the hot-path
  rewrite PR can consume the numbers without re-running the bench.

Run standalone (``python benchmarks/bench_anatomy.py``); ``--quick``
is the CI smoke mode (smaller stream, fewer rounds — the budget
assertions still apply because ratios are machine-independent).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.reporting import (ascii_table, format_float, human_count,
                                   write_bench_json)
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.obs import Observability, WorkloadAnatomy, capacity_report
from repro.stream.generator import StreamConfig, StreamGenerator

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_anatomy.json"

OVERHEAD_BUDGET = 0.05


def _stream(messages: int, seed: int = 13):
    config = StreamConfig(seed=seed, days=max(messages / 2000, 0.5),
                          messages_per_day=2000)
    return StreamGenerator(config).generate_list()[:messages]


def _run(sample, anatomy: bool, *, sample_every: int = 8):
    """Ingest the sample once; returns (elapsed, engine, anatomy)."""
    obs = Observability()
    characterizer = None
    if anatomy:
        characterizer = WorkloadAnatomy(obs.registry,
                                        sample_every=sample_every)
        obs.anatomy = characterizer
    engine = ProvenanceIndexer(
        IndexerConfig.partial_index(pool_size=200), obs=obs)
    started = time.perf_counter()
    for message in sample:
        engine.ingest(message)
    elapsed = time.perf_counter() - started
    assert engine.stats.messages_ingested == len(sample)
    return elapsed, engine, characterizer


def measure_overhead(sample, rounds: int) -> "tuple[float, float]":
    """Best paired overhead ratio and the anatomy-on ingest rate."""
    _run(sample, anatomy=False)  # warm-up, discarded
    ratios: "list[float]" = []
    best_on = float("inf")
    for _ in range(rounds):
        base, _, _ = _run(sample, anatomy=False)
        on, _, _ = _run(sample, anatomy=True)
        best_on = min(best_on, on)
        ratios.append(on / base)
    # A best ratio below 1.0 is indistinguishable from the noise floor.
    overhead = max(min(ratios) - 1.0, 0.0)
    return overhead, len(sample) / best_on


def check_determinism(sample) -> "tuple[bool, dict]":
    """Replay twice; fingerprints must serialize byte-identically."""
    lines = []
    record = {}
    for _ in range(2):
        _, engine, characterizer = _run(sample, anatomy=True)
        record = characterizer.fingerprint(engine)
        lines.append(json.dumps(record, sort_keys=True,
                                separators=(",", ":")))
    return lines[0] == lines[1], record


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="workload-anatomy overhead, determinism and "
                    "capacity projections")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smaller stream, fewer "
                             "rounds (budget asserts still apply)")
    parser.add_argument("--messages", type=int, default=None,
                        help="stream size (default 8000; 2500 quick)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="paired rounds (default 5; 3 quick)")
    args = parser.parse_args(argv)

    messages = args.messages or (2_500 if args.quick else 8_000)
    rounds = args.rounds or (3 if args.quick else 5)
    sample = _stream(messages)

    overhead, rate = measure_overhead(sample, rounds)
    deterministic, fingerprint = check_determinism(sample)
    capacity = capacity_report(fingerprint)

    memory = fingerprint.get("memory", {})
    drift = memory.get("drift", {})
    print(ascii_table(
        ["indicator", "value"],
        [["overhead (best paired ratio)",
          format_float(overhead * 100, 2) + "%"],
         ["anatomy-on rate", f"{rate:,.0f} msg/s"],
         ["fingerprint determinism",
          "byte-identical" if deterministic else "MISMATCH"],
         ["index drift vs estimate",
          f"{drift.get('index', 0.0) * 100:+.1f}%"],
         ["pool drift vs estimate",
          f"{drift.get('pool', 0.0) * 100:+.1f}%"]],
        title=f"workload anatomy ({human_count(messages)} messages "
              f"x {rounds} paired rounds)"))
    print()
    for line in capacity.get("recommendations", []):
        print(f"  - {line}")

    write_bench_json(
        BENCH_JSON, bench="anatomy",
        config={"messages": messages, "rounds": rounds,
                "quick": bool(args.quick), "pool_size": 200,
                "sample_every": 8},
        metrics={
            "overhead_anatomy": overhead,
            "anatomy_rate_msg_per_s": rate,
            "fingerprint_deterministic": 1.0 if deterministic else 0.0,
            "memory_drift_index": float(drift.get("index", 0.0)),
            "memory_drift_pool": float(drift.get("pool", 0.0)),
            "capacity": capacity,
        })
    print(f"\nwrote {BENCH_JSON.name}")

    failures = []
    if overhead >= OVERHEAD_BUDGET:
        failures.append(f"anatomy overhead {overhead:.3f} >= "
                        f"{OVERHEAD_BUDGET} budget")
    if not deterministic:
        failures.append("fingerprints differ between seeded replays")
    for component in ("index", "pool"):
        value = abs(float(drift.get(component, 0.0)))
        # Calibrated on CPython 3.11; other interpreters shift object
        # headers, so the bench bar is looser than the 10% dev target.
        if value >= 0.25:
            failures.append(f"{component} memory drift {value:.2f} "
                            ">= 0.25")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
