"""Figure 10 — showing cases of discovered provenance.

The paper renders two extracted bundles from September 2009: IBM's CICS
partner conference and the Samoa tsunami.  We inject the same two named
events into a background stream, run the Full Index, locate each event's
dominant bundle and render its propagation tree; the red-node/first-post
structure of the figure corresponds to the tree roots.
"""

from __future__ import annotations

import random

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.graph import cascade_stats, render_tree, roots
from repro.core.metrics import label_purity
from repro.stream.generator import (StreamConfig, StreamGenerator,
                                    make_event_spec)
from repro.stream.users import UserPool
from repro.stream.vocab import ShortUrlFactory

START = 1251763200.0  # 2009-09-01 00:00 UTC

CASES = (("tech_conference", "IBM CICS partner conference"),
         ("tsunami", "Samoa tsunami"))


def build_stream():
    rng = random.Random(42)
    users = UserPool.generate(400, rng)
    urls = ShortUrlFactory(rng)
    extra = tuple(
        make_event_spec(
            event_id=9000 + index, theme=theme, name=name,
            start=START + (6 + 8 * index) * 3600.0, duration_hours=10.0,
            volume=60, rng=rng, users=users, url_factory=urls,
            rt_prob=0.5)
        for index, (theme, name) in enumerate(CASES)
    )
    background = ("baseball", "election", "finance", "football",
                  "music_awards", "phone_launch")  # disjoint from CASES
    config = StreamConfig(seed=42, start_date=START, days=2.0,
                          messages_per_day=3000, user_count=400,
                          events_per_day=6.0, extra_events=extra,
                          themes=background)
    return StreamGenerator(config).generate_list()


def discover(stream):
    engine = ProvenanceIndexer(IndexerConfig.full_index())
    for message in stream:
        engine.ingest(message)
    # For each injected event, the bundle holding most of its messages.
    found = {}
    for index, (theme, name) in enumerate(CASES):
        event_id = 9000 + index
        best, best_hits = None, 0
        for bundle in engine.pool:
            hits = sum(1 for m in bundle if m.event_id == event_id)
            if hits > best_hits:
                best, best_hits = bundle, hits
        found[name] = (best, best_hits)
    return engine, found


def test_fig10_case_studies(benchmark, emit):
    stream = build_stream()
    engine, found = benchmark.pedantic(discover, args=(stream,),
                                       rounds=1, iterations=1)

    sections = []
    for name, (bundle, hits) in found.items():
        assert bundle is not None, f"no bundle captured event {name!r}"
        stats = cascade_stats(bundle)
        sections.append(
            f"--- {name} (bundle {bundle.bundle_id}, {hits}/60 event "
            f"messages, depth={stats.max_depth}, "
            f"roots={stats.root_count}) ---\n"
            + render_tree(bundle, max_text=44))
    emit("fig10_case_studies", "\n\n".join(sections))

    for name, (bundle, hits) in found.items():
        # The dominant bundle must capture the majority of the event and
        # be topically pure — the property that makes Fig. 10 legible.
        assert hits >= 30, name
        assert label_purity(bundle.messages()) > 0.6, name
        # Propagation structure exists: re-shares chain below the roots.
        stats = cascade_stats(bundle)
        assert stats.max_depth >= 1, name
        assert len(roots(bundle)) < len(bundle), name
