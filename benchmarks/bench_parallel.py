"""Extension — multiprocess runtime: aggregate ingest throughput.

The serving runtime's scale-out claim, measured: the same stream
through one full resilient stack (``ResilientIndexer.open`` — WAL,
snapshots, spill store) versus a :class:`~repro.runtime.ShardedRuntime`
fleet at 1, 2 and 4 workers.  Two effects stack:

* **algorithmic** — each shard's candidate structures hold ~1/N of the
  pool, so Algorithm 1's candidate fetch + scoring per message shrinks
  with the fleet (this dominates on a single core);
* **parallel** — on multi-core hosts the workers index concurrently
  while the coordinator routes and pickles.

The acceptance bar is **>= 2x aggregate throughput at 4 workers** over
the single-process baseline, recorded in ``BENCH_parallel.json``.  Edge
coverage against the unsharded run is reported alongside, because a
speedup bought by silently dropping cross-shard provenance would be a
lie — the hash router's coverage loss is a visible, measured trade-off
(see ``bench_sharding.py``).

Run standalone (``python benchmarks/bench_parallel.py``); ``--quick``
is the CI smoke mode (small stream, no speedup assertion — the bar is
meaningless at toy sizes where fixed process overhead dominates).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

from repro.bench.reporting import (ascii_table, format_float, human_count,
                                   write_bench_json)
from repro.core.metrics import compare_edge_sets
from repro.reliability.supervisor import ResilientIndexer
from repro.runtime import ShardedRuntime
from repro.stream.generator import StreamConfig, StreamGenerator

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

WORKER_COUNTS = (1, 2, 4)
SYNC_EVERY = 512
BATCH_SIZE = 512


def make_stream(messages: int, seed: int):
    config = StreamConfig(
        seed=seed, days=messages / 100_000.0, messages_per_day=100_000,
        user_count=max(messages // 25, 200), events_per_day=240.0)
    return StreamGenerator(config).generate_list()[:messages]


def run_single(stream, root: Path) -> tuple[float, set]:
    """Single-process baseline: the same stack each worker hosts."""
    supervisor = ResilientIndexer.open(root, sync_every=SYNC_EVERY)
    started = time.perf_counter()
    supervisor.ingest_batch(stream, count_only=True)
    supervisor.journaled.journal.sync()
    elapsed = time.perf_counter() - started
    edges = supervisor.edge_pairs()
    supervisor.close()
    return len(stream) / elapsed, edges


def run_fleet(stream, root: Path, workers: int) -> tuple[float, set]:
    """The multiprocess runtime end to end, pipelined ingest."""
    with ShardedRuntime(root, workers, sync_every=SYNC_EVERY) as runtime:
        started = time.perf_counter()
        runtime.ingest_stream(stream, batch_size=BATCH_SIZE)
        elapsed = time.perf_counter() - started
        edges = runtime.edge_pairs()
    return len(stream) / elapsed, edges


def run_parallel_bench(messages: int, seed: int, *,
                       quick: bool) -> dict:
    stream = make_stream(messages, seed)
    print(f"stream: {human_count(len(stream))} messages "
          f"(seed {seed})", flush=True)

    with tempfile.TemporaryDirectory(prefix="bench-parallel-") as td:
        scratch = Path(td)
        single_rate, reference = run_single(stream, scratch / "single")
        print(f"single process: {single_rate:,.0f} msg/s", flush=True)

        rows = []
        metrics: dict[str, float] = {
            "messages": float(len(stream)),
            "single_msg_per_s": single_rate,
        }
        for workers in WORKER_COUNTS:
            rate, edges = run_fleet(stream, scratch / f"w{workers}",
                                    workers)
            coverage = compare_edge_sets(edges, reference).coverage
            speedup = rate / single_rate
            rows.append([workers, f"{rate:,.0f}",
                         format_float(speedup, 2) + "x",
                         format_float(coverage)])
            metrics[f"fleet{workers}_msg_per_s"] = rate
            metrics[f"fleet{workers}_speedup"] = speedup
            metrics[f"fleet{workers}_edge_coverage"] = coverage
            print(f"{workers} worker(s): {rate:,.0f} msg/s "
                  f"({speedup:.2f}x, coverage {coverage:.3f})",
                  flush=True)

    print()
    print(ascii_table(
        ["workers", "msg/s", "speedup", "edge coverage"],
        [["1 (in-proc)", f"{single_rate:,.0f}", "1.00x", "1.0"]] + rows,
        title=f"aggregate ingest throughput "
              f"({human_count(len(stream))} messages, "
              f"batch {BATCH_SIZE}, group-commit {SYNC_EVERY})"))

    write_bench_json(
        BENCH_JSON, bench="parallel_ingest",
        config={"messages": len(stream), "seed": seed,
                "batch_size": BATCH_SIZE, "sync_every": SYNC_EVERY,
                "workers": list(WORKER_COUNTS), "quick": quick},
        metrics=metrics)
    print(f"\nwrote {BENCH_JSON}")
    return metrics


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="multiprocess runtime ingest throughput benchmark")
    parser.add_argument("--messages", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 6000 messages, no "
                             "speedup assertion")
    args = parser.parse_args(argv)
    messages = 6000 if args.quick else args.messages

    metrics = run_parallel_bench(messages, args.seed, quick=args.quick)

    if not args.quick:
        # The acceptance bar: 4 workers must at least double aggregate
        # ingest throughput over the single-process baseline.
        speedup = metrics["fleet4_speedup"]
        if speedup < 2.0:
            print(f"FAIL: 4-worker speedup {speedup:.2f}x < 2.0x",
                  file=sys.stderr)
            return 1
        print(f"PASS: 4-worker speedup {speedup:.2f}x >= 2.0x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
