"""Extension — multiprocess runtime: throughput, coverage and repair.

The serving runtime's scale-out claim, measured: the same stream
through one full resilient stack (``ResilientIndexer.open`` — WAL,
snapshots, spill store) versus a :class:`~repro.runtime.ShardedRuntime`
fleet at 1, 2 and 4 workers, with the cascade-affine co-occurrence
router and the asynchronous cross-shard edge repair pass enabled.
Two effects stack:

* **algorithmic** — each shard's candidate structures hold ~1/N of the
  pool, so Algorithm 1's candidate fetch + scoring per message shrinks
  with the fleet (this dominates on a single core);
* **parallel** — on multi-core hosts the workers index concurrently
  while the coordinator routes and pickles.

Coverage is reported on **two curves**, because they answer different
questions:

* ``edge_coverage`` — fraction of the single-process run's edges the
  fleet reproduces exactly.  This has a *structural ceiling well below
  1.0*: Eq. 1 bundle selection depends on ingest-time pool context, so
  two partitions of the same stream legitimately disagree on low-margin
  alignments (even a router with oracle knowledge of the generator's
  event labels measures ~0.87 here; post-hoc re-scoring moves more
  edges wrong than right).  The repair pass only moves an edge when a
  peer's alignment *strictly beats* the owner's — the measured
  net-positive policy.
* ``truth_parity`` — true-provenance hits (edges matching the synthetic
  generator's ground truth, the evaluation
  :func:`repro.core.metrics.ground_truth_edges` exists for) relative to
  the single process's true hits.  This is the question that matters —
  "does sharding lose real provenance?" — and the answer is no:
  the fleet with repair consistently *exceeds* the single process
  (parity >= 1.0), because per-shard pools shrink Algorithm 1's noise
  candidate sets.  The acceptance bar is parity >= 0.98.

Coordination overhead is measured per fleet run: router time and
ACK-wait time on the coordinator, boundary hints journaled, repair
probes/edges and repair wall time.

The acceptance bars (full mode) are **>= 2x aggregate ingest
throughput at 4 workers**, **edge coverage >= 0.85** (measured ~0.90
at 100k messages; hash routing without repair measures 0.79, so the
bar catches routing/repair regressions without pretending the
structural ceiling away) and **truth parity >= 0.98**, recorded in
``BENCH_parallel.json``.

Run standalone (``python benchmarks/bench_parallel.py``); ``--quick``
is the CI smoke mode (small stream, no assertions — the bars are
meaningless at toy sizes where fixed process overhead dominates) and
still emits the full coverage-vs-workers curve.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

from repro.bench.reporting import (ascii_table, format_float, human_count,
                                   write_bench_json)
from repro.core.metrics import compare_edge_sets, ground_truth_edges
from repro.reliability.supervisor import ResilientIndexer
from repro.runtime import ShardedRuntime
from repro.stream.generator import StreamConfig, StreamGenerator

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

WORKER_COUNTS = (1, 2, 4)
SYNC_EVERY = 512
BATCH_SIZE = 512

COVERAGE_NOTE = (
    "edge_coverage is vs the single-process run and has a structural "
    "ceiling (~0.87 even with oracle event routing): Eq. 1 alignment "
    "depends on ingest-time pool context, so partitions legitimately "
    "disagree on low-margin edges. truth_parity (true-provenance hits "
    "vs the single process, via ground_truth_edges) is the acceptance "
    "metric: >= 0.98 means sharding loses no real provenance.")


def make_stream(messages: int, seed: int):
    config = StreamConfig(
        seed=seed, days=messages / 100_000.0, messages_per_day=100_000,
        user_count=max(messages // 25, 200), events_per_day=240.0)
    return StreamGenerator(config).generate_list()[:messages]


def run_single(stream, root: Path) -> tuple[float, set]:
    """Single-process baseline: the same stack each worker hosts."""
    supervisor = ResilientIndexer.open(root, sync_every=SYNC_EVERY)
    started = time.perf_counter()
    supervisor.ingest_batch(stream, count_only=True)
    supervisor.journaled.journal.sync()
    elapsed = time.perf_counter() - started
    edges = supervisor.edge_pairs()
    supervisor.close()
    return len(stream) / elapsed, edges


def run_fleet(stream, root: Path, workers: int) -> dict:
    """The runtime end to end: pipelined ingest, then edge repair."""
    with ShardedRuntime(root, workers, router="cooccurrence",
                        sync_every=SYNC_EVERY) as runtime:
        started = time.perf_counter()
        runtime.ingest_stream(stream, batch_size=BATCH_SIZE)
        ingest_elapsed = time.perf_counter() - started
        repair_started = time.perf_counter()
        report = runtime.repair_until_clean()
        repair_elapsed = time.perf_counter() - repair_started
        edges = runtime.edge_pairs()
        stats = runtime.stats
    return {
        "rate": len(stream) / ingest_elapsed,
        "edges": edges,
        "repair": report,
        "repair_seconds": repair_elapsed,
        "boundary_hints": stats.boundary_hints,
        "route_seconds": stats.route_seconds,
        "ack_wait_seconds": stats.ack_wait_seconds,
        "queue_wait_seconds": stats.queue_wait_seconds,
        "service_seconds": stats.service_seconds,
    }


def run_parallel_bench(messages: int, seed: int, *,
                       quick: bool) -> dict:
    stream = make_stream(messages, seed)
    truth = ground_truth_edges(stream)
    print(f"stream: {human_count(len(stream))} messages "
          f"(seed {seed}, {human_count(len(truth))} true edges)",
          flush=True)

    with tempfile.TemporaryDirectory(prefix="bench-parallel-") as td:
        scratch = Path(td)
        single_rate, reference = run_single(stream, scratch / "single")
        single_true = len(reference & truth)
        print(f"single process: {single_rate:,.0f} msg/s, "
              f"{single_true} true-provenance hits", flush=True)

        rows = []
        metrics: dict[str, float] = {
            "messages": float(len(stream)),
            "single_msg_per_s": single_rate,
            "single_true_hits": float(single_true),
        }
        for workers in WORKER_COUNTS:
            result = run_fleet(stream, scratch / f"w{workers}", workers)
            edges = result["edges"]
            coverage = compare_edge_sets(edges, reference).coverage
            parity = (len(edges & truth) / single_true
                      if single_true else 1.0)
            speedup = result["rate"] / single_rate
            coord = result["route_seconds"] + result["ack_wait_seconds"]
            rows.append([workers, f"{result['rate']:,.0f}",
                         format_float(speedup, 2) + "x",
                         format_float(coverage),
                         format_float(parity),
                         f"{result['boundary_hints']:,}",
                         f"{result['repair']['repaired']:,}",
                         f"{coord:.2f}s",
                         f"{result['queue_wait_seconds']:.1f}s"
                         f"/{result['service_seconds']:.1f}s"])
            metrics[f"fleet{workers}_msg_per_s"] = result["rate"]
            metrics[f"fleet{workers}_speedup"] = speedup
            metrics[f"fleet{workers}_edge_coverage"] = coverage
            metrics[f"fleet{workers}_truth_parity"] = parity
            metrics[f"fleet{workers}_boundary_hints"] = float(
                result["boundary_hints"])
            metrics[f"fleet{workers}_edges_repaired"] = float(
                result["repair"]["repaired"])
            metrics[f"fleet{workers}_route_seconds"] = (
                result["route_seconds"])
            metrics[f"fleet{workers}_ack_wait_seconds"] = (
                result["ack_wait_seconds"])
            metrics[f"fleet{workers}_queue_wait_seconds"] = (
                result["queue_wait_seconds"])
            metrics[f"fleet{workers}_service_seconds"] = (
                result["service_seconds"])
            metrics[f"fleet{workers}_repair_seconds"] = (
                result["repair_seconds"])
            print(f"{workers} worker(s): {result['rate']:,.0f} msg/s "
                  f"({speedup:.2f}x, coverage {coverage:.3f}, "
                  f"truth parity {parity:.3f}, "
                  f"{result['boundary_hints']} hints, "
                  f"{result['repair']['repaired']} repaired in "
                  f"{result['repair_seconds']:.2f}s)", flush=True)

    print()
    print(ascii_table(
        ["workers", "msg/s", "speedup", "cov-vs-single", "truth-parity",
         "hints", "repaired", "coord", "qwait/svc"],
        [["1 (in-proc)", f"{single_rate:,.0f}", "1.00x", "1.0", "1.0",
          "-", "-", "-", "-"]] + rows,
        title=f"aggregate ingest throughput + edge repair "
              f"({human_count(len(stream))} messages, "
              f"batch {BATCH_SIZE}, group-commit {SYNC_EVERY}, "
              f"cooccurrence router)"))

    write_bench_json(
        BENCH_JSON, bench="parallel_ingest",
        config={"messages": len(stream), "seed": seed,
                "batch_size": BATCH_SIZE, "sync_every": SYNC_EVERY,
                "workers": list(WORKER_COUNTS), "quick": quick,
                "router": "cooccurrence", "repair": "until_clean",
                "coverage_note": COVERAGE_NOTE},
        metrics=metrics)
    print(f"\nwrote {BENCH_JSON}")
    return metrics


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="multiprocess runtime ingest throughput benchmark")
    parser.add_argument("--messages", type=int, default=100_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 6000 messages, full "
                             "coverage curve, no assertions")
    args = parser.parse_args(argv)
    messages = 6000 if args.quick else args.messages

    metrics = run_parallel_bench(messages, args.seed, quick=args.quick)

    if not args.quick:
        # The acceptance bars: 4 workers must at least double aggregate
        # ingest throughput, reproduce >= 85% of the single process's
        # edges exactly (measured ~0.90; hash routing without repair
        # measures 0.79), and preserve >= 98% of its *true* provenance
        # (see COVERAGE_NOTE for why the bars differ).
        failures = []
        speedup = metrics["fleet4_speedup"]
        if speedup < 2.0:
            failures.append(f"4-worker speedup {speedup:.2f}x < 2.0x")
        coverage = metrics["fleet4_edge_coverage"]
        if coverage < 0.85:
            failures.append(f"4-worker edge coverage {coverage:.3f} "
                            "< 0.85")
        parity = metrics["fleet4_truth_parity"]
        if parity < 0.98:
            failures.append(f"4-worker truth parity {parity:.3f} "
                            "< 0.98")
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"PASS: 4-worker speedup {speedup:.2f}x >= 2.0x, "
              f"edge coverage {coverage:.3f} >= 0.85, "
              f"truth parity {parity:.3f} >= 0.98")
    return 0


if __name__ == "__main__":
    sys.exit(main())
