"""Audit overhead — what decision recording costs on the ingest hot path.

Three variants ingest the same stream:

* metrics only (audit disabled — the existing < 5% budget re-pinned),
* metrics + audit ring (bounded in-memory ``AuditLog``, no sink),
* metrics + audit ring + JSONL sink (every decision serialised).

The methodology mirrors ``bench_obs_overhead``: each instrumented
measurement is paired with its own immediately-preceding
telemetry-off baseline and the reported overhead is the best
(minimum) of the per-pair ratios, because scheduler noise only ever
inflates a ratio.  The tentpole's budget: the audit ring must stay
under 7% and audit-disabled ingest must keep the existing < 5%
metrics budget — the whole point of the ``collect=None`` fast path
is that explanation support is free until someone turns it on.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.bench.reporting import (ascii_table, format_float, human_count,
                                   write_bench_json)
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.obs import AuditLog, Observability

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def test_audit_overhead(benchmark, stream, emit, workload, tmp_path):
    sample = stream[: min(4_000, len(stream))]
    sink_dir = tmp_path

    def run(obs: Observability) -> float:
        engine = ProvenanceIndexer(
            IndexerConfig.partial_index(pool_size=200), obs=obs)
        started = time.perf_counter()
        for message in sample:
            engine.ingest(message)
        elapsed = time.perf_counter() - started
        assert engine.stats.messages_ingested == len(sample)
        if obs.audit is not None:
            assert obs.audit.recorded == len(sample)
            obs.audit.close()
        return elapsed

    sink_serial = iter(range(10_000))

    def sink_audit() -> AuditLog:
        path = sink_dir / f"audit-{next(sink_serial)}.jsonl"
        return AuditLog(capacity=4_096, sink=str(path))

    instrumented = {
        "metrics (audit off)": lambda: Observability(),
        "audit ring": lambda: Observability(audit=AuditLog(capacity=4_096)),
        "audit + jsonl sink": lambda: Observability(audit=sink_audit()),
    }
    run(Observability.disabled())  # warm-up, discarded
    rounds = 5
    ratios: "dict[str, list[float]]" = {name: [] for name in instrumented}
    base_times: "list[float]" = []
    ring_time = float("inf")
    for round_index in range(rounds):
        for name, make_obs in instrumented.items():
            base = run(Observability.disabled())
            base_times.append(base)
            if name == "audit ring" and round_index == rounds - 1:
                # The last ring run goes through pytest-benchmark so the
                # session records it; the ratio uses it all the same.
                elapsed = benchmark.pedantic(
                    lambda: run(Observability(
                        audit=AuditLog(capacity=4_096))),
                    rounds=1, iterations=1)
            else:
                elapsed = run(make_obs())
            if name == "audit ring":
                ring_time = min(ring_time, elapsed)
            ratios[name].append(elapsed / base)

    # A best ratio below 1.0 means the cost is indistinguishable from
    # the noise floor; report that as zero rather than a negative cost.
    overhead = {name: max(min(values) - 1.0, 0.0)
                for name, values in ratios.items()}
    rate = len(sample) / ring_time

    emit("audit_overhead", ascii_table(
        ["variant", "best paired overhead vs telemetry off"],
        [["off", f"— (baseline, best {min(base_times):.2f}s)"]]
        + [[name, format_float(overhead[name] * 100, 1) + "%"]
           for name in instrumented],
        title=f"audit overhead ({human_count(len(sample))} messages "
              f"x {rounds} paired rounds, audit-ring rate "
              f"{rate:,.0f} msg/s)"))

    write_bench_json(
        BENCH_JSON, bench="audit_overhead",
        config={"messages": len(sample), "rounds": rounds,
                "scale": workload.name, "pool_size": 200,
                "ring_capacity": 4_096},
        metrics={"overhead_metrics_audit_off":
                 overhead["metrics (audit off)"],
                 "overhead_audit_ring": overhead["audit ring"],
                 "overhead_audit_jsonl_sink":
                 overhead["audit + jsonl sink"],
                 "audit_ring_rate_msg_per_s": rate})

    # The acceptance budgets: audit disabled keeps the existing metrics
    # budget; the in-memory ring costs at most 7%.  The JSONL sink
    # materialises and serialises every decision — a debugging mode,
    # not a production default — so it only has to stay within the
    # same order of magnitude as the uninstrumented path.
    assert overhead["metrics (audit off)"] < 0.05, overhead
    assert overhead["audit ring"] < 0.07, overhead
    assert overhead["audit + jsonl sink"] < 1.5, overhead
