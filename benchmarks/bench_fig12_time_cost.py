"""Figure 12 — time cost of provenance maintenance.

Accumulated processing time vs incoming messages for the three methods.
Expected shape: all three grow linearly ("with the growth of incoming
messages, these three approaches all exhibit a linear time cost
increase"), with the partial variants no more expensive than the
unbounded baseline at scale.

The ``benchmark`` target is steady-state ingest throughput on a fresh
partial-index engine, which is the operation the figure's slope measures.
"""

from __future__ import annotations

from repro.bench.reporting import format_float, line_chart, series_table
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer


def test_fig12_time_cost(benchmark, comparison, stream, workload, emit):
    positions = comparison.positions()
    totals = {
        method: comparison.series(method, "total_time")
        for method in comparison.methods
    }
    table = series_table(
        positions,
        {m: [format_float(v, 2) + "s" for v in s]
         for m, s in totals.items()},
        title="Fig 12 — accumulated maintenance time")
    chart = line_chart([float(p) for p in positions], totals)
    emit("fig12_time_cost", table + "\n\n" + chart)

    # Linearity check: per-checkpoint increments never explode (the last
    # increment stays within 5x of the median increment).
    for method, series in totals.items():
        increments = [b - a for a, b in zip(series, series[1:])]
        if len(increments) >= 3:
            ordered = sorted(increments)
            median = ordered[len(ordered) // 2]
            assert increments[-1] < 5 * max(median, 1e-9), method

    # Benchmark the figure's slope: throughput of steady-state ingestion.
    chunk = stream[: min(2_000, len(stream))]

    def ingest_chunk():
        engine = ProvenanceIndexer(
            IndexerConfig.partial_index(pool_size=workload.pool_size))
        for message in chunk:
            engine.ingest(message)
        return engine.stats.messages_ingested

    assert benchmark.pedantic(ingest_chunk, rounds=3,
                              iterations=1) == len(chunk)
