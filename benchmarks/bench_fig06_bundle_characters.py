"""Figure 6 — provenance bundle characters (no limits).

(a) bundle-size distribution, (b) bundle time-span distribution, computed
over the *Full Index* run exactly as Section V-A describes ("we do not set
any restriction of the bundle size and message match").  Expected shape:
heavy-tailed sizes (most bundles small, a long large tail) and most
bundles going quiet within hours.
"""

from __future__ import annotations

from repro.bench.reporting import bar_chart, human_count
from repro.stream.stats import histogram

SIZE_EDGES = [1, 2, 3, 5, 10, 20, 50, 100, 1_000_000]
SIZE_LABELS = ["1", "2", "3-4", "5-9", "10-19", "20-49", "50-99", "100+"]
SPAN_EDGES_HOURS = [0, 1, 3, 6, 12, 24, 48, 1_000_000]
SPAN_LABELS = ["<1h", "1-3h", "3-6h", "6-12h", "12-24h", "24-48h", "48h+"]


def bundle_characters(full_engine):
    sizes = [len(bundle) for bundle in full_engine.pool]
    spans = [bundle.time_span / 3600.0 for bundle in full_engine.pool]
    return (histogram(sizes, SIZE_EDGES), histogram(spans, SPAN_EDGES_HOURS),
            len(sizes))


def test_fig06_bundle_characters(benchmark, comparison, emit):
    full_engine = comparison.engines["full"]
    size_counts, span_counts, total = benchmark(
        bundle_characters, full_engine)

    text = "\n".join([
        f"messages={human_count(full_engine.stats.messages_ingested)}  "
        f"bundles={human_count(total)}",
        "",
        bar_chart(SIZE_LABELS, size_counts,
                  title="Fig 6a — bundle size distribution"),
        "",
        bar_chart(SPAN_LABELS, span_counts,
                  title="Fig 6b — bundle time-span distribution"),
    ])
    emit("fig06_bundle_characters", text)

    # Shape assertions from the paper: "a remarkable proportion of the
    # bundle sets are in small size ... only a small proportion are large".
    small = sum(size_counts[:4])   # size < 10
    large = size_counts[-1]        # size >= 100
    assert small > 0.5 * total
    assert large < 0.1 * total
    # "Most of the bundles no longer get updating after some time."
    assert sum(span_counts[:5]) > 0.5 * total  # quiet within a day
