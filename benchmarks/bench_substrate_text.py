"""Substrate benchmark — the text retrieval engine (Lucene substitute).

Not a paper figure: sanity-scale numbers for the keyword-search baseline
(Fig. 1) and the Eq. 7 text component.  Benchmarks message indexing
throughput and ranked-query latency over an indexed stream.
"""

from __future__ import annotations

from repro.bench.reporting import ascii_table, human_count
from repro.text.search import SearchEngine


def test_substrate_index_throughput(benchmark, stream, emit):
    sample = stream[: min(10_000, len(stream))]

    def index_all():
        engine = SearchEngine()
        engine.add_all(sample)
        return engine

    engine = benchmark.pedantic(index_all, rounds=3, iterations=1)
    emit("substrate_text_index",
         ascii_table(
             ["metric", "value"],
             [["messages", human_count(len(engine))],
              ["distinct terms", human_count(engine.index.term_count)],
              ["avg doc length",
               f"{engine.index.average_doc_length:.1f} terms"]],
             title="Text substrate — index statistics"))
    assert len(engine) == len(sample)


def test_substrate_query_latency(benchmark, stream):
    engine = SearchEngine()
    engine.add_all(stream[: min(10_000, len(stream))])

    queries = ["tsunami samoa warning", "market stocks rally",
               "yankees stadium game", "iphone launch battery"]

    def run_queries():
        return sum(len(engine.search(query, k=10)) for query in queries)

    total_hits = benchmark(run_queries)
    assert total_hits >= 0  # latency benchmark; hits depend on seed
