"""Figure 13 — time cost in different processing stages.

Accumulated time of the three pipeline stages on the bundle-limit variant
(the one that exercises all three): bundle match, message placement and
memory refinement.  Expected shape: every stage accumulates linearly and
steadily; match and placement dominate, refinement stays the cheapest
because it is amortised over its trigger period.
"""

from __future__ import annotations

from repro.bench.reporting import format_float, series_table
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.message import parse_message
from repro.core.pool import BundlePool
from repro.stream.generator import StreamConfig, StreamGenerator

BASE_DATE = 1_249_084_800.0


def test_fig13_stage_time(benchmark, comparison, emit):
    positions = comparison.positions()
    method = "bundle_limit"
    stages = {
        "bundle match": comparison.series(method, "match_time"),
        "message placement": comparison.series(method, "placement_time"),
        "index update": comparison.series(method, "index_update_time"),
        "memory refinement": comparison.series(method, "refinement_time"),
    }
    table = series_table(
        positions,
        {name: [format_float(v, 2) + "s" for v in series]
         for name, series in stages.items()},
        title=f"Fig 13 — accumulated stage time ({method})")
    emit("fig13_stage_time", table)

    # Each stage accumulates monotonically (it is a running total).
    for name, series in stages.items():
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:])), name
    # Refinement is amortised: it must not dominate the total.
    total = sum(series[-1] for series in stages.values())
    assert stages["memory refinement"][-1] < 0.5 * total

    # Per-interval stage cost via StageTimers.reset(): a long-lived
    # indexer reports what each *interval* cost, not only running
    # totals.  The intervals must tile the cumulative time exactly.
    engine = ProvenanceIndexer(
        IndexerConfig.bundle_limit(pool_size=200, bundle_size=40))
    messages = StreamGenerator(StreamConfig(
        seed=13, days=0.02, messages_per_day=100_000)).generate_list()
    chunk = max(len(messages) // 4, 1)
    intervals = []
    for start in range(0, len(messages), chunk):
        for message in messages[start:start + chunk]:
            engine.ingest(message)
        intervals.append(engine.timers.reset())
    interval_table = series_table(
        [str(i + 1) for i in range(len(intervals))],
        {"bundle match": [format_float(s.bundle_match, 3) + "s"
                          for s in intervals],
         "placement": [format_float(s.message_placement, 3) + "s"
                       for s in intervals],
         "index update": [format_float(s.index_update, 3) + "s"
                          for s in intervals],
         "refinement": [format_float(s.memory_refinement, 3) + "s"
                        for s in intervals]},
        title="Fig 13b — per-interval stage time (StageTimers.reset)")
    emit("fig13_stage_time_intervals", interval_table)
    # After reset() the view reads zero; the histograms keep the truth.
    assert engine.timers.total == 0.0
    cumulative = sum(s.total for s in intervals)
    assert abs(cumulative
               - engine.timers.histogram("bundle_match").sum
               - engine.timers.histogram("message_placement").sum
               - engine.timers.histogram("index_update").sum
               - engine.timers.histogram("memory_refinement").sum) < 1e-9

    # Benchmark the stage unique to this figure: one refinement scan over
    # a populated pool.
    def build_pool() -> tuple[BundlePool, float]:
        pool = BundlePool(IndexerConfig(max_pool_size=200,
                                        refine_target_fraction=0.5))
        date = BASE_DATE
        for index in range(400):
            bundle = pool.create_bundle()
            for offset in range(3):
                date = BASE_DATE + index * 60.0 + offset
                bundle.insert(parse_message(
                    index * 10 + offset, f"u{offset}", date,
                    f"#t{index} m{offset}"))
        return pool, date

    def refine_once():
        pool, date = build_pool()
        return pool.refine(date + 3600.0).removed

    removed = benchmark.pedantic(refine_once, rounds=3, iterations=1)
    assert removed > 0
