"""Reliability benchmark — what the safety layers cost on the hot path.

Three variants ingest the same stream in lockstep:

* a plain engine (no durability at all),
* the journaled engine (CRC-framed WAL appends + periodic fsync),
* the journaled engine behind :class:`ResilientIndexer` (per-message
  retry bookkeeping, watermark checks, dead-letter plumbing).

The reliability tentpole's budget: supervision must be noise on top of
the WAL, and the WAL a fraction of scoring work — the safety net may
not become the workload.
"""

from __future__ import annotations

import time

from repro.bench.reporting import ascii_table, format_float, human_count
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.reliability.supervisor import ResilientIndexer
from repro.storage.wal import JournaledIndexer, MessageJournal


def test_reliability_overhead(benchmark, stream, tmp_path, emit):
    sample = stream[: min(4_000, len(stream))]
    run_counter = iter(range(10_000))

    def fresh_journaled() -> JournaledIndexer:
        return JournaledIndexer(
            ProvenanceIndexer(IndexerConfig.partial_index(pool_size=200)),
            MessageJournal(tmp_path / f"run-{next(run_counter)}.wal",
                           sync_every=64))

    def plain_run() -> float:
        engine = ProvenanceIndexer(IndexerConfig.partial_index(
            pool_size=200))
        started = time.perf_counter()
        for message in sample:
            engine.ingest(message)
        return time.perf_counter() - started

    def journaled_run() -> float:
        journaled = fresh_journaled()
        started = time.perf_counter()
        for message in sample:
            journaled.ingest(message)
        journaled.journal.sync()
        return time.perf_counter() - started

    def supervised_run() -> float:
        supervisor = ResilientIndexer(fresh_journaled())
        started = time.perf_counter()
        for message in sample:
            supervisor.ingest(message)
        supervisor.journaled.journal.sync()
        assert supervisor.stats.ingested == len(sample)
        assert supervisor.stats.retries == 0
        return time.perf_counter() - started

    plain = min(plain_run() for _ in range(2))
    journaled = min(journaled_run() for _ in range(2))

    supervised = benchmark.pedantic(supervised_run, rounds=2, iterations=1)

    wal_overhead = journaled / plain - 1.0
    supervision_overhead = supervised / journaled - 1.0

    emit("reliability_overhead", ascii_table(
        ["variant", "time", "vs previous layer"],
        [["plain engine", f"{plain:.2f}s", "—"],
         ["+ CRC-framed WAL", f"{journaled:.2f}s",
          format_float(wal_overhead * 100, 1) + "%"],
         ["+ supervision", f"{supervised:.2f}s",
          format_float(supervision_overhead * 100, 1) + "%"]],
        title=f"reliability overhead ({human_count(len(sample))} messages)"))

    # The WAL may cost a fraction of scoring; supervision must be noise.
    assert wal_overhead < 0.6
    assert supervision_overhead < 0.25
