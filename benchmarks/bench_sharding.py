"""Extension — sharded scale-out: router trade-off measurement.

Sharding must place every message on exactly one engine; the two routers
trade provenance co-location against load balance:

* the stateless **hash** router splits events whose messages carry
  varying indicant subsets (a message tagged only ``#samoa0930`` and one
  tagged ``#samoa0930 #tsunami`` can hash apart), losing the edges that
  cross the cut;
* the **co-occurrence** (union-find) router keeps topics together by
  construction, at the price of coarser components and more skew.

Measured against a single unsharded engine as ground truth.
"""

from __future__ import annotations

from repro.bench.reporting import ascii_table, format_float, human_count
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.metrics import compare_edge_sets
from repro.core.sharding import ShardedIndexer

SHARD_COUNTS = (2, 4, 8)


def run_sharding(stream):
    single = ProvenanceIndexer(IndexerConfig.full_index())
    for message in stream:
        single.ingest(message)
    reference = single.edge_pairs()

    rows = {}
    for router in ("hash", "cooccurrence"):
        for shard_count in SHARD_COUNTS:
            sharded = ShardedIndexer(shard_count,
                                     IndexerConfig.full_index(),
                                     router=router)
            for message in stream:
                sharded.ingest(message)
            cmp = compare_edge_sets(sharded.edge_pairs(), reference)
            rows[(router, shard_count)] = (cmp.coverage,
                                           sharded.shard_stats().imbalance)
    return rows


def test_sharding_router_tradeoff(benchmark, stream, emit):
    sample = stream[: min(10_000, len(stream))]
    rows = benchmark.pedantic(run_sharding, args=(sample,),
                              rounds=1, iterations=1)

    table = ascii_table(
        ["router", "shards", "edge coverage", "load imbalance"],
        [[router, count, format_float(coverage),
          format_float(imbalance, 2)]
         for (router, count), (coverage, imbalance) in rows.items()],
        title=(f"Sharding router trade-off "
               f"({human_count(len(sample))} messages)"))
    emit("sharding_colocation", table)

    for (router, count), (coverage, imbalance) in rows.items():
        assert coverage > 0.6, (router, count)
        assert imbalance < 6.0, (router, count)
    # The trade-off must actually materialise at the widest fan-out:
    # co-occurrence keeps more edges than hash routing...
    hash_cov = rows[("hash", 8)][0]
    coop_cov = rows[("cooccurrence", 8)][0]
    assert coop_cov >= hash_cov - 0.02
    # ...and hash routing is never (meaningfully) less balanced.
    hash_imb = rows[("hash", 8)][1]
    coop_imb = rows[("cooccurrence", 8)][1]
    assert hash_imb <= coop_imb + 0.5
