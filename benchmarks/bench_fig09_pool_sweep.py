"""Figure 9 — accuracy under different bundle-pool limitations.

The paper sweeps the pool bound from 5k to 100k bundles on a 4.25M-message
stream and finds small pools get unacceptable accuracy while pools ≥20k
stay stable.  We sweep the same *ratios* on the scaled stream: the pool
bound is expressed as a fraction of the Full Index's final bundle count,
from starving (~2%) to comfortable (~50%+).
"""

from __future__ import annotations

from repro.bench.reporting import format_float, human_count, series_table
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.metrics import compare_edge_sets

# Pool bound as a fraction of the unbounded final bundle count; the
# paper's 5k..100k over ~150k-200k bundles spans roughly this range.
POOL_FRACTIONS = (0.02, 0.05, 0.10, 0.25, 0.50)


def sweep(stream, reference_edges, full_bundle_count):
    results = {}
    for fraction in POOL_FRACTIONS:
        pool_size = max(10, int(full_bundle_count * fraction))
        engine = ProvenanceIndexer(
            IndexerConfig.partial_index(pool_size=pool_size))
        for message in stream:
            engine.ingest(message)
        results[fraction] = (
            pool_size,
            compare_edge_sets(engine.edge_pairs(), reference_edges),
        )
    return results


def test_fig09_pool_size_sweep(benchmark, comparison, stream, emit):
    full_engine = comparison.engines["full"]
    reference = full_engine.edge_pairs()
    full_bundles = len(full_engine.pool)

    results = benchmark.pedantic(
        sweep, args=(stream, reference, full_bundles),
        rounds=1, iterations=1)

    rows = {
        "pool size": [human_count(results[f][0]) for f in POOL_FRACTIONS],
        "accuracy": [format_float(results[f][1].accuracy)
                     for f in POOL_FRACTIONS],
        "return": [format_float(results[f][1].coverage)
                   for f in POOL_FRACTIONS],
    }
    table = series_table(
        [int(f * 100) for f in POOL_FRACTIONS], rows,
        position_header="% of full",
        title=("Fig 9 — accuracy vs pool limitation "
               f"(full index: {human_count(full_bundles)} bundles)"))
    emit("fig09_pool_sweep", table)

    accuracies = [results[f][1].accuracy for f in POOL_FRACTIONS]
    # Paper shape: accuracy is non-trivially worse for starved pools and
    # saturates once the pool covers the active topic set.
    assert accuracies[-1] > accuracies[0]
    assert accuracies[-1] > 0.85
    # Monotone-ish: each step up in pool size never loses much accuracy.
    for small, big in zip(accuracies, accuracies[1:]):
        assert big >= small - 0.05
