"""Overload benchmark — what each degradation rung buys and costs.

Three forced-mode variants ingest the same stream in lockstep:

* NORMAL — full Eq. 1 matching, no caps;
* REDUCED — candidate-bundle fan-in capped (Algorithm 1 sees at most
  ``reduced_candidate_cap`` bundles per message);
* SKELETON — keyword similarity skipped entirely; matching falls back
  to the exact indicants (RT ancestry / URL / hashtag).

Each variant's provenance edges are scored against a full-index
reference (Eq. accuracy / return, as in Fig. 8), so the throughput win
of every rung is reported *together with* the quality it gives up —
degradation is a bargain the operator can see, not a silent loss.

A fourth, regulated run replays the same stream through the admission
controller on a surge arrival schedule and reports the ladder's actual
transitions, tying the forced-mode numbers to the machinery that picks
the mode in production.
"""

from __future__ import annotations

import time

from repro.bench.reporting import ascii_table, human_count
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.metrics import compare_edge_sets
from repro.reliability.overload import (HealthState, OverloadConfig,
                                        OverloadController)
from repro.reliability.supervisor import ResilientIndexer
from repro.storage.wal import JournaledIndexer, MessageJournal

CANDIDATE_CAP = 8


def forced_engine(mode: str) -> ProvenanceIndexer:
    engine = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=200))
    if mode == "reduced":
        engine.candidate_cap = CANDIDATE_CAP
    elif mode == "skeleton":
        engine.candidate_cap = CANDIDATE_CAP
        engine.skeleton_matching = True
    return engine


def test_degradation_modes(benchmark, stream, emit):
    sample = stream[: min(8_000, len(stream))]

    reference = ProvenanceIndexer(IndexerConfig.full_index())
    for message in sample:
        reference.ingest(message)
    reference_edges = reference.edge_pairs()

    def run(mode: str):
        engine = forced_engine(mode)
        started = time.perf_counter()
        for message in sample:
            engine.ingest(message)
        return time.perf_counter() - started, engine

    results = {}
    for mode in ("normal", "reduced", "skeleton"):
        timings = []
        engine = None
        for _ in range(2):
            elapsed, engine = run(mode)
            timings.append(elapsed)
        comparison = compare_edge_sets(engine.edge_pairs(), reference_edges)
        results[mode] = (min(timings), comparison)

    # Integrate the headline number with pytest-benchmark.
    benchmark.pedantic(lambda: run("skeleton"), rounds=1, iterations=1)

    rows = []
    normal_rate = len(sample) / results["normal"][0]
    for mode in ("normal", "reduced", "skeleton"):
        elapsed, comparison = results[mode]
        rate = len(sample) / elapsed
        rows.append([mode, f"{rate:,.0f} msg/s",
                     f"{rate / normal_rate:.2f}x",
                     f"{comparison.accuracy:.3f}",
                     f"{comparison.coverage:.3f}"])
    emit("overload_modes", ascii_table(
        ["mode", "throughput", "speedup", "accu", "ret"], rows,
        title=f"degradation rungs ({human_count(len(sample))} messages, "
              "vs full-index reference)"))

    # The ladder's bargain, quantified: SKELETON must at least double
    # ingest throughput, and its quality cost must be *visible* in the
    # report above — degraded accuracy, not silently perfect numbers.
    skeleton_rate = len(sample) / results["skeleton"][0]
    assert skeleton_rate >= 2.0 * normal_rate
    assert results["skeleton"][1].accuracy < results["normal"][1].accuracy
    # REDUCED sits between the extremes on quality.
    assert (results["skeleton"][1].coverage
            <= results["reduced"][1].coverage + 0.01)


def test_regulated_surge_transitions(stream, tmp_path, emit):
    sample = stream[: min(2_400, len(stream))]
    total = len(sample)
    burst = range(total // 4, (total * 7) // 12)

    class ScheduleClock:
        now = 0.0

        def __call__(self) -> float:
            return self.now

    clock = ScheduleClock()
    overload = OverloadController(OverloadConfig(
        rate_limit=1.0, burst=32, max_queue=256, latency_target=10.0,
        escalate_after=8, recover_after=64), clock=clock)
    supervisor = ResilientIndexer(
        JournaledIndexer(
            ProvenanceIndexer(IndexerConfig.partial_index(pool_size=200)),
            MessageJournal(tmp_path / "surge.wal", sync_every=256)),
        sleep=lambda _: None, overload=overload)

    with supervisor:
        for index, message in enumerate(sample):
            clock.now += 0.2 if index in burst else 2.0
            supervisor.ingest(message, now=clock.now)
        supervisor.drain_backlog()
        report = supervisor.health_report()

    stats = report.admission
    rows = [[f"{move.previous.label} → {move.state.label}",
             str(move.observation), f"{move.pressure:.2f}", move.signal]
            for move in report.transitions]
    rows.append(["(final)", report.state.label, "", ""])
    emit("overload_ladder", ascii_table(
        ["transition", "at observation", "pressure", "signal"], rows,
        title=f"regulated 5x surge — {stats.admitted + stats.released} "
              f"ingested, {stats.dropped} dropped, "
              f"{human_count(total)} offered"))

    assert report.transitions, "the surge never moved the ladder"
    assert report.reconciles
    assert report.state in (HealthState.NORMAL, HealthState.REDUCED)
    assert overload.mode_ingests[HealthState.SKELETON] > 0
