"""Perf-regression trajectory — every pinned bench, one versioned curve.

Each ``BENCH_*.json`` in the repo root pins one benchmark's latest
result, but a pin only answers "what is the number now?".  This tool
answers "which way is it moving?": it folds every pin into
``BENCH_trajectory.json``, a versioned append-only series of
*indicator* snapshots (throughput, overhead ratios, coverage/parity,
guard slowdowns) plus the explicit regression gates the repo holds
itself to.

Two kinds of gate, deliberately separated:

* **absolute gates** are machine-independent ratios and fractions
  (overhead budgets, coverage floors, parity bars) — the same numbers
  the source benches assert, re-checked here so a stale pin or a
  hand-edited JSON cannot silently drift past its budget;
* **relative gates** compare the newest snapshot against the previous
  one and flag indicator drops beyond a tolerance.  Raw msg/s rates
  are machine-dependent, so the relative tolerance is wide (default
  40%) — it catches "the refactor halved throughput", not "CI got a
  noisy neighbour".

``python benchmarks/trajectory.py`` regenerates the trajectory file
(idempotent: a snapshot is only appended when the indicators actually
changed).  ``--check`` additionally evaluates every gate and exits
non-zero on a regression — the CI perf-trajectory job runs exactly
that after refreshing the quick benches.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.reporting import ascii_table, format_float

REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_JSON = REPO_ROOT / "BENCH_trajectory.json"

#: Schema version of BENCH_trajectory.json; bump on layout changes so
#: downstream readers (and the regression gates) can migrate explicitly.
TRAJECTORY_VERSION = 1

#: Indicators lifted out of the per-bench metric soup, as
#: ``(indicator, bench document, metric key)``.  Missing sources are
#: skipped — the trajectory grows as the bench suite does.
_INDICATORS = (
    # Observability overheads (ratios; machine-independent).
    ("obs.overhead_metrics", "obs_overhead", "overhead_metrics"),
    ("obs.overhead_trace_1pct", "obs_overhead", "overhead_trace_1pct"),
    ("obs.overhead_trace_100pct", "obs_overhead", "overhead_trace_100pct"),
    ("obs.overhead_profile", "obs_overhead", "overhead_profile"),
    ("obs.metrics_rate_msg_per_s", "obs_overhead", "metrics_rate_msg_per_s"),
    ("obs.overhead_audit_ring", "audit_overhead", "overhead_audit_ring"),
    # Workload anatomy (sketches + deep-size accountant on the hot path).
    ("anatomy.overhead", "anatomy", "overhead_anatomy"),
    ("anatomy.rate_msg_per_s", "anatomy", "anatomy_rate_msg_per_s"),
    ("anatomy.fingerprint_deterministic", "anatomy",
     "fingerprint_deterministic"),
    ("anatomy.memory_drift_index", "anatomy", "memory_drift_index"),
    ("anatomy.memory_drift_pool", "anatomy", "memory_drift_pool"),
    # Multiprocess runtime (throughput + quality).
    ("fleet.single_msg_per_s", "parallel_ingest", "single_msg_per_s"),
    ("fleet.fleet4_msg_per_s", "parallel_ingest", "fleet4_msg_per_s"),
    ("fleet.fleet4_speedup", "parallel_ingest", "fleet4_speedup"),
    ("fleet.fleet4_edge_coverage", "parallel_ingest",
     "fleet4_edge_coverage"),
    ("fleet.fleet4_truth_parity", "parallel_ingest", "fleet4_truth_parity"),
    ("fleet.fleet4_queue_wait_seconds", "parallel_ingest",
     "fleet4_queue_wait_seconds"),
    ("fleet.fleet4_service_seconds", "parallel_ingest",
     "fleet4_service_seconds"),
    # Ingest guard under hostile traffic.
    ("guard.organic_overhead", "adversarial_guard",
     "organic_guard_overhead"),
    ("guard.organic_rate_on", "adversarial_guard", "organic_rate_on"),
    ("guard.spam_flood_f1_on", "adversarial_guard", "spam_flood_f1_on"),
    # Ingest hot path (slab postings + batched Eq. 1 scoring).
    ("hotpath.speedup_vs_single_baseline", "hotpath",
     "speedup_vs_single_baseline"),
    ("hotpath.sparse_slab_msg_per_s", "hotpath", "sparse_slab_msg_per_s"),
    ("hotpath.slab_vs_dict_dense", "hotpath", "slab_vs_dict_dense"),
    ("hotpath.slab_vs_dict_dense_memory", "hotpath",
     "slab_vs_dict_dense_memory"),
)

#: Absolute gates: ``(indicator, op, bound)`` over the newest snapshot.
#: These restate the budgets the source benches assert, in one place.
ABSOLUTE_GATES = (
    ("obs.overhead_metrics", "<", 0.05),
    ("obs.overhead_trace_1pct", "<", 0.05),
    ("obs.overhead_profile", "<", 0.05),
    ("obs.overhead_trace_100pct", "<", 0.5),
    # bench_audit_overhead's own budget is < 7% for the ring (the
    # metrics-off collect path is the one that must stay free).
    ("obs.overhead_audit_ring", "<", 0.07),
    ("anatomy.overhead", "<", 0.05),
    ("anatomy.fingerprint_deterministic", ">=", 1.0),
    ("fleet.fleet4_truth_parity", ">=", 0.98),
    ("fleet.fleet4_edge_coverage", ">=", 0.85),
    ("fleet.fleet4_speedup", ">=", 2.0),
    ("guard.organic_overhead", "<", 0.25),
    ("hotpath.speedup_vs_single_baseline", ">=", 10.0),
    ("hotpath.slab_vs_dict_dense", ">=", 0.9),
    ("hotpath.slab_vs_dict_dense_memory", "<", 1.0),
)

#: Fleet and hot-path gates are only meaningful on a full-size run;
#: quick/tiny CI smokes pin numbers where fixed process (or per-probe
#: numpy) overhead dominates.
_FULL_ONLY_PREFIXES = ("fleet.", "hotpath.")

#: Which bench document backs each indicator (for full-scale checks).
_INDICATOR_BENCH = {indicator: bench
                    for indicator, bench, _ in _INDICATORS}

#: Rate-style indicators checked relatively (newest vs previous).
RELATIVE_GATES = (
    "obs.metrics_rate_msg_per_s",
    "anatomy.rate_msg_per_s",
    "fleet.single_msg_per_s",
    "fleet.fleet4_msg_per_s",
    "guard.organic_rate_on",
    "hotpath.sparse_slab_msg_per_s",
)

DEFAULT_DROP_TOLERANCE = 0.40


def _bench_documents() -> "dict[str, dict]":
    """Every bench document pinned in the repo root, keyed by name."""
    documents: "dict[str, dict]" = {}
    for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
        if path.name == TRAJECTORY_JSON.name:
            continue
        try:
            loaded = json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            print(f"warning: {path.name} is not valid JSON; skipped",
                  file=sys.stderr)
            continue
        if not isinstance(loaded, dict):
            continue
        if "bench" in loaded:  # flat single-bench file
            documents[str(loaded["bench"])] = loaded
        else:  # nested multi-bench file
            for name, document in loaded.items():
                if isinstance(document, dict) and "bench" in document:
                    documents[name] = document
    return documents


def build_snapshot(documents: "dict[str, dict]") -> dict:
    """One trajectory point: indicators + provenance of their sources."""
    indicators: "dict[str, float]" = {}
    sources: "dict[str, str]" = {}
    full_scale: "dict[str, bool]" = {}
    for indicator, bench, key in _INDICATORS:
        document = documents.get(bench)
        if document is None:
            continue
        value = document.get("metrics", {}).get(key)
        if value is None:
            continue
        indicators[indicator] = float(value)
        sources[bench] = str(document.get("timestamp", ""))
    for bench, document in documents.items():
        config = document.get("config", {})
        full_scale[bench] = not bool(config.get("quick", False)) and (
            config.get("scale") in (None, "full"))
    return {
        "indicators": indicators,
        "sources": sources,
        "full_scale": full_scale,
    }


def _gate_applies(indicator: str, snapshot: dict, *,
                  relative: bool = False) -> bool:
    """Skip full-run-only gates when the source pin is a quick smoke.

    Absolute gates are ratios and stay meaningful at any scale except
    for the fleet bars (fixed process overhead dominates a quick run).
    Relative gates compare raw rates, which are machine- *and*
    scale-dependent, so they only apply to full-scale pins.
    """
    full_scale = snapshot.get("full_scale", {})
    if not relative and not indicator.startswith(_FULL_ONLY_PREFIXES):
        return True
    bench = _INDICATOR_BENCH.get(indicator)
    return bool(full_scale.get(bench, True)) if bench else True


def evaluate_gates(snapshot: dict, previous: "dict | None",
                   *, tolerance: float) -> "list[tuple[str, bool, str]]":
    """``(gate label, ok, detail)`` for every applicable gate."""
    results: "list[tuple[str, bool, str]]" = []
    indicators = snapshot["indicators"]
    for indicator, op, bound in ABSOLUTE_GATES:
        value = indicators.get(indicator)
        label = f"{indicator} {op} {format_float(bound, 3)}"
        if value is None:
            results.append((label, True, "no data (skipped)"))
            continue
        if not _gate_applies(indicator, snapshot):
            results.append((label, True,
                            f"{format_float(value, 4)} (quick pin; "
                            "gate skipped)"))
            continue
        ok = value < bound if op == "<" else value >= bound
        results.append((label, ok, format_float(value, 4)))
    if previous is not None:
        before = previous.get("indicators", {})
        for indicator in RELATIVE_GATES:
            new = indicators.get(indicator)
            old = before.get(indicator)
            label = (f"{indicator} drop <= "
                     f"{format_float(tolerance * 100, 0)}%")
            if new is None or old is None or old <= 0:
                results.append((label, True, "no pair (skipped)"))
                continue
            if not _gate_applies(indicator, snapshot, relative=True):
                results.append((label, True, "quick pin; gate skipped"))
                continue
            drop = 1.0 - new / old
            results.append((label, drop <= tolerance,
                            f"{old:,.0f} -> {new:,.0f} "
                            f"({drop * +100:+.1f}% drop)"))
    return results


def load_trajectory() -> dict:
    if TRAJECTORY_JSON.exists():
        try:
            loaded = json.loads(TRAJECTORY_JSON.read_text(encoding="utf-8"))
            if (isinstance(loaded, dict)
                    and loaded.get("version") == TRAJECTORY_VERSION):
                return loaded
        except ValueError:
            pass
    return {"version": TRAJECTORY_VERSION, "bench": "trajectory",
            "entries": []}


def update_trajectory(documents: "dict[str, dict]") -> "tuple[dict, bool]":
    """Append a snapshot when the indicators moved; returns (doc, appended)."""
    trajectory = load_trajectory()
    snapshot = build_snapshot(documents)
    entries = trajectory["entries"]
    if entries and entries[-1]["indicators"] == snapshot["indicators"]:
        return trajectory, False
    snapshot["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                          time.gmtime())
    snapshot["sequence"] = (entries[-1]["sequence"] + 1 if entries else 1)
    entries.append(snapshot)
    return trajectory, True


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="merge BENCH_*.json pins into the perf trajectory "
                    "and evaluate the regression gates")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when any gate regresses")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_DROP_TOLERANCE,
                        help="relative throughput-drop tolerance "
                             "(fraction; default 0.40)")
    parser.add_argument("--dry-run", action="store_true",
                        help="evaluate without rewriting the file")
    args = parser.parse_args(argv)

    documents = _bench_documents()
    if not documents:
        print("no BENCH_*.json pins found; nothing to do",
              file=sys.stderr)
        return 1
    trajectory, appended = update_trajectory(documents)
    entries = trajectory["entries"]
    newest = entries[-1]
    previous = entries[-2] if len(entries) > 1 else None
    if appended and not args.dry_run:
        TRAJECTORY_JSON.write_text(
            json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        print(f"appended snapshot #{newest['sequence']} to "
              f"{TRAJECTORY_JSON.name} "
              f"({len(newest['indicators'])} indicators from "
              f"{len(documents)} bench pins)")
    else:
        print(f"{TRAJECTORY_JSON.name}: {len(entries)} snapshot(s), "
              f"latest #{newest.get('sequence', '?')} unchanged")

    rows = [[indicator, format_float(value, 4)]
            for indicator, value in sorted(newest["indicators"].items())]
    print()
    print(ascii_table(["indicator", "value"], rows,
                      title=f"trajectory snapshot #{newest['sequence']}"))

    results = evaluate_gates(newest, previous, tolerance=args.tolerance)
    print()
    print(ascii_table(
        ["gate", "status", "detail"],
        [[label, "ok" if ok else "REGRESSION", detail]
         for label, ok, detail in results],
        title="regression gates"))
    failures = [label for label, ok, _ in results if not ok]
    if failures:
        for label in failures:
            print(f"FAIL: {label}", file=sys.stderr)
        return 1 if args.check else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
