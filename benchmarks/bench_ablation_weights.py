"""Ablation — the Eq. 1/Eq. 5 scoring weights (α, β, γ and RT).

Not a paper figure: DESIGN.md calls out the weight vector as the design
choice the paper leaves "manually set to reflect system requirements".
Each ablation removes one indicant family and measures what it costs in
ground-truth-cascade recovery and bundle purity on a labelled stream.
Expectation: the full weighting dominates every ablation on at least one
metric, and removing RT hurts cascade recovery most.
"""

from __future__ import annotations

from repro.bench.reporting import ascii_table, format_float
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.metrics import (compare_edge_sets, ground_truth_edges,
                                label_purity)

ABLATIONS = {
    "full weights": {},
    "no urls (α=0)": {"url_weight": 0.0},
    "no hashtags (β=0)": {"hashtag_weight": 0.0},
    "no time (γ=0)": {"time_weight": 0.0},
    "no rt": {"rt_weight": 0.0},
    "no keywords": {"keyword_weight": 0.0},
}


def run_ablation(stream, truth):
    rows = {}
    for name, overrides in ABLATIONS.items():
        engine = ProvenanceIndexer(IndexerConfig(**overrides))
        for message in stream:
            engine.ingest(message)
        found = engine.edge_pairs()
        cascade = compare_edge_sets(truth & found, truth)
        purities = [label_purity(b.messages())
                    for b in engine.pool if len(b) >= 5]
        purity = sum(purities) / len(purities) if purities else 1.0
        rows[name] = (cascade.coverage, purity, len(engine.pool))
    return rows


def test_ablation_scoring_weights(benchmark, stream, emit):
    sample = stream[: min(10_000, len(stream))]
    truth = ground_truth_edges(sample)
    rows = benchmark.pedantic(run_ablation, args=(sample, truth),
                              rounds=1, iterations=1)

    table = ascii_table(
        ["variant", "cascade recovery", "bundle purity", "bundles"],
        [[name, format_float(rec), format_float(pur), count]
         for name, (rec, pur, count) in rows.items()],
        title="Ablation — Eq.1/Eq.5 weight families")
    emit("ablation_weights", table)

    full_recovery, full_purity, _ = rows["full weights"]
    # The full weighting is never strictly dominated by an ablation.
    for name, (recovery, purity, _) in rows.items():
        if name == "full weights":
            continue
        assert (full_recovery >= recovery - 0.02
                or full_purity >= purity - 0.02), name
    # RT is the strongest provenance signal: removing it costs the most
    # ground-truth cascade recovery of any single family.
    drops = {name: full_recovery - recovery
             for name, (recovery, _, _) in rows.items()
             if name != "full weights"}
    assert drops["no rt"] == max(drops.values())
