"""Substrate benchmark — write-ahead journaling overhead.

Measures what durability costs: ingest throughput of a plain engine vs
the same engine behind the WAL (journal append + periodic fsync), plus
recovery speed.  The WAL should cost a small constant per message, not a
multiple — the scoring work dominates.
"""

from __future__ import annotations

from repro.bench.reporting import ascii_table, format_float, human_count
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.storage.wal import JournaledIndexer, MessageJournal


def test_substrate_wal_overhead(benchmark, stream, tmp_path, emit):
    import time

    sample = stream[: min(4_000, len(stream))]

    def plain_run() -> float:
        engine = ProvenanceIndexer(IndexerConfig.partial_index(
            pool_size=200))
        started = time.perf_counter()
        for message in sample:
            engine.ingest(message)
        return time.perf_counter() - started

    run_counter = iter(range(10_000))

    def journaled_run() -> float:
        engine = ProvenanceIndexer(IndexerConfig.partial_index(
            pool_size=200))
        journal = MessageJournal(
            tmp_path / f"run-{next(run_counter)}.wal", sync_every=64)
        journaled = JournaledIndexer(engine, journal)
        started = time.perf_counter()
        for message in sample:
            journaled.ingest(message)
        journal.sync()
        return time.perf_counter() - started

    plain = min(plain_run() for _ in range(2))
    journaled = min(journaled_run() for _ in range(2))
    overhead = journaled / plain - 1.0

    # Recovery speed: replay the whole journal into a fresh engine.
    wal_path = tmp_path / "recovery.wal"
    journal = MessageJournal(wal_path, sync_every=1024)
    base = JournaledIndexer(ProvenanceIndexer(
        IndexerConfig.partial_index(pool_size=200)), journal)
    for message in sample:
        base.ingest(message)
    journal.sync()

    def recover():
        return JournaledIndexer.recover(None, wal_path)

    recovered = benchmark.pedantic(recover, rounds=1, iterations=1)
    assert (recovered.indexer.stats.messages_ingested == len(sample))

    emit("substrate_wal", ascii_table(
        ["metric", "value"],
        [["messages", human_count(len(sample))],
         ["plain ingest", f"{plain:.2f}s"],
         ["journaled ingest", f"{journaled:.2f}s"],
         ["WAL overhead", format_float(overhead * 100, 1) + "%"]],
        title="WAL durability overhead"))

    # Durability must cost a fraction, not a multiple.
    assert overhead < 0.6
