"""Figure 8 — accuracy and return of the partial index methods.

At each checkpoint the partial methods' cumulative edge sets E1 (partial)
and E2 (bundle limit) are compared against the Full Index ground truth E0:

* (a) accuracy  ``|Ei ∩ E0| / |Ei|``  — with matched-pair count bars,
* (b) return    ``|Ei ∩ E0| / |E0|``.

Expected shape: both methods hold high, stable accuracy, with plain
partial indexing slightly ahead of the bundle-limit variant (the size cap
splits some edges), and both show only "a slight performance decline
compared to baseline ground truth".
"""

from __future__ import annotations

from repro.bench.reporting import (format_float, human_count, line_chart,
                                   series_table)
from repro.core.metrics import compare_edge_sets


def final_comparisons(comparison):
    reference = comparison.engines["full"].edge_pairs()
    return {
        method: compare_edge_sets(engine.edge_pairs(), reference)
        for method, engine in comparison.engines.items()
        if method != "full"
    }


def test_fig08_accuracy_and_return(benchmark, comparison, emit):
    final = benchmark(final_comparisons, comparison)
    positions = comparison.positions()

    accuracy = {
        method: [format_float(point.accuracy) for point in series]
        for method, series in comparison.comparisons.items()
    }
    coverage = {
        method: [format_float(point.coverage) for point in series]
        for method, series in comparison.comparisons.items()
    }
    matched = {
        f"{method} pairs": [human_count(point.matched) for point in series]
        for method, series in comparison.comparisons.items()
    }
    accuracy_chart = line_chart(
        [float(p) for p in positions],
        {method: [point.accuracy for point in series]
         for method, series in comparison.comparisons.items()})
    text = "\n\n".join([
        series_table(positions, accuracy,
                     title="Fig 8a — accuracy |Ei∩E0|/|Ei|"),
        accuracy_chart,
        series_table(positions, matched,
                     title="Fig 8a bars — matched provenance pairs"),
        series_table(positions, coverage,
                     title="Fig 8b — return |Ei∩E0|/|E0|"),
    ])
    emit("fig08_accuracy_return", text)

    partial, limited = final["partial"], final["bundle_limit"]
    # Paper shape: high and stable accuracy for both partial methods...
    assert partial.accuracy > 0.7
    assert limited.accuracy > 0.6
    # ...with partial indexing holding a comparable advantage.
    assert partial.accuracy >= limited.accuracy - 0.05
    assert partial.coverage >= limited.coverage - 0.05
    # Meaningful coverage of the ground-truth provenance.
    assert partial.coverage > 0.5
