"""Figure 11 — memory cost of the three approaches.

(a) memory usage (MB, deterministic model) and (b) message count held in
memory, sampled at checkpoints.  Expected shape: the Full Index grows
greedily with the stream while both partial variants flatten out after
the first refinement — the paper reports an order-of-magnitude gap
(10MB vs 170MB).
"""

from __future__ import annotations

from repro.bench.reporting import (human_bytes, human_count, line_chart,
                                   series_table)


def extract_memory(comparison):
    megabytes = {
        method: comparison.series(method, "memory_bytes")
        for method in comparison.methods
    }
    counts = {
        method: comparison.series(method, "message_count_in_memory")
        for method in comparison.methods
    }
    return megabytes, counts


def test_fig11_memory_cost(benchmark, comparison, workload, emit):
    memory, counts = benchmark(extract_memory, comparison)
    positions = comparison.positions()

    text = "\n\n".join([
        series_table(
            positions,
            {m: [human_bytes(v) for v in s] for m, s in memory.items()},
            title="Fig 11a — memory usage"),
        line_chart([float(p) for p in positions],
                   {m: [v / (1 << 20) for v in s]
                    for m, s in memory.items()}),
        series_table(
            positions,
            {m: [human_count(v) for v in s] for m, s in counts.items()},
            title="Fig 11b — message count in memory"),
    ])
    emit("fig11_memory", text)

    full_mem, partial_mem = memory["full"], memory["partial"]
    limit_mem = memory["bundle_limit"]
    # Full index keeps growing; partial variants flatten well below it.
    # The gap widens with stream length (paper: 170MB vs 10MB at 2M
    # messages), so the required factor scales with the workload.
    factor = 1.2 if workload.name == "tiny" else 3.0
    assert full_mem[-1] > full_mem[0]
    assert full_mem[-1] > factor * partial_mem[-1]
    assert full_mem[-1] > factor * limit_mem[-1]
    # Same, hardware-independently, for raw message counts.
    assert counts["full"][-1] > factor * counts["partial"][-1]
    # Partial memory must stay at a bounded level over the back half of
    # the run (the paper's "usage at a steady level"); refinement gives it
    # a sawtooth, so the bound compares against the growing full index.
    back_half = partial_mem[len(partial_mem) // 2:]
    assert max(back_half) < full_mem[-1] / factor
