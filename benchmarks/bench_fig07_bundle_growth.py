"""Figure 7 — in-memory bundle growth under the three approaches.

The Full Index grows (near-)linearly with incoming messages, while the two
partial-index variants drop sharply once the pool limitation kicks in and
stay restrained at a low level afterwards; the bundle-size limit causes a
slight increase over plain partial indexing (more, smaller bundles).
"""

from __future__ import annotations

from repro.bench.reporting import human_count, line_chart, series_table


def extract_growth(comparison):
    return {
        method: comparison.series(method, "bundle_count")
        for method in comparison.methods
    }


def test_fig07_bundle_growth(benchmark, comparison, workload, emit):
    growth = benchmark(extract_growth, comparison)
    positions = comparison.positions()

    table = series_table(
        positions,
        {method: [human_count(v) for v in series]
         for method, series in growth.items()},
        title=("Fig 7 — bundle count in pool vs incoming messages "
               f"(pool limit {human_count(workload.pool_size)})"),
    )
    chart = line_chart([float(p) for p in positions],
                       {m: [float(v) for v in s]
                        for m, s in growth.items()})
    emit("fig07_bundle_growth", table + "\n\n" + chart)

    full, partial = growth["full"], growth["partial"]
    limit = growth["bundle_limit"]
    # Full index grows monotonically and ends far above the bound.
    assert all(a <= b for a, b in zip(full, full[1:]))
    assert full[-1] > 2 * workload.pool_size
    # Partial variants are restrained at/below the pool limitation.
    assert partial[-1] <= workload.pool_size
    assert limit[-1] <= workload.pool_size
    # The bundle-size limit yields at least as many (smaller) bundles over
    # the run: compare cumulative created counts.
    created_partial = comparison.engines["partial"].stats.bundles_created
    created_limit = comparison.engines["bundle_limit"].stats.bundles_created
    assert created_limit >= created_partial
