"""Ablation — the Algorithm 3 eviction policy (Eq. 6 vs baselines).

The paper derives ``G(B) = age + 1/|B|`` from the Fig. 6 bundle statistics
but compares it against nothing.  This ablation runs the same bounded pool
under three eviction policies — the paper's G, pure LRU ("age") and
smallest-first ("size") — and scores each against the Full Index ground
truth.  Expectation: all three deliver usable provenance under the same
pool bound, with G competitive with the best baseline; which baseline
comes closest shifts with stream length (age only differentiates once the
stream is long enough for bundles to go stale).
"""

from __future__ import annotations

from repro.bench.reporting import ascii_table, format_float, human_count
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.metrics import compare_edge_sets

POLICIES = ("g", "age", "size")


def run_policies(stream, pool_size):
    reference = ProvenanceIndexer(IndexerConfig.full_index())
    engines = {
        policy: ProvenanceIndexer(IndexerConfig.partial_index(
            pool_size=pool_size, refine_policy=policy))
        for policy in POLICIES
    }
    for message in stream:
        reference.ingest(message)
        for engine in engines.values():
            engine.ingest(message)
    truth = reference.edge_pairs()
    return {
        policy: compare_edge_sets(engine.edge_pairs(), truth)
        for policy, engine in engines.items()
    }


def test_ablation_refinement_policy(benchmark, stream, workload, emit):
    sample = stream[: min(15_000, len(stream))]
    pool_size = max(20, workload.pool_size // 2)
    results = benchmark.pedantic(run_policies, args=(sample, pool_size),
                                 rounds=1, iterations=1)

    table = ascii_table(
        ["policy", "accuracy", "return", "matched"],
        [[policy, format_float(cmp.accuracy), format_float(cmp.coverage),
          human_count(cmp.matched)]
         for policy, cmp in results.items()],
        title=(f"Ablation — eviction policy (pool="
               f"{human_count(pool_size)}, {human_count(len(sample))} "
               "messages)"))
    emit("ablation_refinement", table)

    g, age, size = (results[p] for p in POLICIES)
    # All policies must deliver usable provenance under the same bound...
    for policy, cmp in results.items():
        assert cmp.accuracy > 0.6, policy
    # ...and the paper's G(B) must stay competitive with the best baseline
    # (which baseline wins shifts with stream length: on short streams
    # every bundle is recent, so age barely differentiates).
    best = max(cmp.f1 for cmp in results.values())
    assert g.f1 >= 0.9 * best
    assert g.f1 >= age.f1 - 0.05
