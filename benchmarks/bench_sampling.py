"""Extension — sampling-strategy impact on provenance discovery.

The paper's dataset paper (ref. [22], Choudhury et al. ICWSM 2010) asks
how the sampling strategy impacts diffusion discovery; this benchmark asks
the same for provenance bundles.  Each strategy keeps ~the same message
volume; we measure how much of the full-stream ground-truth cascade edge
set survives sampling *and* is then recovered by the indexer.

Expected shape (Choudhury et al.'s finding, transplanted): user-based
sampling preserves far fewer cascade edges than rate-matched uniform
sampling preserves messages — an edge needs *both* endpoints — while
hashtag-tracking keeps tracked topics nearly intact and loses the rest.
"""

from __future__ import annotations

from collections import Counter

from repro.bench.reporting import ascii_table, format_float, human_count
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.metrics import ground_truth_edges
from repro.stream.sampling import (sample_by_hashtag, sample_by_user,
                                   sample_deterministic, sample_uniform)

RATE = 0.5


def top_hashtags(stream, k: int) -> set[str]:
    counts: Counter[str] = Counter()
    for message in stream:
        counts.update(message.hashtags)
    return {tag for tag, _ in counts.most_common(k)}


def run_strategies(stream):
    truth = ground_truth_edges(stream)
    tracked = top_hashtags(stream, 30)
    strategies = {
        "uniform 50%": list(sample_uniform(stream, RATE, seed=1)),
        "by-user 50%": list(sample_by_user(stream, RATE, seed=1)),
        "deterministic 50%": list(sample_deterministic(stream, RATE,
                                                       salt="b")),
        "top-30 hashtags": list(sample_by_hashtag(stream, tracked)),
    }
    rows = {}
    for name, sampled in strategies.items():
        kept_ids = {message.msg_id for message in sampled}
        surviving = {(src, dst) for src, dst in truth
                     if src in kept_ids and dst in kept_ids}
        engine = ProvenanceIndexer(IndexerConfig.full_index())
        for message in sampled:
            engine.ingest(message)
        found = engine.edge_pairs()
        recovered = surviving & found
        rows[name] = (
            len(sampled) / len(stream),
            len(surviving) / max(len(truth), 1),
            len(recovered) / max(len(surviving), 1),
        )
    return rows


def test_sampling_strategy_impact(benchmark, stream, emit):
    sample = stream[: min(12_000, len(stream))]
    rows = benchmark.pedantic(run_strategies, args=(sample,),
                              rounds=1, iterations=1)

    table = ascii_table(
        ["strategy", "messages kept", "cascade edges kept",
         "edges recovered by index"],
        [[name, format_float(kept), format_float(edges),
          format_float(recovered)]
         for name, (kept, edges, recovered) in rows.items()],
        title=(f"Sampling impact on provenance "
               f"({human_count(len(sample))} messages)"))
    emit("sampling_impact", table)

    uniform = rows["uniform 50%"]
    by_user = rows["by-user 50%"]
    # An edge needs both endpoints: uniform keeps ~p of messages but only
    # ~p^2 of edges.
    assert uniform[1] < uniform[0]
    # Ref [22]'s transplanted finding: at matched message volume,
    # user-based sampling does not preserve more cascade edges than
    # independent sampling once volumes are normalised (cascades cross
    # user boundaries).  Allow stochastic slack.
    volume_ratio = by_user[0] / max(uniform[0], 1e-9)
    assert by_user[1] <= (uniform[1] * volume_ratio ** 2) * 2.0 + 0.1
    # The index recovers a substantial share of whatever survives
    # sampling.  (Even unsampled, exact-parent recovery is bounded:
    # Algorithm 2 may align a re-share with a different prior member of
    # the same cascade than the generator's true parent.)
    for name, (_, edges_kept, recovered) in rows.items():
        if edges_kept > 0.05:
            assert recovered > 0.35, name
