"""Guard-on vs guard-off under the five adversarial scenarios.

For each hostile workload (plus the organic baseline) the same stream is
ingested twice — once straight into the engine, once through the
:class:`IngestGuard` (folds via the Alg.-1-skipping fold path,
quarantines to a real on-disk custody log, out-of-order arrivals through
the reorder buffer) — and both runs are scored against the stream's
ground-truth cascade edges with the same ``compare_edge_sets`` the
streaming :class:`QualityMonitor` uses, plus wall-clock msg/s.

Acceptance (pinned into ``BENCH_adversarial.json``):

* under ``spam-flood`` and ``near-dup-storm`` the guard must not lose
  quality: guard-on F1 ≥ guard-off F1;
* on the organic baseline the guard costs < 10% msg/s;
* zero acknowledged loss — every quarantined id replays from the
  custody log (the ``repro doctor`` restoration path).
"""

from __future__ import annotations

import contextlib
import gc
import time
from pathlib import Path

from repro.bench.reporting import (ascii_table, format_float, human_count,
                                   write_bench_json)
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.metrics import compare_edge_sets, ground_truth_edges
from repro.reliability.guard import (GuardAction, GuardConfig, IngestGuard,
                                     QuarantineLog)
from repro.stream.generator import (ADVERSARIAL_SCENARIOS,
                                    AdversarialConfig,
                                    AdversarialGenerator, StreamConfig,
                                    StreamGenerator)

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_adversarial.json"

BASE = StreamConfig(seed=11, days=0.5, messages_per_day=4000,
                    user_count=300, events_per_day=30.0)


def engine_config() -> IndexerConfig:
    return IndexerConfig.partial_index(pool_size=200)


#: Timed attempts per run; the fastest is kept for the reported rates
#: (same rationale as pytest-benchmark's ``min``: scheduling noise only
#: ever adds time).  Plain and guarded attempts are interleaved so
#: CPU-frequency drift hits both sides of the overhead comparison
#: alike, and the overhead gate compares the two minima — each side's
#: best-of-N is its closest approach to true cost, so one attempt hit
#: by a scheduling stall cannot swing the verdict.
def attempts_for(scenario: str) -> int:
    return 9 if scenario == "organic" else 2


@contextlib.contextmanager
def gc_quiesced():
    """Suspend the cyclic collector around a timed section.

    Under pytest the heap is large, so a gen-2 collection landing inside
    one timed attempt (and not its paired twin) skews the overhead
    ratio; allocation-count triggers also fire unevenly because the
    guarded run allocates more.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def run_plain_once(messages):
    engine = ProvenanceIndexer(engine_config())
    with gc_quiesced():
        started = time.perf_counter()
        for message in messages:
            engine.ingest(message)
        elapsed = time.perf_counter() - started
    return engine, elapsed


def run_guarded_once(messages, quarantine_path):
    engine = ProvenanceIndexer(engine_config())
    guard = IngestGuard(GuardConfig(), quarantine_path=quarantine_path)
    quarantined = []
    stack = contextlib.ExitStack()
    stack.enter_context(gc_quiesced())
    started = time.perf_counter()

    def apply(entry):
        if entry.action is GuardAction.BUFFERED:
            return
        if entry.action is GuardAction.QUARANTINE:
            quarantined.append(entry.message.msg_id)
            return
        if entry.action is GuardAction.FOLD:
            result = engine.ingest_folded(entry.message, entry.bundle_id,
                                          entry.duplicate_of)
        else:
            result = engine.ingest(entry.message)
        guard.note_result(entry.message, result.bundle_id)

    for message in messages:
        for entry in guard.admit(message):
            apply(entry)
    for entry in guard.flush():
        apply(entry)
    elapsed = time.perf_counter() - started
    stack.close()
    guard.close()
    return engine, guard, quarantined, elapsed


def run_both(messages, quarantine_dir, scenario):
    plain = guarded = None
    plain_best = on_best = None
    for attempt in range(attempts_for(scenario)):
        engine, elapsed = run_plain_once(messages)
        if plain_best is None or elapsed < plain_best:
            plain, plain_best = engine, elapsed
        quarantine_path = quarantine_dir / \
            f"{scenario}.{attempt}.quarantine.log"
        outcome = run_guarded_once(messages, quarantine_path)
        if on_best is None or outcome[-1] < on_best:
            guarded = outcome[:-1] + (quarantine_path,)
            on_best = outcome[-1]
    return plain, plain_best, guarded, on_best, on_best / plain_best


def scenario_stream(scenario: str):
    if scenario == "organic":
        return StreamGenerator(BASE).generate_list()
    return AdversarialGenerator(AdversarialConfig(
        scenario=scenario, base=BASE)).generate_list()


def test_adversarial_guard(benchmark, emit, tmp_path):
    scenarios = ("organic",) + tuple(ADVERSARIAL_SCENARIOS)
    rows = []
    metrics: "dict[str, float]" = {}
    results: "dict[str, dict[str, float]]" = {}

    def run_all():
        for scenario in scenarios:
            messages = scenario_stream(scenario)
            truth = ground_truth_edges(messages)

            plain, plain_elapsed, best_guarded, on_elapsed, ratio = \
                run_both(messages, tmp_path, scenario)
            guarded, guard, quarantined, quarantine = best_guarded
            off = compare_edge_sets(plain.edge_pairs(), truth)
            on = compare_edge_sets(guarded.edge_pairs(), truth)

            # Zero acknowledged loss: the custody log replays every
            # quarantined id, in verdict order.
            replayed = [m.msg_id for m, _ in
                        QuarantineLog.replay(quarantine)]
            assert replayed == quarantined, scenario
            assert guard.stats.reconciles(guard.buffer_depth), scenario

            results[scenario] = {
                "messages": len(messages),
                "f1_off": off.f1, "f1_on": on.f1,
                "accu_off": off.accuracy, "accu_on": on.accuracy,
                "ret_off": off.coverage, "ret_on": on.coverage,
                "rate_off": len(messages) / plain_elapsed,
                "rate_on": len(messages) / on_elapsed,
                "paired_slowdown": ratio,
                "quarantined": len(quarantined),
                "folded": guard.stats.folded,
                "late": guard.stats.late,
            }
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    for scenario in scenarios:
        r = results[scenario]
        rows.append([
            scenario, human_count(r["messages"]),
            f"{format_float(r['f1_off'])} → {format_float(r['f1_on'])}",
            f"{format_float(r['accu_off'])} → "
            f"{format_float(r['accu_on'])}",
            f"{format_float(r['ret_off'])} → {format_float(r['ret_on'])}",
            f"{r['rate_off']:,.0f} → {r['rate_on']:,.0f}",
            f"{r['quarantined']}q/{r['folded']}f/{r['late']}l",
        ])
        for key, value in r.items():
            metrics[f"{scenario.replace('-', '_')}_{key}"] = value

    emit("adversarial_guard", ascii_table(
        ["scenario", "msgs", "f1 off→on", "accu off→on", "ret off→on",
         "msg/s off→on", "verdicts"],
        rows, title="adversarial ingest: guard off → guard on"))

    organic = results["organic"]
    overhead = max(0.0, organic["paired_slowdown"] - 1.0)
    metrics["organic_guard_overhead"] = overhead

    write_bench_json(
        BENCH_JSON, bench="adversarial_guard",
        config={"base_messages": organic["messages"],
                "pool_size": 200, "seed": BASE.seed},
        metrics=metrics)

    # -- acceptance ---------------------------------------------------------
    # The guard must pay for itself where the attack is duplication…
    for scenario in ("spam-flood", "near-dup-storm"):
        assert results[scenario]["f1_on"] >= \
            results[scenario]["f1_off"], results[scenario]
        assert results[scenario]["quarantined"] > 0, results[scenario]
    # …and cost little where there is no attack.
    assert overhead < 0.10, f"guard overhead {overhead:.1%} on organic"
    # Hostile scenarios must not silently disable screening.
    assert results["skewed-clock"]["late"] > 0 or \
        results["skewed-clock"]["quarantined"] > 0
